"""Ablation benchmarks for the design choices called out in DESIGN.md.

These are not paper figures; they isolate the contribution of individual
design decisions inside the state-slice chain:

* **Selection push-down into the chain** (Section 6) — run the same chain
  with and without the σ' filters on the chain queues.
* **System overhead sensitivity of CPU-Opt** — how the number of slices the
  CPU-Opt optimizer keeps varies with the per-operator overhead Csys, the
  knob that drives the merge/no-merge trade-off of Section 5.2.
* **Probing algorithm** — nested-loop probing (the paper's cost model)
  versus hash probing inside the shared pull-up join.
"""

from __future__ import annotations

from repro.core.cpu_opt import build_cpu_opt_chain
from repro.core.mem_opt import build_mem_opt_chain
from repro.core.merge_graph import ChainCostParameters
from repro.core.plan_builder import build_state_slice_plan
from repro.engine.executor import execute_plan
from repro.experiments.report import format_table
from repro.operators.join import SlidingWindowJoin
from repro.query.predicates import EquiJoinCondition
from repro.query.query import QueryWorkload, ContinuousQuery
from repro.query.predicates import selectivity_join
from repro.query.workload import build_workload, multi_query_workload
from repro.streams.generators import generate_join_workload

DATA = generate_join_workload(rate_a=50, rate_b=50, duration=8.0, seed=77)

FILTERED_WORKLOAD = build_workload(
    [0.5, 1.0, 2.0], join_selectivity=0.1, filter_selectivities=[1.0, 0.3, 0.3]
)


def test_ablation_selection_pushdown(benchmark, write_result):
    """Pushing σ into the chain must cut both state memory and CPU."""

    def run():
        with_pushdown = execute_plan(
            build_state_slice_plan(FILTERED_WORKLOAD, push_selections=True),
            DATA.tuples,
            strategy="push-down",
            system_overhead=0.25,
            retain_results=False,
            memory_sample_interval=8,
        )
        without_pushdown = execute_plan(
            build_state_slice_plan(FILTERED_WORKLOAD, push_selections=False),
            DATA.tuples,
            strategy="no-push-down",
            system_overhead=0.25,
            retain_results=False,
            memory_sample_interval=8,
        )
        return with_pushdown, without_pushdown

    with_pushdown, without_pushdown = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [
            report.strategy,
            f"{report.steady_state_memory:.1f}",
            f"{report.cpu_cost:.0f}",
            report.metrics.total_emitted,
        ]
        for report in (with_pushdown, without_pushdown)
    ]
    write_result(
        "ablation_selection_pushdown",
        format_table(["chain variant", "state (tuples)", "CPU (cmp)", "outputs"], rows),
    )
    assert with_pushdown.metrics.total_emitted == without_pushdown.metrics.total_emitted
    assert with_pushdown.steady_state_memory < without_pushdown.steady_state_memory
    assert with_pushdown.cpu_cost < without_pushdown.cpu_cost


def test_ablation_cpu_opt_overhead_sensitivity(benchmark, write_result):
    """Higher per-operator overhead makes CPU-Opt merge more aggressively."""
    workload = multi_query_workload("small-large", query_count=12)

    def run():
        shapes = {}
        for overhead in (0.0, 0.5, 2.0, 8.0, 32.0):
            params = ChainCostParameters(
                arrival_rate_left=40, arrival_rate_right=40, system_overhead=overhead
            )
            shapes[overhead] = len(build_cpu_opt_chain(workload, params))
        return shapes

    shapes = benchmark(run)
    rows = [[f"{overhead:g}", slices] for overhead, slices in sorted(shapes.items())]
    write_result(
        "ablation_cpu_opt_overhead",
        format_table(["Csys (per-tuple overhead)", "CPU-Opt slices"], rows)
        + f"\nMem-Opt slices: {len(build_mem_opt_chain(workload))}",
    )
    ordered = [shapes[k] for k in sorted(shapes)]
    assert ordered[0] >= ordered[-1]
    assert ordered[-1] < len(build_mem_opt_chain(workload))


def test_ablation_hash_vs_nested_loop_probing(benchmark, write_result):
    """Hash probing cuts probe comparisons without changing the answer."""
    condition = EquiJoinCondition("join_key", "join_key", key_domain=100)
    workload = QueryWorkload(
        [
            ContinuousQuery("Q1", window=0.8, join_condition=condition),
            ContinuousQuery("Q2", window=1.6, join_condition=condition),
        ]
    )

    def run(algorithm):
        from repro.baselines.pullup import build_pullup_plan

        return execute_plan(
            build_pullup_plan(workload, algorithm=algorithm),
            DATA.tuples,
            strategy=algorithm,
            retain_results=False,
            memory_sample_interval=8,
        )

    def both():
        return run("nested_loop"), run("hash")

    nested, hashed = benchmark.pedantic(both, rounds=1, iterations=1)
    rows = [
        [report.strategy, f"{report.cpu_cost:.0f}", report.metrics.total_emitted]
        for report in (nested, hashed)
    ]
    write_result(
        "ablation_hash_probing",
        format_table(["probing", "CPU (cmp)", "outputs"], rows),
    )
    assert nested.metrics.total_emitted == hashed.metrics.total_emitted
    assert hashed.cpu_cost < nested.cpu_cost


def test_ablation_sliced_vs_monolithic_state_scan(benchmark, write_result):
    """Slicing does not add probing work: chain probes == single-join probes."""
    condition = selectivity_join(0.1)
    workload = build_workload([0.4, 0.8, 1.2, 1.6, 2.0], join_selectivity=0.1)

    def run():
        chain_report = execute_plan(
            build_state_slice_plan(workload),
            DATA.tuples,
            strategy="chain",
            retain_results=False,
            memory_sample_interval=8,
        )
        single = SlidingWindowJoin(2.0, 2.0, condition, name="single")
        from repro.engine.metrics import MetricsCollector

        metrics = MetricsCollector()
        single.bind_metrics(metrics)
        for tup in DATA.tuples:
            port = "left" if tup.stream == "A" else "right"
            single.process(tup, port)
        return chain_report, metrics

    chain_report, single_metrics = benchmark.pedantic(run, rounds=1, iterations=1)
    chain_probe = chain_report.metrics.comparisons["probe"]
    single_probe = single_metrics.comparisons["probe"]
    write_result(
        "ablation_probe_parity",
        format_table(
            ["plan", "probe comparisons"],
            [["5-slice chain", chain_probe], ["single join", single_probe]],
        ),
    )
    # Probing work is identical up to boundary effects (< 1% difference).
    assert abs(chain_probe - single_probe) <= max(1.0, 0.01 * single_probe)
