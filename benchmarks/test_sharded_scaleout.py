"""Sharded scale-out acceptance gate (PR 4).

Wall-clock throughput of one CPU-bound equi-join session, unsharded versus
key-partitioned across N serial :class:`StreamEngine` shards.  Serial
sharding is an *algorithmic* win, not a parallelism win: every arrival
probes only its own shard's window state, which holds ~1/N of the resident
tuples, so the dominant nested-loop probe work drops by ~N even on one
core.  The gate requires ≥1.8× the unsharded tuples/sec at 4 serial shards
with the merged output identical pair-for-pair; the measured trajectory is
appended to ``results/BENCH_sharding.json``.

The workload is sized so each side's window state holds several hundred
tuples (rate × window), which makes probing dominate routing/bookkeeping —
the regime the ROADMAP's "as fast as the hardware allows" line cares about.

All engines run with ``columnar=False``: the ~N algorithmic win this gate
measures lives in per-candidate *scalar* probe work.  The columnar path
vectorises that work into a handful of numpy calls whose cost barely depends
on state size, so sharding it serially mostly re-measures call overhead (the
columnar scale-out gate is ``BENCH_process_scaleout``, with real processes).
"""

from __future__ import annotations

import os
import time

from _bench_util import record_run

from repro.query.predicates import EquiJoinCondition
from repro.runtime import ShardedStreamEngine, StreamEngine
from repro.streams.generators import equi_value_generator, generate_join_workload

RATE = 250
DURATION = 6.0
KEY_DOMAIN = 200
WINDOW = 4.0
BATCH_SIZE = 64
SHARD_COUNTS = (2, 4)

DATA = generate_join_workload(
    rate_a=RATE,
    rate_b=RATE,
    duration=DURATION,
    seed=17,
    value_generator=equi_value_generator(KEY_DOMAIN),
)
CONDITION = EquiJoinCondition("join_key", "join_key", key_domain=KEY_DOMAIN)

SPEEDUP_GATE = 1.8  # 4 serial shards vs the unsharded engine


def _pairs(results) -> list[tuple[int, int]]:
    return [(j.left.seqno, j.right.seqno) for j in results]


def _run_unsharded(rounds: int = 3) -> tuple[float, list[tuple[int, int]]]:
    best = float("inf")
    outputs = None
    for _ in range(rounds):
        engine = StreamEngine(
            CONDITION, batch_size=BATCH_SIZE, probe="nested_loop", columnar=False
        )
        engine.add_query("Q", WINDOW)
        start = time.perf_counter()
        engine.process_many(DATA.tuples)
        engine.flush()
        best = min(best, time.perf_counter() - start)
        outputs = _pairs(engine.results("Q"))
    return best, outputs


def _run_sharded(shards: int, rounds: int = 3) -> tuple[float, list[tuple[int, int]]]:
    best = float("inf")
    outputs = None
    for _ in range(rounds):
        engine = ShardedStreamEngine(
            CONDITION, shards=shards, batch_size=BATCH_SIZE, probe="nested_loop",
            columnar=False,
        )
        engine.add_query("Q", WINDOW)
        start = time.perf_counter()
        engine.process_many(DATA.tuples)
        engine.flush()
        best = min(best, time.perf_counter() - start)
        outputs = _pairs(engine.results("Q"))
    return best, outputs


def test_sharded_scaleout_gate(results_dir):
    base_seconds, base_out = _run_unsharded()
    arrivals = len(DATA.tuples)
    rows = [
        {
            "shards": 1,
            "mode": "unsharded StreamEngine",
            "seconds": round(base_seconds, 6),
            "tuples_per_sec": round(arrivals / base_seconds, 1),
            "speedup_vs_unsharded": 1.0,
        }
    ]
    speedups = {}
    for shards in SHARD_COUNTS:
        seconds, out = _run_sharded(shards)
        # The merged output must be pair-identical (sorted: the sharded
        # merge order is the global (timestamp, seqno) order, which equals
        # the unsharded delivery order only up to batch-boundary ties).
        assert sorted(out) == sorted(base_out), (
            f"{shards}-shard output diverged from the unsharded engine"
        )
        speedups[shards] = base_seconds / seconds
        rows.append(
            {
                "shards": shards,
                "mode": "serial round-robin",
                "seconds": round(seconds, 6),
                "tuples_per_sec": round(arrivals / seconds, 1),
                "speedup_vs_unsharded": round(speedups[shards], 3),
            }
        )
    payload = {
        "benchmark": "sharded_scaleout_equi_join",
        "arrivals": arrivals,
        "workload": {
            "rate_per_stream": RATE,
            "duration_seconds": DURATION,
            "window_seconds": WINDOW,
            "equi_key_domain": KEY_DOMAIN,
            "batch_size": BATCH_SIZE,
            "probe": "nested_loop",
            "columnar": False,
            "joined_pairs": len(base_out),
        },
        "results": rows,
        "speedup_4_shards_vs_unsharded": round(speedups[4], 3),
        "gate": SPEEDUP_GATE,
    }
    path = record_run(results_dir, "sharding", payload)

    # Full 1.8x gate locally; direction-check under CI's shared, xdist-loaded
    # runners (both timings share the contention, but not always evenly).
    gate = 1.4 if os.environ.get("CI") else SPEEDUP_GATE
    assert speedups[4] >= gate, (
        f"4 serial shards reached only {speedups[4]:.2f}x the unsharded "
        f"throughput (gate {gate}x); see {path}"
    )


def test_sharded_process_mode_smoke():
    """The process-parallel driver delivers the same merged answer.

    Correctness smoke only (worker startup dominates at this scale; the
    perf story of process mode is workload-dependent and not gated)."""
    prefix = DATA.tuples[: len(DATA.tuples) // 3]
    serial = ShardedStreamEngine(CONDITION, shards=2, batch_size=BATCH_SIZE)
    serial.add_query("Q", WINDOW)
    serial.process_many(prefix)
    with ShardedStreamEngine(
        CONDITION, shards=2, shard_mode="process", batch_size=BATCH_SIZE
    ) as engine:
        engine.add_query("Q", WINDOW)
        engine.process_many(prefix)
        assert _pairs(engine.results("Q")) == _pairs(serial.results("Q"))
