"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper and, besides
the timing collected by pytest-benchmark, writes the regenerated rows/series
to ``benchmarks/results/<name>.txt`` so the reproduction data survives the
run (and can be diffed against EXPERIMENTS.md).
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def write_result(results_dir):
    """Write a named text artifact with the regenerated figure/table."""

    def _write(name: str, text: str) -> Path:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        return path

    return _write
