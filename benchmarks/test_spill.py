"""Tiered window state acceptance gate (PR 8).

A memory-budgeted session must (a) hold an order of magnitude more window
state than its in-core budget by spilling cold slices to the disk tier,
(b) answer byte-identically to the unbudgeted session, and (c) keep at
least half the unbudgeted throughput.  The measured trajectory is recorded
in ``results/BENCH_spill.json``.

The budget is derived from the workload itself: the unbudgeted run's peak
resident estimate ``R`` (the whole chain in core) divided by 12, so the
``state >= 10x budget`` gate holds by construction *and* is asserted on
the measured peaks.  Both runs pin ``columnar=False`` and nested-loop
probing — the representation whose in-core probe is a full state scan.
The cold path answers the same probes from the per-segment equi-key index
(decoding only the rows whose key matches), which is how a session paying
disk I/O on most of its state can stay within 2x of the in-core wall
clock.
"""

from __future__ import annotations

import os
import time

from _bench_util import record_run

from repro.query.predicates import EquiJoinCondition
from repro.runtime import StreamEngine
from repro.streams.generators import generate_join_workload

RATE = 110
DURATION = 8.0
KEY_DOMAIN = 60
WINDOWS = (0.5, 2.0, 6.0)  # head slice [0, 0.5) stays hot; the rest may spill
DATA = generate_join_workload(rate_a=RATE, rate_b=RATE, duration=DURATION, seed=77)
CONDITION = EquiJoinCondition("join_key", "join_key", key_domain=KEY_DOMAIN)

STATE_OVER_BUDGET_GATE = 10.0
THROUGHPUT_GATE = 0.5


def _run_session(memory_budget: int | None) -> dict:
    """One full admission-schedule run; best-of-2 wall clock."""
    best = float("inf")
    outputs = None
    snapshot = None
    for _ in range(2):
        engine = StreamEngine(
            CONDITION,
            batch_size=32,
            probe="nested_loop",
            columnar=False,
            memory_budget_bytes=memory_budget,
        )
        for name, window in zip(("Q1", "Q2", "Q3"), WINDOWS):
            engine.add_query(name, window)
        start = time.perf_counter()
        engine.process_many(DATA.tuples)
        engine.flush()
        best = min(best, time.perf_counter() - start)
        outputs = [
            [(j.left.seqno, j.right.seqno) for j in engine.results(name)]
            for name in ("Q1", "Q2", "Q3")
        ]
        snapshot = engine.metrics.snapshot()
        engine.close()
    return {"seconds": best, "outputs": outputs, "snapshot": snapshot}


def test_spill_gate(results_dir):
    unbudgeted = _run_session(None)
    peak_in_core = unbudgeted["snapshot"]["memory.max_resident_bytes"]
    assert peak_in_core > 0
    budget = int(peak_in_core // 12)

    budgeted = _run_session(budget)
    assert budgeted["outputs"] == unbudgeted["outputs"], (
        "spilling changed the join answer"
    )

    snap = budgeted["snapshot"]
    peak_budgeted = snap["memory.max_resident_bytes"]
    spilled_bytes = snap["memory.spilled_bytes"]
    segments = snap.get("observations.spill.segments", 0.0)
    cold_reads = snap.get("observations.spill.cold_reads", 0.0)
    state_over_budget = peak_in_core / budget
    throughput_ratio = unbudgeted["seconds"] / budgeted["seconds"]
    arrivals = len(DATA.tuples)

    payload = {
        "benchmark": "tiered_window_state",
        "arrivals": arrivals,
        "workload": {
            "windows": list(WINDOWS),
            "rate_per_stream": RATE,
            "duration_seconds": DURATION,
            "equi_key_domain": KEY_DOMAIN,
            "probe": "nested_loop",
            "columnar": False,
        },
        "memory_budget_bytes": budget,
        "peak_resident_bytes": {
            "unbudgeted": round(peak_in_core),
            "budgeted": round(peak_budgeted),
        },
        "spilled_bytes_final": round(spilled_bytes),
        "segments_written": round(segments),
        "cold_rows_read": round(cold_reads),
        "state_over_budget": round(state_over_budget, 2),
        "results": [
            {
                "mode": mode,
                "seconds": round(run["seconds"], 6),
                "tuples_per_sec": round(arrivals / run["seconds"], 1),
            }
            for mode, run in (("in_core", unbudgeted), ("budgeted", budgeted))
        ],
        "throughput_ratio_budgeted_vs_in_core": round(throughput_ratio, 3),
        "gates": {
            "state_over_budget": STATE_OVER_BUDGET_GATE,
            "throughput_ratio": THROUGHPUT_GATE,
        },
    }
    path = record_run(results_dir, "spill", payload)

    # Gate (a): the session really held >= 10x its budget of window state.
    assert state_over_budget >= STATE_OVER_BUDGET_GATE, (
        f"peak state was only {state_over_budget:.1f}x the budget "
        f"(gate {STATE_OVER_BUDGET_GATE}x); see {path}"
    )
    # ...and did so by actually using the disk tier, not by dodging the
    # budget: segments were written, cold probes were answered, and the
    # resident peak dropped well below the in-core peak.
    assert segments > 0 and cold_reads > 0 and spilled_bytes > 0
    assert peak_budgeted <= 0.5 * peak_in_core, (
        f"budgeted peak resident {peak_budgeted:.0f} B is not materially "
        f"below the in-core peak {peak_in_core:.0f} B"
    )
    # Gate (c): wall-clock throughput.  Shared CI runners have noisy
    # clocks; keep the full gate for local/dedicated runs.
    gate = 0.3 if os.environ.get("CI") else THROUGHPUT_GATE
    assert throughput_ratio >= gate, (
        f"budgeted session reached only {throughput_ratio:.2f}x the "
        f"in-core throughput (gate {gate}x); see {path}"
    )
