"""Figure 17 — state memory of the sharing strategies vs stream rate.

One benchmark per panel (a)-(f).  Each regenerates the panel's curves
(selection pull-up, state-slice chain, selection push-down over rates
20-80 tuples/s), writes the series to ``benchmarks/results`` and asserts the
paper's claims: the state-slice chain uses the least state memory at every
rate, and memory grows with the input rate.

Windows are scaled down by the configured ``time_scale`` (see
``repro.experiments.config``); rates, selectivities and window ratios match
the paper, so the relative curves are directly comparable to the figure.
"""

from __future__ import annotations

import pytest

from repro.experiments.memory_study import FIGURE_17_PANELS, run_panel
from repro.experiments.report import format_memory_points

#: Rates swept per panel.  The paper uses (20, 40, 60, 80); trimming the
#: sweep keeps the full six-panel benchmark suite under a couple of minutes.
RATES = (20, 40, 60, 80)
TIME_SCALE = 0.1


@pytest.mark.parametrize("panel", sorted(FIGURE_17_PANELS))
def test_fig17_state_memory(panel, benchmark, write_result):
    points = benchmark.pedantic(
        run_panel,
        kwargs={"panel": panel, "rates": RATES, "time_scale": TIME_SCALE},
        rounds=1,
        iterations=1,
    )
    windows, s1, s_sigma = FIGURE_17_PANELS[panel]
    header = (
        f"Figure 17({panel}): windows={windows}, S1={s1}, Ssigma={s_sigma}, "
        f"time_scale={TIME_SCALE}\n"
    )
    write_result(f"fig17{panel}_memory", header + format_memory_points(points, panel))

    by_key = {(p.strategy, p.rate): p.memory_tuples for p in points}
    for rate in RATES:
        state_slice = by_key[("state-slice", rate)]
        pullup = by_key[("selection-pullup", rate)]
        pushdown = by_key[("selection-pushdown", rate)]
        # The paper's headline claim: state-slice always needs the least state.
        assert state_slice <= pullup * 1.02
        assert state_slice <= pushdown * 1.02
    # Memory grows with the stream rate for every strategy.
    for strategy in ("state-slice", "selection-pullup", "selection-pushdown"):
        assert by_key[(strategy, RATES[-1])] > by_key[(strategy, RATES[0])]
    # With a selection present the saving is material (paper: 20-30%).
    if s_sigma <= 0.5:
        assert by_key[("state-slice", RATES[-1])] < 0.93 * by_key[
            ("selection-pullup", RATES[-1])
        ]
