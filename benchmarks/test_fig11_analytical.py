"""Figure 11 — analytical savings surfaces of state-slicing (Equation 4).

Regenerates the three panels of Figure 11 over a (ρ, Sσ) grid and checks the
paper's qualitative claims: all savings are non-negative, memory savings
peak near 50%, CPU savings vs pull-up grow with the join selectivity and
approach 100% at the extremes.
"""

from __future__ import annotations

from repro.experiments.analytical import figure_11a, figure_11b, figure_11c
from repro.experiments.report import format_table


def _surface_summary(points) -> tuple[float, float, float]:
    values = [p.value_pct for p in points]
    return min(values), sum(values) / len(values), max(values)


def test_fig11a_memory_savings(benchmark, write_result):
    surfaces = benchmark(figure_11a, 21)
    rows = []
    for name, points in surfaces.items():
        low, mean, high = _surface_summary(points)
        rows.append([name, f"{low:.1f}", f"{mean:.1f}", f"{high:.1f}"])
        assert low >= 0.0
    table = format_table(["surface", "min %", "mean %", "max %"], rows)
    write_result("fig11a_memory_savings", table)
    # Memory savings vs pull-up approach ~50% for small ρ and small Sσ.
    assert max(p.value_pct for p in surfaces["vs_pullup"]) > 40.0
    # Savings vs push-down peak lower (the paper's surface tops out around 30%).
    assert max(p.value_pct for p in surfaces["vs_pushdown"]) < 50.0


def test_fig11b_cpu_vs_pullup(benchmark, write_result):
    surfaces = benchmark(figure_11b, 21)
    rows = []
    means = {}
    for s1, points in sorted(surfaces.items()):
        low, mean, high = _surface_summary(points)
        means[s1] = mean
        rows.append([f"S1={s1:g}", f"{low:.1f}", f"{mean:.1f}", f"{high:.1f}"])
        assert low >= 0.0
    write_result(
        "fig11b_cpu_savings_vs_pullup",
        format_table(["surface", "min %", "mean %", "max %"], rows),
    )
    # Larger join selectivity -> larger CPU savings (the three stacked
    # surfaces of the paper's Figure 11(b)).
    assert means[0.4] > means[0.1] > means[0.025]
    assert max(p.value_pct for p in surfaces[0.4]) > 70.0


def test_fig11c_cpu_vs_pushdown(benchmark, write_result):
    surfaces = benchmark(figure_11c, 21)
    rows = []
    means = {}
    for s1, points in sorted(surfaces.items()):
        low, mean, high = _surface_summary(points)
        means[s1] = mean
        rows.append([f"S1={s1:g}", f"{low:.1f}", f"{mean:.1f}", f"{high:.1f}"])
        assert low >= 0.0
    write_result(
        "fig11c_cpu_savings_vs_pushdown",
        format_table(["surface", "min %", "mean %", "max %"], rows),
    )
    # The savings vs push-down are smaller (paper: up to ~30%) and again grow
    # with the join selectivity.
    assert means[0.4] > means[0.025]
    assert max(p.value_pct for p in surfaces[0.4]) < 60.0
