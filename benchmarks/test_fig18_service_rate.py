"""Figure 18 — service rate of the sharing strategies vs stream rate.

One benchmark per panel (a)-(f).  Service rate is output tuples per unit of
simulated CPU cost (comparisons plus per-operator overhead), the
deterministic analogue of the paper's throughput-per-second metric.  The
asserted shape follows the paper: the state-slice chain clearly beats the
selection pull-up everywhere, matches or beats the selection push-down, and
its advantage grows with the stream rate and with the join selectivity.
"""

from __future__ import annotations

import pytest

from repro.experiments.cpu_study import FIGURE_18_PANELS, run_panel
from repro.experiments.report import format_service_rate_points

RATES = (20, 40, 60, 80)
TIME_SCALE = 0.1


@pytest.mark.parametrize("panel", sorted(FIGURE_18_PANELS))
def test_fig18_service_rate(panel, benchmark, write_result):
    points = benchmark.pedantic(
        run_panel,
        kwargs={"panel": panel, "rates": RATES, "time_scale": TIME_SCALE},
        rounds=1,
        iterations=1,
    )
    windows, s1, s_sigma = FIGURE_18_PANELS[panel]
    header = (
        f"Figure 18({panel}): windows={windows}, S1={s1}, Ssigma={s_sigma}, "
        f"time_scale={TIME_SCALE}\n"
    )
    write_result(
        f"fig18{panel}_service_rate", header + format_service_rate_points(points, panel)
    )

    by_key = {(p.strategy, p.rate): p.service_rate for p in points}
    for rate in RATES:
        state_slice = by_key[("state-slice", rate)]
        pullup = by_key[("selection-pullup", rate)]
        pushdown = by_key[("selection-pushdown", rate)]
        # State-slice clearly dominates the naive pull-up sharing.
        assert state_slice > pullup
        # And stays competitive with selection push-down even at the lowest
        # rate, where the paper's own Equation 4 predicts a near-tie (the
        # advantage is proportional to Sσ·S1).
        assert state_slice >= pushdown * 0.85
    # At the highest rate state-slice matches or beats push-down.
    assert by_key[("state-slice", RATES[-1])] >= by_key[
        ("selection-pushdown", RATES[-1])
    ] * 0.97
    # The advantage over push-down grows with the input rate (paper: the
    # routing cost grows quadratically, the extra purging only linearly).
    relative = [
        by_key[("state-slice", rate)] / by_key[("selection-pushdown", rate)]
        for rate in RATES
    ]
    assert relative[-1] >= relative[0] - 1e-9
    # At high join selectivity the improvement is large (paper: up to ~40%).
    if s1 >= 0.4:
        assert by_key[("state-slice", RATES[-1])] > 1.15 * by_key[
            ("selection-pushdown", RATES[-1])
        ]
