"""Figure 19 — Mem-Opt chain vs CPU-Opt chain service rate.

One benchmark per panel (a)-(e): 12 queries under uniform / mostly-small /
small-large window distributions, then 24 and 36 queries under small-large.
Join selectivity 0.025, no selections, rates 20-80 tuples/s.

Asserted shape (Section 7.3): for the uniform distribution the CPU-Opt chain
equals the Mem-Opt chain (no merge pays off), for skewed distributions the
CPU-Opt chain merges slices and achieves a higher service rate, and the
advantage grows with the number of queries.
"""

from __future__ import annotations

import pytest

from repro.experiments.chain_study import FIGURE_19_PANELS, chain_shapes, run_panel
from repro.experiments.report import format_chain_points

RATES = (20, 40, 60, 80)
TIME_SCALE = 0.04
#: Larger query counts use fewer rate points to keep the suite fast.
PANEL_RATES = {"d": (20, 40, 60), "e": (20, 40)}


@pytest.mark.parametrize("panel", sorted(FIGURE_19_PANELS))
def test_fig19_memopt_vs_cpuopt(panel, benchmark, write_result):
    rates = PANEL_RATES.get(panel, RATES)
    points = benchmark.pedantic(
        run_panel,
        kwargs={"panel": panel, "rates": rates, "time_scale": TIME_SCALE},
        rounds=1,
        iterations=1,
    )
    windows, query_count = FIGURE_19_PANELS[panel]
    shapes = chain_shapes(panel, rate=rates[-1], time_scale=TIME_SCALE)
    header = (
        f"Figure 19({panel}): windows={windows}, queries={query_count}, S1=0.025, "
        f"time_scale={TIME_SCALE}\n"
        f"chain shapes: {shapes}\n"
    )
    write_result(f"fig19{panel}_memopt_vs_cpuopt", header + format_chain_points(points, panel))

    by_key = {(p.strategy, p.rate): p.service_rate for p in points}
    for rate in rates:
        mem_opt = by_key[("state-slice-mem-opt", rate)]
        cpu_opt = by_key[("state-slice-cpu-opt", rate)]
        # The CPU-Opt chain never does worse than the Mem-Opt chain.
        assert cpu_opt >= mem_opt * 0.98
    if windows != "uniform":
        # Skewed windows: slices get merged and the merged chain wins.  (For
        # the uniform distribution the paper reports no merging at its full
        # window scale; at the scaled-down windows used here the optimizer
        # may still merge, so only the ordering is asserted above.)
        assert shapes["cpu_opt_slices"] < shapes["mem_opt_slices"]
        top_rate = rates[-1]
        assert by_key[("state-slice-cpu-opt", top_rate)] > by_key[
            ("state-slice-mem-opt", top_rate)
        ]
