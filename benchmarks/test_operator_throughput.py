"""Supplementary micro-benchmarks (not a paper figure).

Wall-clock throughput of the main operator implementations on this machine:
the regular sliding-window join (nested-loop and hash), a sliced-join chain,
and the three executable shared plans.  These complement the simulated-cost
figures with honest Python-level numbers and catch performance regressions
in the operator implementations themselves.

The batch-size sweep additionally records the batched-executor speedup over
per-tuple execution in ``results/BENCH_batching.json`` so the performance
trajectory of the batch-aware runtime is tracked from PR 1 on.
"""

from __future__ import annotations

import os
import time

import pytest
from _bench_util import record_run

from repro.baselines.pullup import build_pullup_plan
from repro.baselines.pushdown import build_pushdown_plan
from repro.core.chain import SlicedJoinChain
from repro.core.plan_builder import build_state_slice_plan
from repro.engine.executor import execute_plan
from repro.operators.join import SlidingWindowJoin
from repro.query.predicates import EquiJoinCondition, selectivity_join
from repro.query.workload import build_workload
from repro.runtime import StreamEngine
from repro.streams.generators import equi_value_generator, generate_join_workload

DATA = generate_join_workload(rate_a=60, rate_b=60, duration=6.0, seed=99)
WORKLOAD = build_workload(
    [0.5, 1.0, 1.5], join_selectivity=0.1, filter_selectivities=[1.0, 0.5, 0.5]
)

#: Arrival batch sizes swept by the batching benchmark (1 = per-tuple).
BATCH_SIZES = (1, 7, 32, 64, 128)


def _drive_binary_join(join):
    for tup in DATA.tuples:
        port = "left" if tup.stream == "A" else "right"
        join.process(tup, port)
    return join


def test_throughput_nested_loop_join(benchmark):
    condition = EquiJoinCondition("join_key", "join_key", key_domain=100)
    join = benchmark.pedantic(
        lambda: _drive_binary_join(SlidingWindowJoin(1.5, 1.5, condition)),
        rounds=3,
        iterations=1,
    )
    assert join.state_size() > 0


def test_throughput_hash_join(benchmark):
    condition = EquiJoinCondition("join_key", "join_key", key_domain=100)
    join = benchmark.pedantic(
        lambda: _drive_binary_join(
            SlidingWindowJoin(1.5, 1.5, condition, algorithm="hash")
        ),
        rounds=3,
        iterations=1,
    )
    assert join.state_size() > 0


def test_throughput_sliced_join_chain(benchmark):
    condition = selectivity_join(0.1)

    def run():
        chain = SlicedJoinChain([0.0, 0.5, 1.0, 1.5], condition)
        chain.process_all(DATA.tuples)
        return chain

    chain = benchmark.pedantic(run, rounds=3, iterations=1)
    assert chain.state_size() > 0


@pytest.mark.parametrize(
    "builder",
    [build_state_slice_plan, build_pullup_plan, build_pushdown_plan],
    ids=["state-slice", "selection-pullup", "selection-pushdown"],
)
def test_throughput_shared_plans(builder, benchmark):
    def run():
        return execute_plan(
            builder(WORKLOAD),
            DATA.tuples,
            retain_results=False,
            memory_sample_interval=16,
        )

    report = benchmark.pedantic(run, rounds=2, iterations=1)
    assert report.metrics.total_emitted > 0


def _time_state_slice_run(batch_size: int, rounds: int = 3) -> float:
    """Best-of-N wall-clock seconds for one state-slice run."""
    best = float("inf")
    for _ in range(rounds):
        plan = build_state_slice_plan(WORKLOAD)
        start = time.perf_counter()
        execute_plan(
            plan,
            DATA.tuples,
            retain_results=False,
            memory_sample_interval=16,
            batch_size=batch_size,
        )
        best = min(best, time.perf_counter() - start)
    return best


def _probe_hot_path_entry(rounds: int = 3) -> dict:
    """Nested-loop probe micro-benchmark riding along with the sweep.

    Isolates the sliced-join probe inner loop (no executor, no routing) so
    the trajectory shows hot-path changes — e.g. the pre-bound probe
    predicate of ``JoinCondition.bind_left`` — separately from batching
    effects.  Successive runs in ``BENCH_batching.json`` are the
    before/after record.
    """
    condition = selectivity_join(0.1)
    best = float("inf")
    for _ in range(rounds):
        chain = SlicedJoinChain([0.0, 0.5, 1.0, 1.5], condition)
        start = time.perf_counter()
        chain.process_batch(DATA.tuples)
        best = min(best, time.perf_counter() - start)
    return {
        "chain_boundaries": [0.0, 0.5, 1.0, 1.5],
        "probe": "nested_loop",
        "seconds": round(best, 6),
        "tuples_per_sec": round(len(DATA.tuples) / best, 1),
    }


#: Workload for the columnar-vs-tuple comparison: an equi-join whose window
#: state holds several hundred tuples, so the probe path dominates.
COLUMNAR_DATA = generate_join_workload(
    rate_a=250,
    rate_b=250,
    duration=6.0,
    seed=5,
    value_generator=equi_value_generator(200),
)
COLUMNAR_CONDITION = EquiJoinCondition("join_key", "join_key", key_domain=200)
COLUMNAR_WINDOW = 4.0
COLUMNAR_GATE = 2.0


def _columnar_vs_tuple_entry(rounds: int = 3) -> dict:
    """Single-thread columnar vs tuple-at-a-time hot path (PR 6).

    Same engine, same batches, same query — only the batch representation
    differs: struct-of-arrays numpy columns versus the per-tuple scalar
    loop.  Outputs must match pair-for-pair (the exhaustive equivalence
    property lives in ``tests/test_columnar_equivalence.py``); the entry
    rides in ``BENCH_batching.json`` so both batching axes share one
    trajectory file.
    """
    timings: dict[bool, float] = {}
    outputs: dict[bool, list] = {}
    for columnar in (False, True):
        best = float("inf")
        for _ in range(rounds):
            engine = StreamEngine(
                COLUMNAR_CONDITION,
                batch_size=64,
                probe="nested_loop",
                columnar=columnar,
            )
            engine.add_query("Q", COLUMNAR_WINDOW)
            start = time.perf_counter()
            engine.process_many(COLUMNAR_DATA.tuples)
            engine.flush()
            best = min(best, time.perf_counter() - start)
            outputs[columnar] = [
                (j.left.seqno, j.right.seqno) for j in engine.results("Q")
            ]
        timings[columnar] = best
    assert outputs[True] == outputs[False], (
        "columnar batches changed the joined output"
    )
    arrivals = len(COLUMNAR_DATA.tuples)
    return {
        "arrivals": arrivals,
        "window_seconds": COLUMNAR_WINDOW,
        "equi_key_domain": 200,
        "batch_size": 64,
        "tuple_seconds": round(timings[False], 6),
        "columnar_seconds": round(timings[True], 6),
        "tuple_tuples_per_sec": round(arrivals / timings[False], 1),
        "columnar_tuples_per_sec": round(arrivals / timings[True], 1),
        "speedup_columnar_vs_tuple": round(timings[False] / timings[True], 3),
        "gate": COLUMNAR_GATE,
    }


def test_throughput_batch_size_sweep(results_dir):
    """Sweep the executor batch size and record the perf trajectory.

    Acceptance gate of the batch-aware runtime: some batch size >= 32 must
    reach at least 1.5x the per-tuple tuples/sec, with outputs identical to
    batch size 1 (the output identity is asserted exhaustively by
    ``tests/test_batch_execution.py``; a spot check rides along here).
    """
    reference = execute_plan(build_state_slice_plan(WORKLOAD), DATA.tuples)
    baseline_seconds = _time_state_slice_run(1)
    rows = []
    for batch_size in BATCH_SIZES:
        seconds = baseline_seconds if batch_size == 1 else _time_state_slice_run(batch_size)
        report = execute_plan(
            build_state_slice_plan(WORKLOAD), DATA.tuples, batch_size=batch_size
        )
        identical = all(
            [(j.left.seqno, j.right.seqno) for j in report.results[name]]
            == [(j.left.seqno, j.right.seqno) for j in reference.results[name]]
            for name in reference.results
        )
        rows.append(
            {
                "batch_size": batch_size,
                "seconds": round(seconds, 6),
                "tuples_per_sec": round(len(DATA.tuples) / seconds, 1),
                "speedup_vs_per_tuple": round(baseline_seconds / seconds, 3),
                "outputs_identical_to_per_tuple": identical,
            }
        )
    payload = {
        "benchmark": "batching_sweep",
        "plan": "state-slice (Mem-Opt)",
        "arrivals": len(DATA.tuples),
        "workload": {
            "windows": [0.5, 1.0, 1.5],
            "rate_per_stream": 60,
            "join_selectivity": 0.1,
            "filter_selectivities": [1.0, 0.5, 0.5],
        },
        "results": rows,
        "probe_hot_path": _probe_hot_path_entry(),
        "columnar_hot_path": _columnar_vs_tuple_entry(),
    }
    path = record_run(results_dir, "batching", payload)

    assert all(row["outputs_identical_to_per_tuple"] for row in rows)
    columnar_speedup = payload["columnar_hot_path"]["speedup_columnar_vs_tuple"]
    columnar_gate = 1.5 if os.environ.get("CI") else COLUMNAR_GATE
    assert columnar_speedup >= columnar_gate, (
        f"the columnar hot path reached only {columnar_speedup:.2f}x the "
        f"tuple-at-a-time throughput (gate {columnar_gate}x); see {path}"
    )
    best_batched = max(
        row["speedup_vs_per_tuple"] for row in rows if row["batch_size"] >= 32
    )
    # Shared CI runners have noisy wall clocks; keep the full 1.5x gate for
    # local/dedicated runs and only sanity-check the direction on CI (the
    # measured trajectory is still recorded in BENCH_batching.json).
    threshold = 1.2 if os.environ.get("CI") else 1.5
    assert best_batched >= threshold, (
        f"batched executor reached only {best_batched:.2f}x per-tuple throughput "
        f"(threshold {threshold}x); see {path}"
    )
