"""Supplementary micro-benchmarks (not a paper figure).

Wall-clock throughput of the main operator implementations on this machine:
the regular sliding-window join (nested-loop and hash), a sliced-join chain,
and the three executable shared plans.  These complement the simulated-cost
figures with honest Python-level numbers and catch performance regressions
in the operator implementations themselves.
"""

from __future__ import annotations

import pytest

from repro.baselines.pullup import build_pullup_plan
from repro.baselines.pushdown import build_pushdown_plan
from repro.core.chain import SlicedJoinChain
from repro.core.plan_builder import build_state_slice_plan
from repro.engine.executor import execute_plan
from repro.operators.join import SlidingWindowJoin
from repro.query.predicates import EquiJoinCondition, selectivity_join
from repro.query.workload import build_workload
from repro.streams.generators import generate_join_workload

DATA = generate_join_workload(rate_a=60, rate_b=60, duration=6.0, seed=99)
WORKLOAD = build_workload(
    [0.5, 1.0, 1.5], join_selectivity=0.1, filter_selectivities=[1.0, 0.5, 0.5]
)


def _drive_binary_join(join):
    for tup in DATA.tuples:
        port = "left" if tup.stream == "A" else "right"
        join.process(tup, port)
    return join


def test_throughput_nested_loop_join(benchmark):
    condition = EquiJoinCondition("join_key", "join_key", key_domain=100)
    join = benchmark.pedantic(
        lambda: _drive_binary_join(SlidingWindowJoin(1.5, 1.5, condition)),
        rounds=3,
        iterations=1,
    )
    assert join.state_size() > 0


def test_throughput_hash_join(benchmark):
    condition = EquiJoinCondition("join_key", "join_key", key_domain=100)
    join = benchmark.pedantic(
        lambda: _drive_binary_join(
            SlidingWindowJoin(1.5, 1.5, condition, algorithm="hash")
        ),
        rounds=3,
        iterations=1,
    )
    assert join.state_size() > 0


def test_throughput_sliced_join_chain(benchmark):
    condition = selectivity_join(0.1)

    def run():
        chain = SlicedJoinChain([0.0, 0.5, 1.0, 1.5], condition)
        chain.process_all(DATA.tuples)
        return chain

    chain = benchmark.pedantic(run, rounds=3, iterations=1)
    assert chain.state_size() > 0


@pytest.mark.parametrize(
    "builder",
    [build_state_slice_plan, build_pullup_plan, build_pushdown_plan],
    ids=["state-slice", "selection-pullup", "selection-pushdown"],
)
def test_throughput_shared_plans(builder, benchmark):
    def run():
        return execute_plan(
            builder(WORKLOAD),
            DATA.tuples,
            retain_results=False,
            memory_sample_interval=16,
        )

    report = benchmark.pedantic(run, rounds=2, iterations=1)
    assert report.metrics.total_emitted > 0
