"""Process-mode scale-out acceptance gate (PR 6).

Wall-clock throughput of one CPU-bound equi-join session, key-partitioned
across 4 shards, driven two ways: *serial* (in-process engines, one core)
versus *process* (one worker process per shard fed through shared-memory
arrival rings, results pulled in one batched ``pop_results_all`` round-trip
per shard).  The workload is probe-dominated and low-selectivity — a sparse
key domain over a wide window, scalar probe path — so almost all of the work
is per-candidate predicate evaluation inside the shards, the regime process
parallelism exists for.

Two gates, chosen by what the hardware can express:

* With at least ``SHARDS`` usable cores, the process driver must reach
  ≥1.0× the serial driver's tuples/sec — the ring transport's whole reason
  to exist is that the old per-batch pickled pipe *calls* lost this race.
* On fewer cores (CI containers are often capped to one), parallel speedup
  is physically unavailable: every worker time-slices the same CPU and all
  transport cost is pure loss.  The gate then bounds that loss instead:
  process mode must stay within ``OVERHEAD_FLOOR`` of serial, which still
  fails if the transport regresses to per-call pipe round-trips.

Either way the merged outputs must be pair-identical, worker startup is
excluded from the timed region, and the measured trajectory is appended to
``results/BENCH_process_scaleout.json``.
"""

from __future__ import annotations

import os
import random
import time

from _bench_util import record_run

from repro.query.predicates import EquiJoinCondition
from repro.runtime import ShardedStreamEngine
from repro.streams.tuples import make_tuple

RATE = 500  # tuples/s per stream
DURATION = 8.0
KEY_DOMAIN = 40_000  # sparse: probes scan, almost nothing joins
WINDOW = 6.0
BATCH_SIZE = 256
SHARDS = 4
SPEEDUP_GATE = 1.0  # process vs serial, when the cores exist
OVERHEAD_FLOOR = 0.5  # process vs serial, when they don't

CONDITION = EquiJoinCondition("join_key", "join_key", key_domain=KEY_DOMAIN)


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def make_stream() -> list:
    rng = random.Random(7)
    tuples = []
    timestamp = 0.0
    while timestamp < DURATION:
        timestamp += rng.expovariate(2 * RATE)
        tuples.append(
            make_tuple(
                rng.choice("AB"),
                timestamp,
                join_key=rng.randrange(KEY_DOMAIN),
                value=rng.random(),
            )
        )
    return tuples


DATA = make_stream()


def _pairs(results) -> dict[str, list[tuple[int, int]]]:
    return {name: [(j.left.seqno, j.right.seqno) for j in joined] for name, joined in results.items()}


def _run(mode: str, rounds: int = 3) -> tuple[float, dict]:
    best = float("inf")
    outputs = None
    for _ in range(rounds):
        kwargs: dict = dict(
            shards=SHARDS, batch_size=BATCH_SIZE, probe="nested_loop", columnar=False
        )
        if mode == "process":
            kwargs["shard_mode"] = "process"
        with ShardedStreamEngine(CONDITION, **kwargs) as engine:
            engine.add_query("Q", WINDOW)
            # Workers (process mode) are already spawned: the timed region is
            # the steady-state stream, not process startup.
            start = time.perf_counter()
            engine.process_many(DATA)
            engine.flush()
            results = engine.pop_results_all()
            best = min(best, time.perf_counter() - start)
            outputs = _pairs(results)
    return best, outputs


def test_process_scaleout_gate(results_dir):
    cores = _usable_cores()
    serial_seconds, serial_out = _run("serial")
    process_seconds, process_out = _run("process")

    # Answer preservation: the ring transport and batched result pulls must
    # not change a single joined pair.
    assert process_out == serial_out, (
        "process-mode merged output diverged from the serial driver"
    )

    arrivals = len(DATA)
    speedup = serial_seconds / process_seconds
    parallel = cores >= SHARDS
    gate = SPEEDUP_GATE if parallel else OVERHEAD_FLOOR
    payload = {
        "benchmark": "process_scaleout_equi_join",
        "arrivals": arrivals,
        "usable_cores": cores,
        "workload": {
            "rate_per_stream": RATE,
            "duration_seconds": DURATION,
            "window_seconds": WINDOW,
            "equi_key_domain": KEY_DOMAIN,
            "batch_size": BATCH_SIZE,
            "shards": SHARDS,
            "probe": "nested_loop",
            "columnar": False,
            "joined_pairs": sum(len(v) for v in serial_out.values()),
        },
        "results": [
            {
                "mode": "serial (4 in-process shards)",
                "seconds": round(serial_seconds, 6),
                "tuples_per_sec": round(arrivals / serial_seconds, 1),
                "speedup_vs_serial": 1.0,
            },
            {
                "mode": "process (4 workers, shared-memory rings)",
                "seconds": round(process_seconds, 6),
                "tuples_per_sec": round(arrivals / process_seconds, 1),
                "speedup_vs_serial": round(speedup, 3),
            },
        ],
        "speedup_process_vs_serial": round(speedup, 3),
        "gate": gate,
        "gate_kind": "parallel speedup" if parallel else "single-core overhead floor",
    }
    path = record_run(results_dir, "process_scaleout", payload)

    if parallel:
        # Relaxed under CI's shared, xdist-loaded runners: the two timings
        # share the contention, but not always evenly.
        gate = 0.9 if os.environ.get("CI") else SPEEDUP_GATE
        assert speedup >= gate, (
            f"4 worker processes reached only {speedup:.2f}x the serial "
            f"driver on {cores} cores (gate {gate}x); see {path}"
        )
    else:
        assert speedup >= OVERHEAD_FLOOR, (
            f"process mode fell to {speedup:.2f}x the serial driver on a "
            f"{cores}-core host (transport-overhead floor {OVERHEAD_FLOOR}x); "
            f"see {path}"
        )
