"""Shared trajectory writer for the ``BENCH_*.json`` artifacts.

Every perf acceptance gate (batching, hash probing, adaptive rebalance,
sharded scale-out) records its measurements in a machine-readable JSON file
under ``benchmarks/results/``.  Historically each benchmark hand-rolled its
own ``json.dumps``/``write_text`` and clobbered the previous run; this
module gives them one schema and append-don't-clobber semantics, so the
performance *trajectory* of the repo survives across runs::

    {
      "schema": "bench-trajectory/v1",
      "benchmark": "<name>",
      "runs": [ {<run payload>, "recorded_at": "<utc iso>"}, ... ]
    }

A legacy single-run file (the pre-v1 flat payload) is absorbed as the first
run, so earlier measurements — e.g. the probe hot path *before* a
micro-optimization — remain in the trajectory next to the new ones.
"""

from __future__ import annotations

import json
from datetime import datetime, timezone
from pathlib import Path

SCHEMA = "bench-trajectory/v1"

#: Cap on retained runs per benchmark, newest kept (the artifacts live in
#: git — unbounded append would bloat every future diff).
MAX_RUNS = 25


def record_run(results_dir: Path, name: str, payload: dict, keep: int = MAX_RUNS) -> Path:
    """Append one run's measurements to ``BENCH_<name>.json``.

    ``payload`` is the benchmark's own dictionary (workload description,
    measured numbers, gates).  Existing runs are preserved — including a
    legacy flat-schema file, which is wrapped as the trajectory's first
    entry — and the history is trimmed to the newest ``keep`` runs.
    Returns the path written.
    """
    path = Path(results_dir) / f"BENCH_{name}.json"
    runs: list[dict] = []
    if path.exists():
        try:
            existing = json.loads(path.read_text())
        except ValueError:
            existing = None
        if isinstance(existing, dict):
            if isinstance(existing.get("runs"), list):
                runs = [run for run in existing["runs"] if isinstance(run, dict)]
            else:
                runs = [existing]  # legacy single-run payload becomes run 0
    entry = dict(payload)
    entry.setdefault(
        "recorded_at", datetime.now(timezone.utc).isoformat(timespec="seconds")
    )
    runs.append(entry)
    document = {"schema": SCHEMA, "benchmark": name, "runs": runs[-keep:]}
    path.write_text(json.dumps(document, indent=2) + "\n")
    return path


def latest_run(results_dir: Path, name: str) -> dict | None:
    """The most recent run recorded for a benchmark, or None."""
    path = Path(results_dir) / f"BENCH_{name}.json"
    if not path.exists():
        return None
    try:
        document = json.loads(path.read_text())
    except ValueError:
        return None
    if isinstance(document, dict) and isinstance(document.get("runs"), list):
        runs = [run for run in document["runs"] if isinstance(run, dict)]
        return runs[-1] if runs else None
    return document if isinstance(document, dict) else None
