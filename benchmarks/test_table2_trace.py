"""Table 2 — execution trace of the one-way sliced-join chain.

Benchmarks the replay of the paper's hand-run scenario and writes the
regenerated table next to the paper's published rows.  The boundary
convention differs (see ``repro.experiments.traces``): pairs whose timestamp
gap equals a slice boundary are attributed to the next slice here, so a few
cells differ from the paper's illustration while the overall chain output —
the subject of Theorem 1 — is identical.
"""

from __future__ import annotations

from repro.experiments.report import format_trace
from repro.experiments.traces import PAPER_TABLE_2, table_2_full_outputs, table_2_trace


def test_table2_chain_trace(benchmark, write_result):
    rows = benchmark(table_2_trace)
    assert len(rows) == len(PAPER_TABLE_2) == 10
    text = (
        "Regenerated trace (half-open slice convention):\n"
        + format_trace(rows)
        + "\n\nPaper's published trace (closed-boundary illustration):\n"
        + format_trace(PAPER_TABLE_2)
    )
    write_result("table2_trace", text)
    # The first three steps (pure insertions) match the paper exactly.
    for index in range(3):
        assert rows[index].state_j1 == PAPER_TABLE_2[index].state_j1
    # The chain's complete output equals the regular one-way window join.
    assert table_2_full_outputs() == {
        "(a1,b1)",
        "(a2,b1)",
        "(a3,b1)",
        "(a2,b2)",
        "(a3,b2)",
    }
