"""Live resharding acceptance gate (PR 5).

Wall-clock throughput of one CPU-bound equi-join session under a *drifting*
load schedule: a calm phase one shard handles comfortably, then a sustained
burst at several times the rate.  The static session keeps the shard count
it was planned with (N=1, right for phase one); the elastic session runs the
same plan but lets a :class:`ShardPlanner` watch the measured load and
reshard mid-stream — repartitioning the resident window state — once the
burst makes more shards worth their routing overhead.

The gate requires the elastic session to reach ≥1.3× the static session's
tuples/sec over the whole schedule, with the merged output identical
pair-for-pair (the reshard must pay for itself *and* preserve the answer).
The measured trajectory is appended to ``results/BENCH_resharding.json``.

Both sessions run with ``columnar=False``: this benchmark isolates the
*sharding* axis, whose serial-mode payoff is dividing per-candidate scalar
probe work across shards.  The columnar probe path vectorises that work away
(its scale-out story is ``BENCH_process_scaleout``, where shards are real
processes), so measuring it here would compare two overhead-dominated loops.
"""

from __future__ import annotations

import os
import random
import time

from _bench_util import record_run

from repro.query.predicates import EquiJoinCondition
from repro.runtime import ShardedStreamEngine, ShardPlanner
from repro.streams.tuples import make_tuple

CALM_RATE = 120  # tuples/s per stream, phase one
BURST_RATE = 450  # tuples/s per stream, phase two
CALM_SECONDS = 2.0
BURST_SECONDS = 3.5
KEY_DOMAIN = 180
WINDOW = 3.0
BATCH_SIZE = 64
MAX_SHARDS = 4
SPEEDUP_GATE = 1.3
PLAN_EVERY = 64  # arrivals between ShardPlanner.should_reshard calls

CONDITION = EquiJoinCondition("join_key", "join_key", key_domain=KEY_DOMAIN)


def make_drifting_stream() -> list:
    """Two-phase arrival sequence: calm, then a sustained burst."""
    rng = random.Random(23)
    tuples = []
    timestamp = 0.0
    for rate, seconds in ((CALM_RATE, CALM_SECONDS), (BURST_RATE, BURST_SECONDS)):
        phase_end = timestamp + seconds
        while timestamp < phase_end:
            timestamp += rng.expovariate(2 * rate)
            tuples.append(
                make_tuple(
                    rng.choice("AB"),
                    timestamp,
                    join_key=rng.randrange(KEY_DOMAIN),
                    value=rng.random(),
                )
            )
    return tuples


DATA = make_drifting_stream()


def _pairs(results) -> list[tuple[int, int]]:
    return sorted((j.left.seqno, j.right.seqno) for j in results)


def _planner() -> ShardPlanner:
    return ShardPlanner(
        max_shards=MAX_SHARDS,
        # One shard absorbs the calm phase (2 * CALM_RATE total) with room to
        # spare; the burst (2 * BURST_RATE) recommends the full MAX_SHARDS.
        target_rate_per_shard=2.2 * CALM_RATE,
        window=0.4,
        hysteresis=2,
        cooldown=2.0,
        min_arrivals=64,
    )


def _run(elastic: bool, rounds: int = 3):
    best = float("inf")
    outputs = None
    final_shards = None
    events = []
    for _ in range(rounds):
        engine = ShardedStreamEngine(
            CONDITION, shards=1, batch_size=BATCH_SIZE, probe="nested_loop",
            columnar=False,
        )
        engine.add_query("Q", WINDOW)
        planner = _planner() if elastic else None
        events = []
        start = time.perf_counter()
        for index, tup in enumerate(DATA):
            engine.process(tup)
            if planner is not None and index % PLAN_EVERY == PLAN_EVERY - 1:
                event = planner.maybe_reshard(engine)
                if event is not None:
                    events.append(event)
        engine.flush()
        best = min(best, time.perf_counter() - start)
        outputs = _pairs(engine.results("Q"))
        final_shards = engine.shards
    return best, outputs, final_shards, events


def test_resharding_beats_static_under_drift(results_dir):
    static_seconds, static_out, static_shards, _ = _run(elastic=False)
    elastic_seconds, elastic_out, elastic_shards, events = _run(elastic=True)

    # Answer preservation: resharding mid-burst changes nothing downstream.
    assert elastic_out == static_out, (
        "the resharded session's merged output diverged from the static one"
    )
    # The planner actually resized the session (otherwise the benchmark
    # silently measures two identical runs).
    assert static_shards == 1
    assert elastic_shards > 1, "the planner never resharded under the burst"

    arrivals = len(DATA)
    speedup = static_seconds / elastic_seconds
    payload = {
        "benchmark": "live_resharding_under_drift",
        "arrivals": arrivals,
        "workload": {
            "calm_rate_per_stream": CALM_RATE,
            "calm_seconds": CALM_SECONDS,
            "burst_rate_per_stream": BURST_RATE,
            "burst_seconds": BURST_SECONDS,
            "window_seconds": WINDOW,
            "equi_key_domain": KEY_DOMAIN,
            "batch_size": BATCH_SIZE,
            "probe": "nested_loop",
            "columnar": False,
            "joined_pairs": len(static_out),
        },
        "results": [
            {
                "mode": "static (1 shard throughout)",
                "seconds": round(static_seconds, 6),
                "tuples_per_sec": round(arrivals / static_seconds, 1),
                "speedup_vs_static": 1.0,
            },
            {
                "mode": f"elastic (ShardPlanner, ends at {elastic_shards} shards)",
                "seconds": round(elastic_seconds, 6),
                "tuples_per_sec": round(arrivals / elastic_seconds, 1),
                "speedup_vs_static": round(speedup, 3),
                "reshards": [
                    {
                        "at_stream_time": round(event.stream_time, 3),
                        "shards": f"{event.old_shards}->{event.new_shards}",
                        "moved_tuples": event.moved_tuples,
                        "resident_tuples": event.resident_tuples,
                    }
                    for event in events
                ],
            },
        ],
        "speedup_elastic_vs_static": round(speedup, 3),
        "gate": SPEEDUP_GATE,
    }
    path = record_run(results_dir, "resharding", payload)

    # Full 1.3x gate locally; direction-check under CI's shared, xdist-loaded
    # runners (both timings share the contention, but not always evenly).
    gate = 1.1 if os.environ.get("CI") else SPEEDUP_GATE
    assert speedup >= gate, (
        f"the elastic session reached only {speedup:.2f}x the static "
        f"throughput under drift (gate {gate}x); see {path}"
    )
