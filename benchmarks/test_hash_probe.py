"""Hash-probe acceptance gate (PR 2).

Wall-clock throughput of the sliced-join chain on an equi-join workload,
nested-loop probing versus the per-slice hash index.  The gate requires the
hash path to reach at least 2× the nested-loop tuples/sec with outputs
identical pair-for-pair; the measured trajectory is recorded in
``results/BENCH_hash_probe.json``.

The workload is sized so each side's window state holds a few hundred
tuples: nested loops then pay hundreds of probe comparisons per arrival
while the hash path pays roughly ``state × S1`` (one key bucket), which is
where the 2× bar clears with a wide margin on any machine.

Both runs pin ``columnar=False``: this gate measures the hash index
against the per-candidate *scalar* scan it was built to replace.  The
columnar probe path vectorises that scan away, which compresses the very
margin under test (its own win is gated by the ``columnar_hot_path`` entry
in ``BENCH_batching.json``).
"""

from __future__ import annotations

import os
import time

from _bench_util import record_run

from repro.core.chain import SlicedJoinChain
from repro.query.predicates import EquiJoinCondition
from repro.runtime import StreamEngine
from repro.streams.generators import generate_join_workload

RATE = 120
DURATION = 6.0
KEY_DOMAIN = 200
BOUNDARIES = [0.0, 1.0, 3.0]
DATA = generate_join_workload(rate_a=RATE, rate_b=RATE, duration=DURATION, seed=42)
CONDITION = EquiJoinCondition("join_key", "join_key", key_domain=KEY_DOMAIN)

SPEEDUP_GATE = 2.0


def _run_chain(probe: str) -> tuple[float, list[tuple[int, int, int]]]:
    """Best-of-3 wall-clock seconds plus the tagged output pairs."""
    best = float("inf")
    outputs = None
    for _ in range(3):
        chain = SlicedJoinChain(BOUNDARIES, CONDITION, probe=probe, columnar=False)
        start = time.perf_counter()
        results = chain.process_batch(DATA.tuples)
        best = min(best, time.perf_counter() - start)
        outputs = [(index, j.left.seqno, j.right.seqno) for index, j in results]
    return best, outputs


def test_hash_probe_speedup_gate(results_dir):
    nested_seconds, nested_out = _run_chain("nested_loop")
    hashed_seconds, hashed_out = _run_chain("hash")
    assert nested_out == hashed_out, "hash probing changed the join answer"

    speedup = nested_seconds / hashed_seconds
    # Shared CI runners (now also running tier-1 under pytest-xdist) have
    # noisy wall clocks; keep the full 2x gate for local/dedicated runs and
    # direction-check on CI — the trajectory still records the measurement.
    gate = 1.4 if os.environ.get("CI") else SPEEDUP_GATE
    arrivals = len(DATA.tuples)
    payload = {
        "benchmark": "hash_probe_equi_join",
        "arrivals": arrivals,
        "workload": {
            "chain_boundaries": BOUNDARIES,
            "rate_per_stream": RATE,
            "duration_seconds": DURATION,
            "equi_key_domain": KEY_DOMAIN,
            "columnar": False,
        },
        "results": [
            {
                "probe": name,
                "seconds": round(seconds, 6),
                "tuples_per_sec": round(arrivals / seconds, 1),
                "joined_pairs": len(nested_out),
            }
            for name, seconds in (
                ("nested_loop", nested_seconds),
                ("hash", hashed_seconds),
            )
        ],
        "speedup_hash_vs_nested_loop": round(speedup, 3),
        "gate": SPEEDUP_GATE,
    }
    path = record_run(results_dir, "hash_probe", payload)

    assert speedup >= gate, (
        f"hash probing reached only {speedup:.2f}x nested-loop throughput "
        f"(gate {gate}x); see {path}"
    )


def test_hash_probe_engine_outputs_identical():
    """The StreamEngine's probe flag rides the same path: spot-check that a
    live session with admissions mid-stream stays pair-identical."""
    outputs = {}
    for probe in ("nested_loop", "hash"):
        engine = StreamEngine(CONDITION, batch_size=32, probe=probe, columnar=False)
        engine.add_query("Q1", 3.0)
        for index, tup in enumerate(DATA.tuples):
            if index == len(DATA.tuples) // 2:
                engine.add_query("Q2", 1.0)
            engine.process(tup)
        engine.flush()
        outputs[probe] = [
            [(j.left.seqno, j.right.seqno) for j in engine.results(name)]
            for name in ("Q1", "Q2")
        ]
    assert outputs["nested_loop"] == outputs["hash"]
