"""Adaptive rebalance acceptance gate (statistics-plane PR).

A drifting workload: for the first third of the stream the left stream's
``value`` attribute is shifted into [0.8, 1), so Q2's declared selection
``value > 0.8`` passes *everything* (measured Sσ = 1.0) and the CPU-Opt
chain under the measured statistics is the fully merged slice [0, W2).  At
the drift point the value distribution becomes uniform on [0, 1) — the
selection suddenly bites (Sσ = 0.2) and the optimal chain splits at W1 so
the pushed-down filter can shed 80% of the left stream before the long
slice.

Three identical sessions process the same arrivals:

* **static** — optimized once for the pre-drift statistics, never touched
  again (the merged chain keeps paying full-rate probes after the drift);
* **oracle** — manually re-optimized with the ground-truth post-drift
  statistics exactly at the drift point;
* **adaptive** — an :class:`AdaptivePolicy` estimates its own statistics
  from windowed counter deltas and migrates when it detects the drift.

The gate (ISSUE 3 acceptance): over the post-drift measurement window the
adaptive session's service rate (delivered results per simulated CPU cost,
``Csys`` included) must be at least 1.2× the static session's and within
10% of the oracle's, with all three sessions delivering identical answers.
The measured trajectory is recorded in ``results/BENCH_adaptive.json``.
"""

from __future__ import annotations

from dataclasses import dataclass

from _bench_util import record_run

from repro.core.merge_graph import ChainCostParameters
from repro.core.statistics import StreamStatistics
from repro.engine.metrics import MetricsCollector, MetricsSnapshot
from repro.query.predicates import selectivity_filter, selectivity_join
from repro.runtime import AdaptivePolicy, StreamEngine
from repro.streams.generators import SelectivityValueGenerator, generate_join_workload
from repro.streams.tuples import StreamTuple

RATE = 40.0
DRIFT_AT = 12.0          # stream-seconds of pre-drift load
END_AT = 36.0            # total stream length
MEASURE_FROM = 24.0      # post-drift window: [24, 36) stream-seconds
W1, W2 = 0.2, 1.0
S1 = 0.05
SIGMA = 0.2              # declared (and post-drift measured) Sσ of Q2
CSYS = 0.5

SPEEDUP_GATE = 1.2       # adaptive vs never-rebalanced
ORACLE_TOLERANCE = 0.10  # adaptive within 10% of the re-optimized oracle

#: Ground-truth statistics of the two phases (what the oracle is told).
PHASE1_STATS = StreamStatistics(
    arrival_rates={"A": RATE, "B": RATE},
    join_selectivity=S1,
    selection_selectivities={"Q2": (1.0, None)},
)
PHASE2_STATS = StreamStatistics(
    arrival_rates={"A": RATE, "B": RATE},
    join_selectivity=S1,
    selection_selectivities={"Q2": (SIGMA, None)},
)
PARAMS = ChainCostParameters(
    arrival_rate_left=RATE, arrival_rate_right=RATE, system_overhead=CSYS
)


@dataclass
class ShiftedValues(SelectivityValueGenerator):
    """Values uniform on [low, 1): the σ predicate ``value > 0.8`` passes all."""

    low: float = 0.8

    def generate(self, rng):
        payload = super().generate(rng)
        payload["value"] = self.low + payload["value"] * (1.0 - self.low)
        return payload


def _shift(tuples, offset: float) -> list[StreamTuple]:
    return [
        StreamTuple(stream=t.stream, timestamp=t.timestamp + offset, values=t.values)
        for t in tuples
    ]


def _drifting_stream() -> list[StreamTuple]:
    phase1 = generate_join_workload(
        rate_a=RATE,
        rate_b=RATE,
        duration=DRIFT_AT,
        seed=11,
        value_generator=lambda: ShiftedValues(low=1.0 - SIGMA),
    ).tuples
    phase2 = generate_join_workload(
        rate_a=RATE, rate_b=RATE, duration=END_AT - DRIFT_AT, seed=12
    ).tuples
    return phase1 + _shift(phase2, DRIFT_AT)


STREAM = _drifting_stream()
CONDITION = selectivity_join(S1)


def _build_session(policy: AdaptivePolicy | None = None) -> StreamEngine:
    engine = StreamEngine(
        CONDITION,
        batch_size=32,
        metrics=MetricsCollector(system_overhead=CSYS),
        policy=policy,
    )
    engine.add_query("Q1", W1)
    engine.add_query("Q2", W2, left_filter=selectivity_filter(SIGMA))
    return engine


def _run(engine: StreamEngine, oracle_at: float | None = None) -> MetricsSnapshot:
    """Process the drifting stream; return the post-drift counter deltas."""
    measure_start: MetricsSnapshot | None = None
    oracle_done = oracle_at is None
    for tup in STREAM:
        if not oracle_done and tup.timestamp >= oracle_at:
            engine.flush()
            engine.rebalance(PARAMS, statistics=PHASE2_STATS)
            oracle_done = True
        if measure_start is None and tup.timestamp >= MEASURE_FROM:
            engine.flush()
            measure_start = engine.metrics.snapshot()
        engine.process(tup)
    engine.flush()
    assert measure_start is not None
    return engine.metrics.snapshot().diff(measure_start)


def test_adaptive_rebalance_gate(results_dir):
    # Never-rebalanced: optimized once for the measured pre-drift statistics
    # (fully merged chain), then left alone.
    static = _build_session()
    static.rebalance(PARAMS, statistics=PHASE1_STATS)
    assert static.boundaries == (0.0, W2), "pre-drift optimum should merge"
    static_delta = _run(static)

    # Oracle: same start, manually re-optimized with ground truth at drift.
    oracle = _build_session()
    oracle.rebalance(PARAMS, statistics=PHASE1_STATS)
    oracle_delta = _run(oracle, oracle_at=DRIFT_AT)
    assert oracle.boundaries == (0.0, W1, W2), "post-drift optimum should split"

    # Adaptive: estimates its own statistics, calibrates itself at start-up
    # and migrates when the measured selection selectivity drifts.
    policy = AdaptivePolicy(
        window=1.5,
        drift_threshold=0.35,
        cooldown=5.0,
        hysteresis=2,
        min_arrivals=48,
        system_overhead=CSYS,
        calibrate_first=True,
    )
    adaptive = _build_session(policy=policy)
    adaptive_delta = _run(adaptive)
    assert adaptive.boundaries == (0.0, W1, W2), "policy should split post-drift"
    assert policy.rebalances >= 1

    # All three sessions deliver identical answers.
    assert (
        static_delta["emitted.total"]
        == oracle_delta["emitted.total"]
        == adaptive_delta["emitted.total"]
    )
    for name in ("Q1", "Q2"):
        reference = [(j.left.seqno, j.right.seqno) for j in static.results(name)]
        for session in (oracle, adaptive):
            assert [
                (j.left.seqno, j.right.seqno) for j in session.results(name)
            ] == reference, name

    speedup = adaptive_delta["service_rate"] / static_delta["service_rate"]
    vs_oracle = adaptive_delta["service_rate"] / oracle_delta["service_rate"]
    payload = {
        "benchmark": "adaptive_rebalance",
        "workload": {
            "rate_per_stream": RATE,
            "windows": [W1, W2],
            "join_selectivity": S1,
            "declared_sigma": SIGMA,
            "drift": "Sσ(Q2) 1.0 -> 0.2 at t=12s (value distribution shift)",
            "stream_seconds": END_AT,
            "measurement_window": [MEASURE_FROM, END_AT],
            "csys": CSYS,
        },
        "sessions": {
            name: {
                "post_drift_service_rate": round(delta["service_rate"], 6),
                "post_drift_cpu_cost": round(delta["cpu_cost"], 1),
                "post_drift_results": int(delta["emitted.total"]),
                "final_boundaries": list(engine.boundaries),
            }
            for name, engine, delta in (
                ("static", static, static_delta),
                ("oracle", oracle, oracle_delta),
                ("adaptive", adaptive, adaptive_delta),
            )
        },
        "policy": {
            "rebalances": policy.rebalances,
            "events": [
                {
                    "kind": event.kind,
                    "t": round(event.timestamp, 2),
                    "drift": round(event.drift, 3),
                    "boundaries": list(event.boundaries),
                }
                for event in policy.events
                if event.kind in ("calibrate", "rebalance")
            ],
        },
        "speedup_adaptive_vs_static": round(speedup, 3),
        "adaptive_vs_oracle": round(vs_oracle, 3),
        "gates": {
            "speedup_vs_static": SPEEDUP_GATE,
            "oracle_tolerance": ORACLE_TOLERANCE,
        },
    }
    path = record_run(results_dir, "adaptive", payload)

    assert speedup >= SPEEDUP_GATE, (
        f"post-drift adaptive throughput only {speedup:.2f}x the "
        f"never-rebalanced session (gate {SPEEDUP_GATE}x); see {path}"
    )
    assert vs_oracle >= 1.0 - ORACLE_TOLERANCE, (
        f"adaptive session reached only {vs_oracle:.2%} of the manually "
        f"re-optimized oracle (tolerance {ORACLE_TOLERANCE:.0%}); see {path}"
    )
