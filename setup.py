"""Setuptools shim.

The metadata lives in pyproject.toml; this file exists so that editable
installs keep working on environments whose setuptools/pip lack the
``wheel`` package required for PEP 660 editable wheels (legacy
``setup.py develop`` is used instead).
"""

from setuptools import setup

setup()
