"""Tiered window state: a session holding 10x its memory budget.

A multi-window session accumulates far more window state than it is
allowed to keep in core.  With ``memory_budget_bytes`` set, the engine
spills the cold tail slices of the chain to mmap'd disk segments and
keeps only the hot head (plus per-row metadata) resident:

* the join answer is **identical** to the unbudgeted session — cold
  slices stay live, answering purges and probes straight from their
  segments via a per-segment equi-key index;
* ``MetricsSnapshot`` splits the footprint into ``memory.resident_bytes``
  and ``memory.spilled_bytes`` so the trade is observable;
* sharded sessions split the budget per shard and re-split it on every
  ``reshard(n)`` — retired shards delete their segments on the way out.

Run with:  python examples/tiered_window_state.py
"""

from __future__ import annotations

from repro.query.predicates import EquiJoinCondition
from repro.runtime import ShardedStreamEngine, StreamEngine
from repro.streams.generators import generate_join_workload

CONDITION = EquiJoinCondition("join_key", "join_key", key_domain=40)
WINDOWS = {"fast": 0.5, "mid": 2.0, "slow": 6.0}
DATA = generate_join_workload(rate_a=90, rate_b=90, duration=8.0, seed=7)


def run_session(memory_budget: int | None) -> tuple[list, dict]:
    engine = StreamEngine(
        CONDITION, batch_size=32, memory_budget_bytes=memory_budget
    )
    for name, window in WINDOWS.items():
        engine.add_query(name, window)
    engine.process_many(DATA.tuples)
    engine.flush()
    answers = [
        sorted((j.left.seqno, j.right.seqno) for j in engine.results(name))
        for name in WINDOWS
    ]
    snapshot = engine.metrics.snapshot()
    engine.close()
    return answers, snapshot


def main() -> None:
    # -- 1. unbudgeted baseline: the whole chain in core --------------------
    baseline, base_snap = run_session(None)
    peak = base_snap["memory.max_resident_bytes"]
    print(f"In-core session: peak resident {peak:,.0f} B, spilled 0 B")

    # -- 2. the same stream under a budget an order of magnitude smaller ----
    budget = int(peak // 12)
    answers, snap = run_session(budget)
    assert answers == baseline, "spilling must never change the answer"
    print(f"\nBudget {budget:,} B (peak state is {peak / budget:.0f}x that):")
    print(
        f"  resident {snap['memory.resident_bytes']:,.0f} B"
        f"  (peak {snap['memory.max_resident_bytes']:,.0f} B),"
        f"  spilled {snap['memory.spilled_bytes']:,.0f} B"
    )
    print(
        f"  {snap['observations.spill.segments']:.0f} segments written, "
        f"{snap['observations.spill.evictions']:.0f} slice evictions, "
        f"{snap['observations.spill.cold_reads']:.0f} cold rows read"
    )
    print("  answers identical to the in-core session across all three windows")

    # -- 3. sharded: the budget splits per shard and follows resharding -----
    session = ShardedStreamEngine(
        CONDITION, shards=2, batch_size=32, memory_budget_bytes=budget
    )
    # Two windows: the chain needs a cold tail slice (the head never spills).
    session.add_query("fast", WINDOWS["fast"])
    session.add_query("slow", WINDOWS["slow"])
    half = len(DATA.tuples) // 2
    session.process_many(DATA.tuples[:half])
    print(
        f"\nSharded session: {budget:,} B total"
        f" -> {session.per_shard_memory_budget:,} B/shard at 2 shards"
    )
    session.reshard(4)
    print(f"  after reshard(4): {session.per_shard_memory_budget:,} B/shard")
    session.process_many(DATA.tuples[half:])
    session.flush()
    merged = session.merged_snapshot()
    print(
        f"  merged: resident {merged['memory.resident_bytes']:,.0f} B, "
        f"spilled {merged['memory.spilled_bytes']:,.0f} B, "
        f"{merged.get('observations.spill.segments', 0):.0f} segments"
    )
    sharded_answer = sorted(
        (j.left.seqno, j.right.seqno) for j in session.results("slow")
    )
    assert sharded_answer == baseline[list(WINDOWS).index("slow")]
    print("  sharded answer identical to the in-core session")
    session.close()


if __name__ == "__main__":
    main()
