"""Runtime sessions: selections, count windows and hash probing.

Three short scenarios on top of :class:`repro.runtime.StreamEngine`, the
live session API (see ``examples/online_migration.py`` for the migration
basics):

1. **Selections** — queries carrying per-stream predicates register and
   deregister mid-stream; the engine re-derives the shared selection
   push-down (Section 6) on every migration, so the in-chain filters always
   hold exactly the disjunction of the *current* queries' predicates.
2. **Count windows** — the same admission protocol over rank-based slices
   ("the N most recent tuples of each stream").
3. **Hash probing** — an equi-join session with per-slice hash indexes;
   the outputs are identical to nested-loop probing, only cheaper.

Run with:  python examples/runtime_sessions.py
"""

from __future__ import annotations

from repro import CountStreamEngine, StreamEngine, generate_join_workload
from repro.query.predicates import EquiJoinCondition, attribute_gt


def main() -> None:
    data = generate_join_workload(rate_a=25, rate_b=25, duration=20.0, seed=11)
    tuples = data.tuples
    condition = EquiJoinCondition("join_key", "join_key", key_domain=10)

    # -- 1. selections: shared push-down recomputed on admission/removal ----
    engine = StreamEngine(condition, batch_size=32)
    warm = attribute_gt("value", 0.2, selectivity=0.8)
    hot = attribute_gt("value", 0.5, selectivity=0.5)
    very_hot = attribute_gt("value", 0.8, selectivity=0.2)
    engine.add_query("Qwarm", window=4.0, left_filter=warm)
    engine.add_query("Qhot", window=4.0, left_filter=hot)
    print("Selections")
    print(f"  session: {engine.describe()}")
    for index, tup in enumerate(tuples):
        if index == len(tuples) // 2:
            # Splits [0, 4) at 2 s *and* re-derives the pushed filters: the
            # front filter gains Qpeak's predicate in its disjunction.
            engine.add_query("Qpeak", window=2.0, left_filter=very_hot)
        engine.process(tup)
    engine.flush()
    for name in ("Qwarm", "Qhot", "Qpeak"):
        print(f"  {name}: {len(engine.results(name))} results")
    for index, (left, _right) in enumerate(engine.link_filters()):
        left_text = left.describe() if left is not None else "(none)"
        print(f"  pushed σ' in front of slice {index + 1}: {left_text}")

    # -- 2. count windows: rank-based slices, same migrations ---------------
    counts = CountStreamEngine(condition, batch_size=32)
    counts.add_query("C20", 20)
    print("\nCount windows")
    for index, tup in enumerate(tuples):
        if index == len(tuples) // 3:
            counts.add_query("C5", 5)  # splits the rank slice [0, 20)
        if index == 2 * len(tuples) // 3:
            counts.remove_query("C5")  # merges it back
        counts.process(tup)
    counts.flush()
    print(f"  session: {counts.describe()}")
    print(f"  C20: {len(counts.results('C20'))} results; "
          f"migrations {[e.kind for e in counts.stats.migrations]}")

    # -- 3. hash probing: identical answers, indexed probes -----------------
    print("\nHash probing")
    outputs = {}
    for probe in ("nested_loop", "hash"):
        session = StreamEngine(condition, batch_size=32, probe=probe)
        session.add_query("Q", window=4.0)
        session.process_many(tuples)
        session.flush()
        outputs[probe] = [
            (j.left.seqno, j.right.seqno) for j in session.results("Q")
        ]
        probes = session.metrics.comparisons.get("probe", 0)
        print(f"  {probe:12s}: {len(outputs[probe])} results, {probes} probe comparisons")
    print(f"  identical outputs: {outputs['nested_loop'] == outputs['hash']}")


if __name__ == "__main__":
    main()
