"""Sharded scale-out: key-partitioning one session across N engines.

Three short scenarios on top of :class:`repro.runtime.ShardedStreamEngine`
(see ``examples/runtime_sessions.py`` for the single-engine session API):

1. **Serial scale-out** — the same equi-join workload through 1, 2 and 4
   serial shards.  Each arrival probes only its key's shard, whose window
   state holds ~1/N of the resident tuples, so the nested-loop probe work
   drops by ~N *on one core* — and the merged answers stay identical.
2. **Admission fan-out** — queries register and deregister mid-stream; the
   migration runs on every shard, keeping all shard chains at identical
   boundaries.
3. **The planner** — a :class:`repro.runtime.ShardPlanner` reads the merged
   statistics view (per-shard counters aggregated into global rates), sizes
   the shard count for the measured load, and flags hot-key skew.

Run with:  python examples/sharded_scaleout.py
"""

from __future__ import annotations

import time

from repro.query.predicates import EquiJoinCondition, attribute_gt
from repro.runtime import ShardedStreamEngine, ShardPlanner
from repro.streams.generators import equi_value_generator, generate_join_workload
from repro.streams.tuples import make_tuple

KEY_DOMAIN = 100
CONDITION = EquiJoinCondition("join_key", "join_key", key_domain=KEY_DOMAIN)


def main() -> None:
    data = generate_join_workload(
        rate_a=120,
        rate_b=120,
        duration=6.0,
        seed=23,
        value_generator=equi_value_generator(KEY_DOMAIN),
    )
    tuples = data.tuples

    # -- 1. serial scale-out: same answer, ~1/N probe work ------------------
    print("Serial scale-out (same core, smaller per-shard state)")
    reference = None
    for shards in (1, 2, 4):
        engine = ShardedStreamEngine(CONDITION, shards=shards, batch_size=64)
        engine.add_query("Q", 3.0)
        start = time.perf_counter()
        engine.process_many(tuples)
        engine.flush()
        seconds = time.perf_counter() - start
        answers = [(j.left.seqno, j.right.seqno) for j in engine.results("Q")]
        if reference is None:
            reference = sorted(answers)
        assert sorted(answers) == reference, "sharding changed the join answer"
        print(
            f"  {shards} shard(s): {len(tuples) / seconds:8.0f} tuples/s, "
            f"{len(answers)} results, state {engine.state_size()} tuples"
        )

    # -- 2. admission fan-out: one logical session, N chains ----------------
    print("\nAdmission fan-out")
    session = ShardedStreamEngine(CONDITION, shards=4, batch_size=64)
    session.add_query("umbrella", 3.0)
    hot = attribute_gt("value", 0.7, selectivity=0.3)
    for index, tup in enumerate(tuples):
        if index == len(tuples) // 3:
            session.add_query("Qhot", 1.0, left_filter=hot)
            print(f"  +Qhot (σ, 1s)  shard boundaries {session.boundaries}")
        if index == 2 * len(tuples) // 3:
            delivered = session.remove_query("Qhot")
            print(
                f"  -Qhot after {len(delivered)} results  "
                f"shard boundaries {session.boundaries}"
            )
        session.process(tup)
    session.flush()
    print(f"  every shard identical: {session.shard_boundaries()}")

    # -- 3. the planner: merged statistics, sizing, skew --------------------
    print("\nShardPlanner on the merged statistics view")
    planner = ShardPlanner(max_shards=8, target_rate_per_shard=60.0)
    observed = ShardedStreamEngine(
        CONDITION, shards=2, batch_size=64, collect_statistics=True
    )
    observed.add_query("Q", 2.0)
    observed.process_many(tuples)
    observed.flush()
    merged = observed.merged_statistics()
    plan = planner.plan(observed)
    print(f"  {merged.describe()}")
    print(f"  {plan.describe()}")
    print(f"  -> {plan.reason}")

    # A hot key concentrates the stream on one shard.
    skewed = ShardedStreamEngine(
        CONDITION, shards=4, batch_size=64, collect_statistics=True
    )
    skewed.add_query("Q", 2.0)
    skewed.process_many(
        make_tuple(t.stream, t.timestamp, join_key=7, value=0.5)
        for t in tuples[: len(tuples) // 2]
    )
    skewed.flush()
    plan = planner.plan(skewed)
    print(f"  hot-key session: {plan.describe()}")
    print(f"  -> {plan.reason}")


if __name__ == "__main__":
    main()
