"""Online chain migration: queries joining and leaving a running system.

Section 5.3 of the paper describes how a state-slice chain is maintained at
runtime by two primitives — splitting a slice and merging two adjacent
slices — without stopping the stream or losing results.

This scenario is a first-class API since the :mod:`repro.runtime` layer:
a :class:`repro.runtime.StreamEngine` owns the live shared chain and
performs the split/merge migrations itself when queries register and
deregister.

* the session starts with a single query Q1 (window 4 s);
* a second query Q2 with a 2 s window registers mid-stream, so the engine
  splits the slice at 2 s;
* later Q2 deregisters, so the engine merges the two slices back;
* throughout, the produced join results are checked against an
  independently computed reference — nothing is lost or duplicated.

Run with:  python examples/online_migration.py
"""

from __future__ import annotations

from repro import StreamEngine, generate_join_workload
from repro.query import selectivity_join


def reference_pairs(tuples, window, condition):
    lefts = [t for t in tuples if t.stream == "A"]
    rights = [t for t in tuples if t.stream == "B"]
    pairs = set()
    for a in lefts:
        for b in rights:
            if abs(a.timestamp - b.timestamp) < window and condition.matches(a, b):
                pairs.add((a.seqno, b.seqno))
    return pairs


def main() -> None:
    condition = selectivity_join(0.2)
    data = generate_join_workload(rate_a=20, rate_b=20, duration=30.0, seed=3)
    tuples = data.tuples

    engine = StreamEngine(condition, batch_size=32)
    engine.add_query("Q1", window=4.0)
    print(f"Initial session (one registered query, window 4 s): {engine.describe()}")

    split_at = len(tuples) // 3
    merge_at = 2 * len(tuples) // 3
    q2_results = None

    for index, tup in enumerate(tuples):
        if index == split_at:
            engine.add_query("Q2", window=2.0)
            print(
                f"t={tup.timestamp:6.2f}s  Q2 (window 2 s) registered  -> split: "
                f"boundaries {list(engine.boundaries)}"
            )
        if index == merge_at:
            q2_results = engine.remove_query("Q2")
            print(
                f"t={tup.timestamp:6.2f}s  Q2 deregistered             -> merge: "
                f"boundaries {list(engine.boundaries)}"
            )
        engine.process(tup)
    engine.flush()
    assert engine.states_are_disjoint()

    produced = {(j.left.seqno, j.right.seqno) for j in engine.results("Q1")}
    expected = reference_pairs(tuples, 4.0, condition)
    print()
    print(f"Join results delivered to Q1       : {len(produced)}")
    print(f"Reference results for window 4 s   : {len(expected)}")
    print(f"Identical                          : {produced == expected}")
    print(f"Results delivered to Q2 while it was registered: {len(q2_results)}")
    print(f"Migrations performed: {[event.kind for event in engine.stats.migrations]}")
    print()
    print(
        "Splitting and merging the slices mid-stream changed neither the result\n"
        "set nor the disjointness of the per-slice states — the property that\n"
        "makes the paper's online migration safe."
    )


if __name__ == "__main__":
    main()
