"""Online chain migration: queries joining and leaving a running system.

Section 5.3 of the paper describes how a state-slice chain is maintained at
runtime by two primitives — splitting a slice and merging two adjacent
slices — without stopping the stream or losing results.

This script drives a :class:`repro.core.SlicedJoinChain` directly:

* it starts with a single query (one slice, window 4 s);
* a second query with a 2 s window registers mid-stream, so the slice is
  split at 2 s;
* later the second query deregisters, so the two slices are merged back;
* throughout, the produced join results are checked against an
  independently computed reference — nothing is lost or duplicated.

Run with:  python examples/online_migration.py
"""

from __future__ import annotations

from repro import SlicedJoinChain, generate_join_workload
from repro.query import selectivity_join


def reference_pairs(tuples, window, condition):
    lefts = [t for t in tuples if t.stream == "A"]
    rights = [t for t in tuples if t.stream == "B"]
    pairs = set()
    for a in lefts:
        for b in rights:
            if abs(a.timestamp - b.timestamp) < window and condition.matches(a, b):
                pairs.add((a.seqno, b.seqno))
    return pairs


def main() -> None:
    condition = selectivity_join(0.2)
    data = generate_join_workload(rate_a=20, rate_b=20, duration=30.0, seed=3)
    tuples = data.tuples

    chain = SlicedJoinChain([0.0, 4.0], condition)
    print(f"Initial chain (one registered query, window 4 s): {chain.describe()}")

    split_at = len(tuples) // 3
    merge_at = 2 * len(tuples) // 3
    produced = set()
    q2_results = 0

    for index, tup in enumerate(tuples):
        if index == split_at:
            chain.split_slice(0, 2.0)
            print(
                f"t={tup.timestamp:6.2f}s  Q2 (window 2 s) registered  -> split: "
                f"{chain.describe()}"
            )
        if index == merge_at:
            chain.merge_slices(0)
            print(
                f"t={tup.timestamp:6.2f}s  Q2 deregistered             -> merge: "
                f"{chain.describe()}"
            )
        for slice_index, joined in chain.process(tup):
            produced.add((joined.left.seqno, joined.right.seqno))
            # While Q2 is registered its answer is the first slice's output.
            if split_at <= index < merge_at and slice_index == 0:
                q2_results += 1
        assert chain.states_are_disjoint()

    expected = reference_pairs(tuples, 4.0, condition)
    print()
    print(f"Join results produced by the chain : {len(produced)}")
    print(f"Reference results for window 4 s   : {len(expected)}")
    print(f"Identical                          : {produced == expected}")
    print(f"Results delivered to Q2 while it was registered: {q2_results}")
    print()
    print(
        "Splitting and merging the slices mid-stream changed neither the result\n"
        "set nor the disjointness of the per-slice states — the property that\n"
        "makes the paper's online migration safe."
    )


if __name__ == "__main__":
    main()
