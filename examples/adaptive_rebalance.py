"""Adaptive optimization: a drifting-rate session re-optimizing itself.

One live :class:`repro.runtime.StreamEngine` session with an attached
:class:`repro.runtime.AdaptivePolicy` processes a stream whose statistics
change mid-run:

* for the first 12 stream-seconds the left stream's ``value`` attribute is
  shifted into [0.8, 1), so Q2's selection ``value > 0.8`` passes every
  tuple — the *measured* selection selectivity is 1.0 and the CPU-Opt
  chain for that load merges both slices into one;
* then the distribution becomes uniform on [0, 1): the selection suddenly
  passes only 20% of tuples, and the optimal chain splits at W1 so the
  pushed-down filter can shed 80% of the left stream before the long slice.

The session never sees the generator's settings.  It estimates its own
arrival rates, join factor and selection selectivities from windowed
metric-counter deltas (the shared statistics plane of
:mod:`repro.core.statistics`), calibrates the chain at start-up, detects
the drift through its hysteresis + cooldown gate, and migrates the live
chain with the usual drain-and-splice discipline — no results are lost,
duplicated or reordered across any of the migrations.

Run with:  python examples/adaptive_rebalance.py
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import AdaptivePolicy, StreamEngine, generate_join_workload
from repro.engine.metrics import MetricsCollector
from repro.query.predicates import selectivity_filter, selectivity_join
from repro.streams.generators import SelectivityValueGenerator
from repro.streams.tuples import StreamTuple

RATE = 40.0
DRIFT_AT = 12.0
END_AT = 30.0
CSYS = 0.5


@dataclass
class ShiftedValues(SelectivityValueGenerator):
    """Values uniform on [low, 1): a σ predicate ``value > low`` passes all."""

    low: float = 0.8

    def generate(self, rng):
        payload = super().generate(rng)
        payload["value"] = self.low + payload["value"] * (1.0 - self.low)
        return payload


def drifting_stream() -> list[StreamTuple]:
    calm = generate_join_workload(
        rate_a=RATE,
        rate_b=RATE,
        duration=DRIFT_AT,
        seed=11,
        value_generator=lambda: ShiftedValues(low=0.8),
    ).tuples
    shifted = generate_join_workload(
        rate_a=RATE, rate_b=RATE, duration=END_AT - DRIFT_AT, seed=12
    ).tuples
    return calm + [
        StreamTuple(t.stream, t.timestamp + DRIFT_AT, t.values) for t in shifted
    ]


def main() -> None:
    policy = AdaptivePolicy(
        window=1.5,
        drift_threshold=0.35,
        cooldown=5.0,
        hysteresis=2,
        min_arrivals=48,
        system_overhead=CSYS,
    )
    engine = StreamEngine(
        selectivity_join(0.05),
        batch_size=32,
        metrics=MetricsCollector(system_overhead=CSYS),
        policy=policy,
    )
    engine.add_query("Q1", 0.2)
    engine.add_query("Q2", 1.0, left_filter=selectivity_filter(0.2))
    print(f"session: {engine.describe()}")
    print(f"policy:  {policy.describe()}\n")

    boundaries = engine.boundaries
    for tup in drifting_stream():
        engine.process(tup)
        if engine.boundaries != boundaries:
            boundaries = engine.boundaries
            print(
                f"t={tup.timestamp:6.2f}s  chain is now {engine.describe()}"
            )
    engine.flush()

    print("\npolicy decisions:")
    for event in policy.events:
        if event.kind in ("calibrate", "rebalance", "recalibrate"):
            print(
                f"  t={event.timestamp:6.2f}s  {event.kind:<9} "
                f"drift={event.drift:5.0%}  "
                f"boundaries={list(event.boundaries)}"
            )
            print(f"      measured: {event.statistics.describe()}")
    print(f"\nfinal: {policy.describe()}")
    print(
        f"delivered {engine.stats.results_delivered} results over "
        f"{engine.stats.arrivals} arrivals; migrations: "
        f"{[e.kind for e in engine.stats.migrations]}"
    )


if __name__ == "__main__":
    main()
