"""Live resharding: a session that resizes itself when the load drifts.

The demo runs one key-partitioned session through a two-phase load — calm,
then a sustained burst — with a :class:`~repro.runtime.ShardPlanner`
watching the measured arrival rates.  When the burst makes more shards
worth their routing overhead, the planner reshards the *running* session:
resident window state is repartitioned under the new modulus, undelivered
results are carried across, and the answers stay exactly what a
never-resharded single engine would deliver (the property fuzzed by
``tests/test_fuzz_differential.py`` and gated in
``benchmarks/test_resharding.py``).

Run with::

    PYTHONPATH=src python examples/live_resharding.py
"""

from __future__ import annotations

import random

from repro.query.predicates import EquiJoinCondition
from repro.runtime import ShardedStreamEngine, ShardPlanner, StreamEngine
from repro.streams.tuples import make_tuple

KEY_DOMAIN = 60
WINDOW = 2.5


def drifting_stream():
    """Calm phase (80/s per stream), then a 4x burst."""
    rng = random.Random(11)
    tuples = []
    timestamp = 0.0
    for rate, seconds in ((80, 3.0), (320, 3.0)):
        end = timestamp + seconds
        while timestamp < end:
            timestamp += rng.expovariate(2 * rate)
            tuples.append(
                make_tuple(
                    rng.choice("AB"),
                    timestamp,
                    join_key=rng.randrange(KEY_DOMAIN),
                    value=rng.random(),
                )
            )
    return tuples


def main() -> None:
    """Run the self-resizing session and check it against a single engine."""
    tuples = drifting_stream()
    condition = EquiJoinCondition("join_key", "join_key", key_domain=KEY_DOMAIN)

    session = ShardedStreamEngine(condition, shards=1, batch_size=32)
    session.add_query("Q", WINDOW)
    reference = StreamEngine(condition, batch_size=32)
    reference.add_query("Q", WINDOW)

    planner = ShardPlanner(
        max_shards=4,
        target_rate_per_shard=200.0,  # one shard absorbs the calm phase
        window=0.5,
        hysteresis=2,
        cooldown=2.0,
    )
    print(f"{len(tuples)} arrivals over {tuples[-1].timestamp:.1f} stream-seconds")
    for index, tup in enumerate(tuples):
        session.process(tup)
        reference.process(tup)
        if index % 64 == 63:
            event = planner.maybe_reshard(session)
            if event is not None:
                print(f"  {event.describe()}")
    session.flush()
    reference.flush()

    ours = sorted((j.left.seqno, j.right.seqno) for j in session.results("Q"))
    theirs = sorted((j.left.seqno, j.right.seqno) for j in reference.results("Q"))
    assert ours == theirs, "resharding must not change the answer"
    print(
        f"final: {session.shards} shards, {len(ours)} pairs "
        f"(identical to the single engine), "
        f"{len(session.reshard_events)} reshard(s)"
    )
    for plan_decision in list(planner.decisions)[-3:]:
        print(f"  last decisions: {plan_decision.describe()}")


if __name__ == "__main__":
    main()
