"""Explore the analytical cost model (Equations 1-4, Figure 11).

Prints, for a grid of window ratios and selection selectivities, the state
memory and CPU cost predicted for the three sharing strategies and the
resulting savings of the state-slice chain — the numbers behind Figure 11.

Run with:  python examples/cost_model_explorer.py
"""

from __future__ import annotations

from repro import (
    TwoQuerySettings,
    selection_pullup_cost,
    selection_pushdown_cost,
    state_slice_cost,
    state_slice_savings,
)
from repro.experiments import format_table


def main() -> None:
    arrival_rate = 50.0
    window_large = 60.0
    join_selectivity = 0.1

    print(
        f"Two-query analysis: lambda={arrival_rate:g}/s, W2={window_large:g}s, "
        f"S1={join_selectivity:g}\n"
    )

    rows = []
    for rho in (0.1, 0.25, 0.5, 0.75):
        for s_sigma in (0.1, 0.5, 0.9):
            settings = TwoQuerySettings(
                arrival_rate=arrival_rate,
                window_small=rho * window_large,
                window_large=window_large,
                filter_selectivity=s_sigma,
                join_selectivity=join_selectivity,
            )
            pullup = selection_pullup_cost(settings)
            pushdown = selection_pushdown_cost(settings)
            sliced = state_slice_cost(settings)
            savings = state_slice_savings(settings)
            rows.append(
                [
                    f"{rho:.2f}",
                    f"{s_sigma:.1f}",
                    f"{pullup.memory:.0f}",
                    f"{pushdown.memory:.0f}",
                    f"{sliced.memory:.0f}",
                    f"{100 * savings.memory_vs_pullup:.1f}%",
                    f"{pullup.cpu:.0f}",
                    f"{pushdown.cpu:.0f}",
                    f"{sliced.cpu:.0f}",
                    f"{100 * savings.cpu_vs_pullup:.1f}%",
                ]
            )
    print(
        format_table(
            [
                "rho",
                "Ssigma",
                "mem pullup",
                "mem pushdown",
                "mem slice",
                "mem saved",
                "cpu pullup",
                "cpu pushdown",
                "cpu slice",
                "cpu saved",
            ],
            rows,
        )
    )
    print()
    print(
        "Memory figures are KB (1 KB tuples); CPU figures are comparisons per\n"
        "second.  'saved' columns are the Equation 4 savings of the state-slice\n"
        "chain relative to the selection pull-up strategy."
    )


if __name__ == "__main__":
    main()
