"""Quickstart: share two window-join queries with the state-slice chain.

This is the paper's motivating example (Section 1): two continuous queries
joining the same pair of streams with different window sizes, one of them
with a selection.  The script builds the shared state-slice plan, runs it on
a synthetic stream, and compares its state memory and CPU cost against the
naive selection pull-up sharing.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    ContinuousQuery,
    QueryWorkload,
    build_pullup_plan,
    build_state_slice_plan,
    execute_plan,
    generate_join_workload,
    selectivity_filter,
    selectivity_join,
)


def main() -> None:
    # Q1: A[6s] join B[6s]          (no selection)
    # Q2: sigma(A)[18s] join B[18s] (selection keeps ~20% of A tuples)
    condition = selectivity_join(0.1)
    workload = QueryWorkload(
        [
            ContinuousQuery("Q1", window=6.0, join_condition=condition),
            ContinuousQuery(
                "Q2",
                window=18.0,
                join_condition=condition,
                left_filter=selectivity_filter(0.2),
            ),
        ]
    )
    print("Workload:")
    print(workload.describe())
    print()

    # Build the shared plans.
    state_slice = build_state_slice_plan(workload)
    pullup = build_pullup_plan(workload)
    print("State-slice shared plan:")
    print(state_slice.describe())
    print()

    # One synthetic input stream, replayed against both plans.
    data = generate_join_workload(rate_a=30, rate_b=30, duration=60.0, seed=42)
    report_slice = execute_plan(state_slice, data.tuples, strategy="state-slice")
    report_pullup = execute_plan(pullup, data.tuples, strategy="selection-pullup")

    # Both plans return exactly the same answers ...
    assert report_slice.output_counts() == report_pullup.output_counts()
    print(f"Per-query result counts: {report_slice.output_counts()}")

    # ... but the state-slice chain does so with less state and less work.
    print()
    print(f"{'strategy':<20} {'avg state (tuples)':>20} {'CPU (comparisons)':>20}")
    for report in (report_slice, report_pullup):
        print(
            f"{report.strategy:<20} {report.steady_state_memory:>20.1f} "
            f"{report.cpu_cost:>20.0f}"
        )
    memory_saving = 1 - report_slice.steady_state_memory / report_pullup.steady_state_memory
    cpu_saving = 1 - report_slice.cpu_cost / report_pullup.cpu_cost
    print()
    print(f"State memory saving vs selection pull-up: {memory_saving:.0%}")
    print(f"CPU saving vs selection pull-up:          {cpu_saving:.0%}")


if __name__ == "__main__":
    main()
