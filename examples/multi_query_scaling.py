"""Scaling to many queries: Mem-Opt vs CPU-Opt chains.

The paper's Section 7.3 studies what happens when dozens of queries with
skewed window distributions share one chain: the Mem-Opt chain keeps one
slice per distinct window (minimal state, many small operators), while the
CPU-Opt chain merges adjacent slices when the saved per-slice overhead
outweighs the added routing cost.

This script builds both chains for 12, 24 and 36 queries over the
"small-large" window distribution of Table 4, shows how many slices each
chain uses, and measures service rate and state memory for both.

Run with:  python examples/multi_query_scaling.py
"""

from __future__ import annotations

from repro import build_state_slice_plan, execute_plan, generate_join_workload
from repro.core import ChainCostParameters, build_cpu_opt_chain, build_mem_opt_chain
from repro.query import multi_query_workload

RATE = 50.0
TIME_SCALE = 0.05  # scale the Table 4 windows down so the demo runs in seconds


def scaled_workload(query_count: int):
    workload = multi_query_workload("small-large", query_count=query_count,
                                    join_selectivity=0.025)
    scaled_windows = [query.window * TIME_SCALE for query in workload]
    from repro.query import build_workload

    return build_workload(scaled_windows, join_selectivity=0.025)


def main() -> None:
    data = generate_join_workload(rate_a=RATE, rate_b=RATE, duration=8.0, seed=5)
    print(f"Input: two streams at {RATE:.0f} tuples/s for 8 simulated seconds")
    print(f"Window distribution: Table 4 'small-large', scaled by {TIME_SCALE}")
    print()
    header = (
        f"{'queries':>8} {'chain':>10} {'slices':>7} {'state (tuples)':>15} "
        f"{'CPU (cmp)':>12} {'service rate':>13}"
    )
    print(header)
    print("-" * len(header))

    for query_count in (12, 24, 36):
        workload = scaled_workload(query_count)
        params = ChainCostParameters(
            arrival_rate_left=RATE, arrival_rate_right=RATE, system_overhead=0.25
        )
        chains = {
            "Mem-Opt": build_mem_opt_chain(workload),
            "CPU-Opt": build_cpu_opt_chain(workload, params),
        }
        for name, chain in chains.items():
            plan = build_state_slice_plan(workload, chain=chain,
                                          plan_name=f"{name}-{query_count}")
            report = execute_plan(
                plan,
                data.tuples,
                strategy=name,
                system_overhead=0.25,
                memory_sample_interval=8,
                retain_results=False,
            )
            print(
                f"{query_count:>8} {name:>10} {len(chain):>7} "
                f"{report.steady_state_memory:>15.1f} {report.cpu_cost:>12.0f} "
                f"{report.service_rate:>13.5f}"
            )
        print()

    print(
        "The CPU-Opt chain merges the clustered windows into a handful of slices,\n"
        "trading a little routing work for far fewer per-slice purge/scheduling\n"
        "overheads — the effect behind Figure 19 of the paper.  The Mem-Opt chain\n"
        "remains the most state-frugal option."
    )


if __name__ == "__main__":
    main()
