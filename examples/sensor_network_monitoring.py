"""Sensor-network monitoring: SQL-like queries, all sharing strategies, and a
downstream alerting aggregate.

The scenario follows the paper's introduction: several monitoring
applications register similar continuous queries over temperature and
humidity sensor streams, differing in window length and in the temperature
threshold they care about.  The script:

1. parses the queries from the paper's SQL dialect (WINDOW clause included);
2. builds the shared plans for every sharing strategy;
3. replays the same synthetic sensor feed through each plan and reports the
   per-strategy state memory and CPU cost;
4. feeds the shared join results of the largest query into a sliding-window
   aggregate that counts "hot" matches per minute — the kind of derived
   alerting stream a monitoring application would maintain.

Run with:  python examples/sensor_network_monitoring.py
"""

from __future__ import annotations

import random

from repro import QueryWorkload, execute_plan
from repro.baselines import build_pullup_plan, build_pushdown_plan, build_unshared_plan
from repro.core import build_state_slice_plan
from repro.operators import SlidingWindowAggregate
from repro.query import parse_workload_text
from repro.streams import StreamTuple, interleave

QUERY_TEXT = """
    SELECT A.* FROM Temperature A, Humidity B
    WHERE A.LocationId = B.LocationId
    WINDOW 30 sec;

    SELECT A.* FROM Temperature A, Humidity B
    WHERE A.LocationId = B.LocationId AND A.Value > 30
    WINDOW 60 sec;

    SELECT A.* FROM Temperature A, Humidity B
    WHERE A.LocationId = B.LocationId AND A.Value > 30
    WINDOW 120 sec
"""

LOCATIONS = 25
HOT_FRACTION = 0.3  # fraction of temperature readings above the threshold


def generate_sensor_feed(rate: float, duration: float, seed: int) -> list[StreamTuple]:
    """Synthetic temperature/humidity readings keyed by location."""
    rng = random.Random(seed)

    def readings(stream: str) -> list[StreamTuple]:
        tuples = []
        now = 0.0
        while True:
            now += rng.expovariate(rate)
            if now >= duration:
                return tuples
            location = rng.randrange(LOCATIONS)
            if stream == "Temperature":
                hot = rng.random() < HOT_FRACTION
                value = rng.uniform(31.0, 45.0) if hot else rng.uniform(10.0, 29.0)
            else:
                value = rng.uniform(20.0, 90.0)
            tuples.append(
                StreamTuple(stream, now, {"LocationId": location, "Value": value})
            )

    return interleave(readings("Temperature"), readings("Humidity"))


def main() -> None:
    queries = parse_workload_text(
        QUERY_TEXT, filter_selectivity=HOT_FRACTION, key_domain=LOCATIONS
    )
    workload = QueryWorkload(queries)
    print("Registered continuous queries:")
    print(workload.describe())
    print()

    feed = generate_sensor_feed(rate=25.0, duration=240.0, seed=11)
    print(f"Sensor feed: {len(feed)} readings over 240 simulated seconds")
    print()

    strategies = {
        "state-slice": build_state_slice_plan(workload),
        "selection-pullup": build_pullup_plan(workload),
        "selection-pushdown": build_pushdown_plan(workload),
        "unshared": build_unshared_plan(workload),
    }
    reports = {}
    for name, plan in strategies.items():
        reports[name] = execute_plan(
            plan, feed, strategy=name, system_overhead=0.25, memory_sample_interval=8
        )

    counts = {name: report.output_counts() for name, report in reports.items()}
    assert all(c == counts["state-slice"] for c in counts.values()), "answers must agree"

    print(f"{'strategy':<22} {'avg state (tuples)':>20} {'CPU (comparisons)':>20}")
    for name, report in sorted(reports.items(), key=lambda kv: kv[1].steady_state_memory):
        print(
            f"{name:<22} {report.steady_state_memory:>20.1f} {report.cpu_cost:>20.0f}"
        )
    print()
    print(f"Per-query matches: {counts['state-slice']}")

    # Downstream alerting: count hot-location matches of Q3 per minute.
    alert_counter = SlidingWindowAggregate(
        window=60.0, attribute="Temperature.Value", function="count", emit_every=50
    )
    alerts = []
    for joined in reports["state-slice"].results["Q3"]:
        alerts.extend(item for _, item in alert_counter.process(joined, "in"))
    if alerts:
        last = alerts[-1]
        print()
        print(
            "Alerting aggregate (matches of Q3 in the last 60 s, sampled every 50 "
            f"matches): latest = {last.values['aggregate']:.0f} at t={last.timestamp:.1f}s"
        )


if __name__ == "__main__":
    main()
