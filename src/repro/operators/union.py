"""Order-preserving merge union.

The union operator merges the joined results produced by the sliced joins of
a chain (or by the parallel joins of the selection push-down strategy) into
one output stream ordered by timestamp.  Because each upstream join emits
results in timestamp order, the union only needs to know how far every
upstream has progressed before releasing buffered results; the paper uses
the propagated "male" tuple of the last sliced join as that progress marker
(a punctuation, Section 4.3).

:class:`OrderedUnion` implements exactly that protocol:

* joined results are buffered;
* a :class:`~repro.streams.tuples.Punctuation` with timestamp ``T``
  guarantees no future result will carry a timestamp smaller than ``T``,
  so every buffered result with timestamp ``< T`` is released in sorted
  order;
* any remainder is released at end of stream by :meth:`flush`.
"""

from __future__ import annotations

import heapq
from typing import Any, Iterable

from repro.engine.metrics import CostCategory
from repro.engine.operator import Emission, Operator
from repro.streams.tuples import JoinedTuple, Punctuation

__all__ = ["OrderedUnion", "BagUnion"]


class OrderedUnion(Operator):
    """Merge union releasing results in timestamp order, driven by punctuations.

    Ordering guarantee: the released stream is globally sorted provided all
    inputs reach the union in global timestamp order, which holds under the
    push-based :class:`~repro.engine.executor.ImmediateExecutor` (every
    arrival is fully propagated before the next).  Under the asynchronous
    :class:`~repro.engine.scheduler.ScheduledExecutor` different upstream
    paths may lag behind the punctuations, in which case the union still
    emits the correct result multiset but cross-input order can be violated;
    a per-input watermark union would be needed for strict ordering there
    (the paper's CAPE prototype keeps one queue per upstream join for the
    same reason).
    """

    input_ports = ("in",)
    output_ports = ("out",)
    #: Buffered results are released in timestamp order regardless of which
    #: upstream delivered them first, so cross-upstream interleaving does not
    #: change the output (up to timestamp ties).
    merge_order_sensitive = False

    def __init__(self, name: str | None = None) -> None:
        super().__init__(name)
        self._heap: list[tuple[float, int, int, JoinedTuple]] = []
        self._counter = 0

    def process(self, item: Any, port: str) -> list[Emission]:
        self.metrics.record_invocation(self.name)
        if isinstance(item, Punctuation):
            # The paper charges the punctuation-driven merge per input-stream
            # tuple (the punctuations), not per joined result: buffered results
            # arrive already sorted per upstream join, so only the release
            # decision costs a comparison (Equation 3's union term).
            self.metrics.count(CostCategory.UNION)
            return self._release(item.timestamp)
        self._counter += 1
        key = getattr(item, "timestamp", 0.0)
        heapq.heappush(self._heap, (key, self._counter, id(item), item))
        return []

    def process_batch(self, items: Iterable[Any], port: str) -> list[Emission]:
        batch = list(items)
        heap = self._heap
        push = heapq.heappush
        counter = self._counter
        emissions: list[Emission] = []
        punctuations = 0
        for item in batch:
            if isinstance(item, Punctuation):
                punctuations += 1
                emissions.extend(self._release(item.timestamp))
                continue
            counter += 1
            push(heap, (getattr(item, "timestamp", 0.0), counter, id(item), item))
        self._counter = counter
        self.metrics.record_invocation(self.name, len(batch))
        self.metrics.count(CostCategory.UNION, punctuations)
        return emissions

    def flush(self) -> list[Emission]:
        emissions: list[Emission] = []
        while self._heap:
            _, _, _, item = heapq.heappop(self._heap)
            emissions.append(("out", item))
        return emissions

    def pending(self) -> int:
        """Number of results buffered awaiting a punctuation."""
        return len(self._heap)

    def _release(self, up_to: float) -> list[Emission]:
        emissions: list[Emission] = []
        while self._heap and self._heap[0][0] < up_to:
            _, _, _, item = heapq.heappop(self._heap)
            emissions.append(("out", item))
        return emissions

    def describe(self) -> str:
        return "union (order-preserving)"


class BagUnion(Operator):
    """Unordered pass-through union (useful for baselines and tests).

    Results are forwarded immediately; punctuations are dropped.  One union
    comparison is charged per forwarded item so the CPU accounting of plans
    that use it stays comparable with :class:`OrderedUnion`.
    """

    input_ports = ("in",)
    output_ports = ("out",)

    def process(self, item: Any, port: str) -> list[Emission]:
        self.metrics.record_invocation(self.name)
        if isinstance(item, Punctuation):
            return []
        self.metrics.count(CostCategory.UNION)
        return [("out", item)]

    def process_batch(self, items: Iterable[Any], port: str) -> list[Emission]:
        batch = list(items)
        emissions = [
            ("out", item) for item in batch if not isinstance(item, Punctuation)
        ]
        self.metrics.record_invocation(self.name, len(batch))
        self.metrics.count(CostCategory.UNION, len(emissions))
        return emissions

    def describe(self) -> str:
        return "union (bag)"
