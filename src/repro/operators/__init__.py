"""Stream operators: selections, joins, sliced joins, unions, routers."""

from repro.operators.aggregate import AGGREGATE_FUNCTIONS, SlidingWindowAggregate
from repro.operators.count_join import CountSlicedBinaryJoin, CountWindowJoin
from repro.operators.join import OneWayWindowJoin, SlidingWindowJoin
from repro.operators.projection import Projection
from repro.operators.router import Route, Router
from repro.operators.selection import JoinedFilter, Selection, StreamFilter
from repro.operators.sink import CollectorSink, CountingSink
from repro.operators.sliced_join import SlicedBinaryJoin, SlicedOneWayJoin
from repro.operators.split import MultiSplit, Split
from repro.operators.union import BagUnion, OrderedUnion

__all__ = [
    "Selection",
    "StreamFilter",
    "JoinedFilter",
    "Projection",
    "Split",
    "MultiSplit",
    "Route",
    "Router",
    "OneWayWindowJoin",
    "SlidingWindowJoin",
    "CountWindowJoin",
    "CountSlicedBinaryJoin",
    "SlicedOneWayJoin",
    "SlicedBinaryJoin",
    "OrderedUnion",
    "BagUnion",
    "CollectorSink",
    "CountingSink",
    "SlidingWindowAggregate",
    "AGGREGATE_FUNCTIONS",
]
