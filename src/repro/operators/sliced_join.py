"""State-sliced window join operators (Section 4 of the paper).

Two operators are implemented:

* :class:`SlicedOneWayJoin` — ``A[Wstart, Wend] s⋉ B`` (Definition 1,
  execution steps of Figure 6).  Stream A tuples are stored; stream B
  tuples purge, probe and propagate.  Tuples purged from the state and the
  propagated B tuples feed the next join in a chain (Definition 2).

* :class:`SlicedBinaryJoin` — ``A[Wstart, Wend] s⋈ B[Wstart, Wend]``
  (Definition 3, execution steps of Figure 9).  Each raw input tuple is
  processed as two reference copies: the *male* copy cross-purges the
  opposite state, probes it and is propagated down the chain; the *female*
  copy is inserted into its own state and travels down the chain only when
  purged.  Only female copies occupy state memory, so a chain holds each
  tuple exactly once — the key memory property behind Theorem 3.

Both operators emit, per processed male/probe tuple, a
:class:`~repro.streams.tuples.Punctuation` on their ``punct`` port.  A
punctuation with timestamp ``T`` asserts that every joined result with
timestamp smaller than ``T`` reachable through this join has already been
emitted; the order-preserving union uses it to release sorted output
(Section 4.3 describes this role of the propagated male tuple).
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Any, Deque, Iterable

import numpy as np

from repro.engine.columns import ColumnarState
from repro.engine.errors import PlanError
from repro.engine.metrics import CostCategory
from repro.engine.operator import Emission, Operator
from repro.engine.spill import SpillableJoinMixin, SpilledState
from repro.query.predicates import EquiJoinCondition, JoinCondition
from repro.query.windows import WindowSlice
from repro.streams.tuples import (
    FEMALE,
    MALE,
    JoinedTuple,
    Punctuation,
    RefTuple,
    StreamTuple,
)

__all__ = [
    "KeyedStateMixin",
    "SlicedOneWayJoin",
    "SlicedBinaryJoin",
    "resolve_probe",
    "resolve_columnar",
]

_ABSENT = object()


def resolve_columnar(columnar: bool | str) -> bool:
    """Resolve a ``columnar`` option (``True``/``False``/``"auto"``).

    ``"auto"`` enables the columnar state layout: exactness never depends on
    it (non-columnizable keys and conditions fall back to per-tuple checks
    row set by row set), so the only reason to disable it is to exercise the
    tuple-at-a-time reference path, which the differential suites do
    explicitly with ``columnar=False``.
    """
    if columnar == "auto":
        return True
    if not isinstance(columnar, bool):
        raise PlanError(f"unknown columnar option {columnar!r}")
    return columnar


def resolve_probe(probe: str, condition: JoinCondition) -> str:
    """Resolve a probe algorithm name against a join condition.

    ``"auto"`` picks hash probing for equi-joins and nested loops otherwise;
    ``"hash"`` requires an :class:`~repro.query.predicates.EquiJoinCondition`
    (the per-slice index buckets tuples by the equi-key).
    """
    if probe == "auto":
        return "hash" if isinstance(condition, EquiJoinCondition) else "nested_loop"
    if probe not in ("nested_loop", "hash"):
        raise PlanError(f"unknown probe algorithm {probe!r}")
    if probe == "hash" and not isinstance(condition, EquiJoinCondition):
        raise PlanError("hash probing requires an equi-join condition")
    return probe


class KeyedStateMixin:
    """Keyed extract/ingest over per-stream sliced states.

    The repartition primitive behind live resharding
    (:meth:`repro.runtime.sharding.ShardedStreamEngine.reshard`), shared by
    the time- and count-sliced binary joins — both keep their resident
    tuples in a per-stream ``_states`` map and rebuild any hash index via
    ``load_state``, which is all this mixin requires.
    """

    def extract_state(self, stream: str, predicate=None) -> list[StreamTuple]:
        """Remove and return one stream's resident tuples matching ``predicate``.

        The donor half of the repartition primitive: a reshard exports whole
        states with ``predicate=None`` and buckets them by key in the
        coordinator; a keyed ``predicate`` supports donor-side filtering
        (e.g. splitting one slice's state by key in place).  The remaining
        tuples keep their arrival order and, when probing is indexed, the
        hash index is rebuilt to match.  Note that for a *count* slice a
        keyed extract changes the rank occupancy — a count chain is only
        repartition-safe as a whole-state export, which is why resharding
        refuses count-window sessions for more than one shard.
        """
        state = self._states[stream]
        if predicate is None:
            extracted = list(state)
            self.load_state(stream, ())
            return extracted
        extracted: list[StreamTuple] = []
        kept: list[StreamTuple] = []
        for tup in state:
            (extracted if predicate(tup) else kept).append(tup)
        if extracted:
            self.load_state(stream, kept)
        return extracted

    def ingest_state(self, stream: str, tuples: Iterable[StreamTuple]) -> int:
        """Splice foreign tuples into one stream's resident state.

        The receiving half of the repartition primitive: ``tuples`` (the
        extract of another shard's same-boundary slice) are merged with the
        resident tuples in global ``(timestamp, seqno)`` order — the order
        the purge loop relies on, and for a count slice exactly rank order,
        since ranks follow the arrival sequence.  The hash index, when
        enabled, is rebuilt.  Returns the number of tuples spliced in.
        """
        incoming = list(tuples)
        if not incoming:
            return 0
        merged = sorted(
            list(self._states[stream]) + incoming,
            key=lambda tup: (tup.timestamp, tup.seqno),
        )
        self.load_state(stream, merged)
        return len(incoming)


class SlicedOneWayJoin(Operator):
    """Sliced one-way window join ``A[Wstart, Wend] s⋉ B`` (Definition 1).

    Ports
    -----
    * input ``left`` — stream A tuples to be inserted into the sliced state
      (for the first join of a chain these are the raw arrivals; for later
      joins they are the tuples purged by the previous join).
    * input ``right`` — stream B tuples that purge, probe and propagate.
    * output ``output`` — joined result pairs.
    * output ``purged`` — A tuples expelled by the cross-purge step,
      feeding the next join's ``left`` input.
    * output ``propagated`` — B tuples after probing, feeding the next
      join's ``right`` input.
    * output ``punct`` — punctuations carrying the probing tuple's
      timestamp.
    """

    input_ports = ("left", "right")
    output_ports = ("output", "purged", "propagated", "punct")

    def __init__(
        self,
        window_start: float,
        window_end: float,
        condition: JoinCondition,
        enforce_bounds: bool = False,
        columnar: bool | str = "auto",
        name: str | None = None,
    ) -> None:
        super().__init__(name)
        self.slice = WindowSlice(window_start, window_end)
        self.condition = condition
        #: When True, the probe step re-checks the slice bounds on every
        #: candidate pair.  Inside a well-formed chain this is redundant
        #: (Lemma 1) and disabled so the CPU accounting matches the paper.
        self.enforce_bounds = enforce_bounds
        self.columnar = resolve_columnar(columnar)
        if self.columnar:
            attributes = condition.columnar_attributes
            # The state holds left-stream (A) tuples, so the key column is
            # built on the left attribute; the probing B tuple supplies the
            # right attribute's value.
            self._state: Deque[StreamTuple] | ColumnarState = ColumnarState(
                attributes[0] if attributes is not None else None
            )
        else:
            self._state = deque()

    # -- state introspection ----------------------------------------------------
    def _declares_state(self) -> bool:
        return True

    def state_size(self) -> int:
        return len(self._state)

    def state_tuples(self) -> list[StreamTuple]:
        return list(self._state)

    # -- execution (Figure 6) -----------------------------------------------------
    def process(self, item: Any, port: str) -> list[Emission]:
        self.metrics.record_invocation(self.name)
        if isinstance(item, Punctuation):
            return [("punct", item)]
        if port == "left":
            self._state.append(item)
            return []
        if port != "right":
            raise PlanError(f"unexpected port {port!r} for {self.name!r}")
        emissions: list[Emission] = []
        # 1. Cross-purge: expel A tuples with Tb - Ta >= Wend.
        purged, comparisons = self._purge(item.timestamp)
        self.metrics.count(CostCategory.PURGE, comparisons)
        for expired in purged:
            emissions.append(("purged", expired))
        # 2. Probe: join the arriving B tuple against the remaining state.
        for candidate in self._state:
            self.metrics.count(CostCategory.PROBE)
            if self.enforce_bounds and not self.slice.contains_offset(
                item.timestamp - candidate.timestamp
            ):
                continue
            if self.condition.matches(candidate, item):
                emissions.append(("output", JoinedTuple(candidate, item)))
        # 3. Propagate the B tuple to the next join in the chain.
        emissions.append(("propagated", item))
        emissions.append(("punct", Punctuation(item.timestamp, source=self.name)))
        return emissions

    def process_batch(self, items: Iterable[Any], port: str) -> list[Emission]:
        """Vectorized equivalent of per-item :meth:`process` over a FIFO batch."""
        batch = list(items)
        if port == "left":
            state_append = self._state.append
            emissions: list[Emission] = []
            for item in batch:
                if isinstance(item, Punctuation):
                    emissions.append(("punct", item))
                else:
                    state_append(item)
            self.metrics.record_invocation(self.name, len(batch))
            return emissions
        if port != "right":
            raise PlanError(f"unexpected port {port!r} for {self.name!r}")
        state = self._state
        columnar = self.columnar
        condition = self.condition
        all_match = condition.columnar_all_match
        match_mask = condition.match_mask
        attributes = condition.columnar_attributes
        probe_attribute = attributes[1] if attributes is not None else None
        lower = self.slice.start
        end = self.slice.end
        enforce = self.enforce_bounds
        contains_offset = self.slice.contains_offset
        bind_right = self.condition.bind_right
        name = self.name
        joined_tuple = JoinedTuple
        punctuation = Punctuation
        nonzero = np.nonzero
        emissions = []
        append = emissions.append
        purge_count = 0
        probe_count = 0
        for item in batch:
            if isinstance(item, Punctuation):
                append(("punct", item))
                continue
            ts = item.timestamp
            if columnar:
                size = len(state)
                if size:
                    cut = state.purge_cut(ts, end)
                    purge_count += cut + 1 if cut < size else cut
                    for head in state.take(cut):
                        append(("purged", head))
                refs, offset, ts_col, key_col, int_keys = state.columns()
                remaining = len(refs) - offset
                probe_count += remaining
                if remaining:
                    sel = None
                    vector = all_match
                    if not vector and key_col is not None:
                        probe_key = item.values.get(probe_attribute, _ABSENT)
                        if probe_key is not _ABSENT:
                            sel = match_mask(probe_key, key_col, int_keys)
                            vector = sel is not None
                    if vector:
                        if enforce:
                            offsets = ts - ts_col
                            bounds = (offsets >= lower) & (offsets < end)
                            sel = bounds if sel is None else sel & bounds
                        if sel is None:
                            rows = range(offset, offset + remaining)
                        else:
                            hits = nonzero(sel)[0]
                            rows = (hits + offset if offset else hits).tolist()
                        for row in rows:
                            append(("output", joined_tuple(refs[row], item)))
                    else:
                        check = bind_right(item)
                        for row in range(offset, offset + remaining):
                            candidate = refs[row]
                            if enforce and not contains_offset(ts - candidate.timestamp):
                                continue
                            if check(candidate):
                                append(("output", joined_tuple(candidate, item)))
            else:
                while state:
                    purge_count += 1
                    head = state[0]
                    if ts - head.timestamp >= end:
                        state.popleft()
                        append(("purged", head))
                    else:
                        break
                probe_count += len(state)
                if state:
                    # Pre-bound probe predicate: the probing tuple's attribute
                    # lookups happen once, not once per resident candidate.
                    check = bind_right(item)
                    for candidate in state:
                        if enforce and not contains_offset(ts - candidate.timestamp):
                            continue
                        if check(candidate):
                            append(("output", joined_tuple(candidate, item)))
            append(("propagated", item))
            append(("punct", punctuation(ts, source=name)))
        self.metrics.record_invocation(name, len(batch))
        self.metrics.count(CostCategory.PURGE, purge_count)
        self.metrics.count(CostCategory.PROBE, probe_count)
        return emissions

    def _purge(self, now: float) -> tuple[list[StreamTuple], int]:
        purged: list[StreamTuple] = []
        comparisons = 0
        while self._state:
            comparisons += 1
            head = self._state[0]
            if now - head.timestamp >= self.slice.end:
                purged.append(self._state.popleft())
            else:
                break
        return purged, comparisons

    def describe(self) -> str:
        return f"A{self.slice.describe()} s⋉ B on {self.condition.describe()}"


class SlicedBinaryJoin(SpillableJoinMixin, KeyedStateMixin, Operator):
    """Sliced binary window join (Definition 3, execution of Figure 9).

    Ports
    -----
    * input ``left`` / ``right`` — raw stream tuples; only used by the first
      join of a chain, which converts each arrival into its male and female
      reference copies.
    * input ``chain`` — reference tuples arriving from the previous join of
      the chain (purged females and propagated males of either stream).
    * output ``output`` — joined result pairs.
    * output ``next`` — reference tuples for the next join in the chain.
    * output ``punct`` — punctuations emitted after a male finishes probing.

    Parameters
    ----------
    window_start, window_end:
        The slice boundaries ``[Wstart, Wend)`` shared by both stream states.
    condition:
        Pairwise join condition.
    left_stream, right_stream:
        Stream names used to decide which state a reference tuple belongs to.
    probe:
        ``"nested_loop"`` (the paper's cost model), ``"hash"`` (equi-joins
        only: each sliced state keeps a key → tuples index, so a male probes
        one bucket instead of the whole state), or ``"auto"``.  The hash
        index is maintained under insert and cross-purge and rebuilt by
        :meth:`load_state` when a migration replaces a state wholesale.
    """

    input_ports = ("left", "right", "chain")
    output_ports = ("output", "next", "punct")
    #: A raw arrival is handled identically on either port (the tuple's own
    #: stream decides which state it fills), so ordered mixed-stream batches
    #: may be delivered on one port.
    interchangeable_input_ports = ("left", "right")

    def __init__(
        self,
        window_start: float,
        window_end: float,
        condition: JoinCondition,
        left_stream: str = "A",
        right_stream: str = "B",
        enforce_bounds: bool = False,
        probe: str = "nested_loop",
        columnar: bool | str = "auto",
        name: str | None = None,
    ) -> None:
        super().__init__(name)
        self.slice = WindowSlice(window_start, window_end)
        self.condition = condition
        self.left_stream = left_stream
        self.right_stream = right_stream
        self.enforce_bounds = enforce_bounds
        self.probe = resolve_probe(probe, condition)
        self.columnar = resolve_columnar(columnar)
        self._configure_probe()
        self._states: dict[str, Deque[StreamTuple] | ColumnarState] = {
            left_stream: self._new_state(left_stream),
            right_stream: self._new_state(right_stream),
        }

    def _configure_probe(self) -> None:
        """(Re)derive the probe-dependent lookup structures from ``self.probe``."""
        condition = self.condition
        if self.probe == "hash":
            assert isinstance(condition, EquiJoinCondition)
            #: Equi-key attribute per stream (the probing male looks up the
            #: opposite index with its *own* stream's attribute value).
            self._key_attrs: dict[str, str] = {
                self.left_stream: condition.left_attribute,
                self.right_stream: condition.right_attribute,
            }
            self._indexes: dict[str, dict[Any, Deque[StreamTuple]]] | None = {
                self.left_stream: defaultdict(deque),
                self.right_stream: defaultdict(deque),
            }
            # The hash index supplies the candidates, so the key column
            # would go unused.
            self._column_attrs = {self.left_stream: None, self.right_stream: None}
        else:
            self._indexes = None
            attributes = self.condition.columnar_attributes
            if attributes is None:
                self._column_attrs = {self.left_stream: None, self.right_stream: None}
            else:
                self._column_attrs = {
                    self.left_stream: attributes[0],
                    self.right_stream: attributes[1],
                }

    def _new_state(
        self, stream: str, tuples: Iterable[StreamTuple] = ()
    ) -> Deque[StreamTuple] | ColumnarState:
        if self.columnar:
            return ColumnarState(self._column_attrs[stream], tuples)
        return deque(tuples)

    def set_probe(self, probe: str) -> None:
        """Switch the probe algorithm in place, rebuilding derived state.

        Used by per-shard probe tuning: the resident tuples are reloaded so
        the hash index (or the columnar key columns) match the new probe
        choice.  A no-op when the resolved algorithm is unchanged.
        """
        resolved = resolve_probe(probe, self.condition)
        if resolved == self.probe:
            return
        self.probe = resolved
        self._configure_probe()
        for stream in list(self._states):
            self.load_state(stream, list(self._states[stream]))

    # -- state introspection --------------------------------------------------------
    def _declares_state(self) -> bool:
        return True

    def state_size(self) -> int:
        return sum(len(state) for state in self._states.values())

    def state_tuples(self, stream: str) -> list[StreamTuple]:
        return list(self._states[stream])

    def load_state(self, stream: str, tuples: Iterable[StreamTuple]) -> None:
        """Replace one stream's sliced state (migration helper).

        Used by the chain's merge migration; the hash index, when enabled,
        is rebuilt so that probing stays correct across migrations.  A
        replaced spilled state has its segments deleted — every migration
        path (merge, keyed extract/ingest, probe switching) funnels through
        here, which is what re-materializes cold slices before state
        crosses a migration boundary (see ``docs/invariants.md``).
        """
        replaced = self._states.get(stream)
        self._states[stream] = self._new_state(stream, tuples)
        if isinstance(replaced, SpilledState):
            replaced.release()
        if self._indexes is not None:
            index: dict[Any, Deque[StreamTuple]] = defaultdict(deque)
            attribute = self._key_attrs[stream]
            for tup in self._states[stream]:
                index[tup[attribute]].append(tup)
            self._indexes[stream] = index

    def _insert(self, stream: str, tup: StreamTuple) -> None:
        state = self._states[stream]
        state.append(tup)
        if self._indexes is not None and not isinstance(state, SpilledState):
            self._indexes[stream][tup[self._key_attrs[stream]]].append(tup)

    def _unindex_head(self, stream: str, head: StreamTuple) -> None:
        """Drop the oldest tuple of ``stream`` from the hash index."""
        index = self._indexes[stream]
        bucket = index[head[self._key_attrs[stream]]]
        bucket.popleft()
        if not bucket:
            del index[head[self._key_attrs[stream]]]

    # -- execution (Figure 9) ----------------------------------------------------------
    def process(self, item: Any, port: str) -> list[Emission]:
        self.metrics.record_invocation(self.name)
        if isinstance(item, Punctuation):
            return [("punct", item)]
        if port in ("left", "right"):
            return self._process_arrival(item)
        if port == "chain":
            if not isinstance(item, RefTuple):
                raise PlanError(
                    f"chain input of {self.name!r} expects reference tuples, got "
                    f"{type(item).__name__}"
                )
            return self._process_reference(item)
        raise PlanError(f"unexpected port {port!r} for {self.name!r}")

    def process_batch(
        self, items: Iterable[Any], port: str, emit_punctuations: bool = True
    ) -> list[Emission]:
        """Vectorized equivalent of per-item :meth:`process` over a FIFO batch.

        Raw arrivals (``left``/``right``) and chain reference tuples are both
        handled; each male is purged/probed/propagated with all attribute
        lookups hoisted out of the loop and the purge/probe comparisons
        counted in bulk.  With the columnar state layout (the default) the
        cross-purge cut is found by binary search over the timestamp column
        and the probe evaluates the join condition as one vectorized mask
        over the key column, falling back to the bound per-tuple check for
        probe keys or conditions without an exact columnar form.

        ``emit_punctuations=False`` suppresses construction of the per-male
        punctuations for callers that discard them anyway (the sliced chain);
        every data emission and every metric is unchanged.
        """
        batch = list(items)
        chain_port = port == "chain"
        if not chain_port and port not in ("left", "right"):
            raise PlanError(f"unexpected port {port!r} for {self.name!r}")
        states = self._states
        indexes = self._indexes
        key_attrs = self._key_attrs if indexes is not None else None
        spilled = self.is_spilled()
        columnar = self.columnar and indexes is None and not spilled
        spill_attrs = self._spill_key_attrs() if spilled else None
        # Streams whose in-core hash index is live.  Per stream, not per
        # slice: a migration's load_state materializes one stream at a
        # time, so a slice can be half-spilled between those calls.
        indexed_streams = (
            None
            if indexes is None
            else {
                s
                for s, st in states.items()
                if not isinstance(st, SpilledState)
            }
        )
        column_attrs = self._column_attrs
        condition = self.condition
        all_match = condition.columnar_all_match
        match_mask = condition.match_mask
        left_stream = self.left_stream
        right_stream = self.right_stream
        lower = self.slice.start
        end = self.slice.end
        enforce = self.enforce_bounds
        contains_offset = self.slice.contains_offset
        bind_left = self.condition.bind_left
        bind_right = self.condition.bind_right
        name = self.name
        joined_tuple = JoinedTuple
        ref_tuple = RefTuple
        punctuation = Punctuation
        nonzero = np.nonzero
        emissions: list[Emission] = []
        append = emissions.append
        purge_count = 0
        probe_count = 0
        for item in batch:
            if isinstance(item, Punctuation):
                append(("punct", item))
                continue
            if chain_port:
                if not isinstance(item, RefTuple):
                    raise PlanError(
                        f"chain input of {self.name!r} expects reference tuples, got "
                        f"{type(item).__name__}"
                    )
                base = item.base
                stream = base.stream
                if item.gender == FEMALE:
                    # Insert: the female copy fills its own sliced state (a
                    # spilled state buffers it in its resident tail; the
                    # in-core hash index is not maintained while spilled).
                    states[stream].append(base)
                    if indexed_streams is not None and stream in indexed_streams:
                        indexes[stream][base[key_attrs[stream]]].append(base)
                    continue
                ref = item
                insert_after = False
            else:
                base = item
                stream = base.stream
                if stream not in states:
                    raise PlanError(
                        f"join {self.name!r} joins streams {sorted(states)}, got a "
                        f"tuple of stream {stream!r}"
                    )
                ref = ref_tuple(base, MALE)
                insert_after = True
            # -- male: cross-purge, probe, propagate (Figure 9) ----------------
            if stream == left_stream:
                opposite = right_stream
            elif stream == right_stream:
                opposite = left_stream
            else:
                raise PlanError(
                    f"join {self.name!r} joins streams "
                    f"{left_stream!r}/{right_stream!r}, got {stream!r}"
                )
            state = states[opposite]
            ts = base.timestamp
            if isinstance(state, SpilledState):
                # Cold state: purge via the segments' timestamp columns
                # (bit-identical cut decisions), probe via the per-segment
                # key index (decoding only candidate rows), re-checking
                # every candidate with the bound condition predicate.
                purged, purge_comparisons = state.purge(ts, end)
                purge_count += purge_comparisons
                for head in purged:
                    append(("next", ref_tuple(head, FEMALE)))
                attribute = spill_attrs[stream]
                probe_key = (
                    base.values.get(attribute, _ABSENT)
                    if attribute is not None
                    else _ABSENT
                )
                candidates = state.probe(probe_key)
                probe_count += len(candidates)
                if candidates:
                    if stream == left_stream:
                        check = bind_left(base)
                        for candidate in candidates:
                            if enforce and not contains_offset(ts - candidate.timestamp):
                                continue
                            if check(candidate):
                                append(("output", joined_tuple(base, candidate)))
                    else:
                        check = bind_right(base)
                        for candidate in candidates:
                            if enforce and not contains_offset(ts - candidate.timestamp):
                                continue
                            if check(candidate):
                                append(("output", joined_tuple(candidate, base)))
            elif columnar:
                # Purge: binary search over the timestamp column; the
                # comparison count reproduces the scan loop exactly (one per
                # purged head, plus the failing check when tuples remain).
                size = len(state)
                if size:
                    cut = state.purge_cut(ts, end)
                    purge_count += cut + 1 if cut < size else cut
                    for head in state.take(cut):
                        append(("next", ref_tuple(head, FEMALE)))
                # Probe: one vectorized mask over the key column.
                refs, offset, ts_col, key_col, int_keys = state.columns()
                remaining = len(refs) - offset
                probe_count += remaining
                if remaining:
                    sel = None
                    vector = all_match
                    if not vector and key_col is not None:
                        probe_key = base.values.get(column_attrs[stream], _ABSENT)
                        if probe_key is not _ABSENT:
                            sel = match_mask(probe_key, key_col, int_keys)
                            vector = sel is not None
                    if vector:
                        if enforce:
                            offsets = ts - ts_col
                            bounds = (offsets >= lower) & (offsets < end)
                            sel = bounds if sel is None else sel & bounds
                        if sel is None:
                            rows = range(offset, offset + remaining)
                        else:
                            hits = nonzero(sel)[0]
                            rows = (hits + offset if offset else hits).tolist()
                        if stream == left_stream:
                            for row in rows:
                                append(("output", joined_tuple(base, refs[row])))
                        else:
                            for row in rows:
                                append(("output", joined_tuple(refs[row], base)))
                    elif stream == left_stream:
                        check = bind_left(base)
                        for row in range(offset, offset + remaining):
                            candidate = refs[row]
                            if enforce and not contains_offset(ts - candidate.timestamp):
                                continue
                            if check(candidate):
                                append(("output", joined_tuple(base, candidate)))
                    else:
                        check = bind_right(base)
                        for row in range(offset, offset + remaining):
                            candidate = refs[row]
                            if enforce and not contains_offset(ts - candidate.timestamp):
                                continue
                            if check(candidate):
                                append(("output", joined_tuple(candidate, base)))
            else:
                while state:
                    purge_count += 1
                    head = state[0]
                    if ts - head.timestamp >= end:
                        state.popleft()
                        if indexes is not None:
                            self._unindex_head(opposite, head)
                        append(("next", ref_tuple(head, FEMALE)))
                    else:
                        break
                if indexes is not None:
                    candidates = indexes[opposite].get(base[key_attrs[stream]], ())
                else:
                    candidates = state
                probe_count += len(candidates)
                if candidates:
                    # Pre-bound probe predicate (see JoinCondition.bind_left):
                    # the probing male's attribute lookups are hoisted out of
                    # the candidate loop, which dominates per-probe cost in the
                    # nested-loop path.
                    if stream == left_stream:
                        check = bind_left(base)
                        for candidate in candidates:
                            if enforce and not contains_offset(ts - candidate.timestamp):
                                continue
                            if check(candidate):
                                append(("output", joined_tuple(base, candidate)))
                    else:
                        check = bind_right(base)
                        for candidate in candidates:
                            if enforce and not contains_offset(ts - candidate.timestamp):
                                continue
                            if check(candidate):
                                append(("output", joined_tuple(candidate, base)))
            append(("next", ref))
            if emit_punctuations:
                append(("punct", punctuation(ts, source=name)))
            if insert_after:
                # The female copy of a raw arrival fills its own state after
                # the male finished, matching :meth:`_process_arrival`.
                states[stream].append(base)
                if indexed_streams is not None and stream in indexed_streams:
                    indexes[stream][base[key_attrs[stream]]].append(base)
        self.metrics.record_invocation(name, len(batch))
        self.metrics.count(CostCategory.PURGE, purge_count)
        self.metrics.count(CostCategory.PROBE, probe_count)
        return emissions

    def _process_arrival(self, tup: StreamTuple) -> list[Emission]:
        """Handle a raw arrival at the head of the chain.

        The tuple is captured as two reference copies (Section 4.2): the
        male copy purges/probes/propagates first, then the female copy is
        inserted into its own sliced state — the same purge, probe, insert
        order as the regular join of Figure 1.
        """
        if tup.stream not in self._states:
            raise PlanError(
                f"join {self.name!r} joins streams {sorted(self._states)}, got a "
                f"tuple of stream {tup.stream!r}"
            )
        emissions = self._process_reference(RefTuple(tup, MALE))
        emissions.extend(self._process_reference(RefTuple(tup, FEMALE)))
        return emissions

    def _process_reference(self, ref: RefTuple) -> list[Emission]:
        if ref.is_female():
            # Insert: the female copy fills its own sliced state.
            self._insert(ref.stream, ref.base)
            return []
        return self._process_male(ref)

    def _process_male(self, ref: RefTuple) -> list[Emission]:
        opposite = self._opposite(ref.stream)
        state = self._states[opposite]
        emissions: list[Emission] = []
        if isinstance(state, SpilledState):
            return self._process_male_spilled(ref, state)
        # 1. Cross-purge the opposite sliced state with Wend.
        comparisons = 0
        while state:
            comparisons += 1
            head = state[0]
            if ref.timestamp - head.timestamp >= self.slice.end:
                state.popleft()
                if self._indexes is not None:
                    self._unindex_head(opposite, head)
                emissions.append(("next", RefTuple(head, FEMALE)))
            else:
                break
        self.metrics.count(CostCategory.PURGE, comparisons)
        # 2. Probe the opposite sliced state (one hash bucket when indexed).
        if self._indexes is not None:
            probe_key = ref.base[self._key_attrs[ref.stream]]
            candidates: Iterable[StreamTuple] = self._indexes[opposite].get(
                probe_key, ()
            )
        else:
            candidates = state
        for candidate in candidates:
            self.metrics.count(CostCategory.PROBE)
            if self.enforce_bounds and not self.slice.contains_offset(
                ref.timestamp - candidate.timestamp
            ):
                continue
            left, right = self._orient(ref.base, candidate)
            if self.condition.matches(left, right):
                emissions.append(("output", JoinedTuple(left, right)))
        # 3. Propagate the male copy to the next join and punctuate the union.
        emissions.append(("next", ref))
        emissions.append(("punct", Punctuation(ref.timestamp, source=self.name)))
        return emissions

    def _process_male_spilled(
        self, ref: RefTuple, state: SpilledState
    ) -> list[Emission]:
        """Per-tuple male path against a cold (spilled) opposite state."""
        emissions: list[Emission] = []
        purged, comparisons = state.purge(ref.timestamp, self.slice.end)
        for head in purged:
            emissions.append(("next", RefTuple(head, FEMALE)))
        self.metrics.count(CostCategory.PURGE, comparisons)
        attribute = self._spill_key_attrs()[ref.stream]
        probe_key = (
            ref.base.values.get(attribute, _ABSENT)
            if attribute is not None
            else _ABSENT
        )
        candidates = state.probe(probe_key)
        self.metrics.count(CostCategory.PROBE, len(candidates))
        for candidate in candidates:
            if self.enforce_bounds and not self.slice.contains_offset(
                ref.timestamp - candidate.timestamp
            ):
                continue
            left, right = self._orient(ref.base, candidate)
            if self.condition.matches(left, right):
                emissions.append(("output", JoinedTuple(left, right)))
        emissions.append(("next", ref))
        emissions.append(("punct", Punctuation(ref.timestamp, source=self.name)))
        return emissions

    def _opposite(self, stream: str) -> str:
        if stream == self.left_stream:
            return self.right_stream
        if stream == self.right_stream:
            return self.left_stream
        raise PlanError(
            f"join {self.name!r} joins streams "
            f"{self.left_stream!r}/{self.right_stream!r}, got {stream!r}"
        )

    def _orient(
        self, probing: StreamTuple, candidate: StreamTuple
    ) -> tuple[StreamTuple, StreamTuple]:
        """Order a (probing, candidate) pair as (left-stream, right-stream)."""
        if probing.stream == self.left_stream:
            return probing, candidate
        return candidate, probing

    def describe(self) -> str:
        return (
            f"{self.left_stream}{self.slice.describe()} s⋈ "
            f"{self.right_stream}{self.slice.describe()} on {self.condition.describe()}"
        )
