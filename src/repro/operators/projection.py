"""Projection operator."""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.engine.operator import Emission, Operator
from repro.streams.tuples import JoinedTuple, Punctuation, StreamTuple

__all__ = ["Projection"]


class Projection(Operator):
    """Projects stream tuples onto a subset of attributes.

    The paper's example queries project ``A.*``; projection does not affect
    the memory/CPU trade-off studied by the paper, but downstream consumers
    of the library need it to shape final results.  Joined tuples are
    projected on their combined payload (attribute names prefixed with the
    stream name, as produced by :class:`~repro.streams.tuples.JoinedTuple`),
    but without materializing that combined dict: the requested names are
    split into ``(stream prefix, attribute)`` once, and each joined tuple is
    probed directly on its two source payloads.
    """

    input_ports = ("in",)
    output_ports = ("out",)

    def __init__(self, attributes: Sequence[str], name: str | None = None) -> None:
        super().__init__(name)
        self.attributes = tuple(attributes)
        # "A.x" -> ("A.x", "A", "x"); an undotted name can never appear in a
        # combined payload (whose keys are always "<stream>.<attr>").
        self._split = tuple(
            (attribute, *attribute.split(".", 1))
            for attribute in self.attributes
            if "." in attribute
        )

    def _project_joined(self, item: JoinedTuple) -> StreamTuple:
        left, right = item.left, item.right
        projected: dict[str, Any] = {}
        for name, prefix, attribute in self._split:
            # On a self-join the right side wins, matching the insertion
            # order of JoinedTuple.values (left first, right overwrites).
            if prefix == right.stream and attribute in right.values:
                projected[name] = right.values[attribute]
            elif prefix == left.stream and attribute in left.values:
                projected[name] = left.values[attribute]
        return StreamTuple(
            stream=f"{left.stream}x{right.stream}",
            timestamp=item.timestamp,
            values=projected,
        )

    def process(self, item: Any, port: str) -> list[Emission]:
        self.metrics.record_invocation(self.name)
        if isinstance(item, Punctuation):
            return [("out", item)]
        if isinstance(item, JoinedTuple):
            return [("out", self._project_joined(item))]
        projected = {
            name: item.values[name] for name in self.attributes if name in item.values
        }
        return [("out", StreamTuple(item.stream, item.timestamp, projected))]

    def process_batch(self, items: Iterable[Any], port: str) -> list[Emission]:
        batch = list(items)
        attributes = self.attributes
        emissions: list[Emission] = []
        append = emissions.append
        for item in batch:
            if isinstance(item, Punctuation):
                append(("out", item))
            elif isinstance(item, JoinedTuple):
                append(("out", self._project_joined(item)))
            else:
                values = item.values
                projected = {name: values[name] for name in attributes if name in values}
                append(("out", StreamTuple(item.stream, item.timestamp, projected)))
        self.metrics.record_invocation(self.name, len(batch))
        return emissions

    def describe(self) -> str:
        return f"π[{', '.join(self.attributes)}]"
