"""Projection operator."""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.engine.operator import Emission, Operator
from repro.streams.tuples import JoinedTuple, Punctuation, StreamTuple

__all__ = ["Projection"]


class Projection(Operator):
    """Projects stream tuples onto a subset of attributes.

    The paper's example queries project ``A.*``; projection does not affect
    the memory/CPU trade-off studied by the paper, but downstream consumers
    of the library need it to shape final results.  Joined tuples are
    projected on their combined payload (attribute names prefixed with the
    stream name, as produced by :class:`~repro.streams.tuples.JoinedTuple`).
    """

    input_ports = ("in",)
    output_ports = ("out",)

    def __init__(self, attributes: Sequence[str], name: str | None = None) -> None:
        super().__init__(name)
        self.attributes = tuple(attributes)

    def process(self, item: Any, port: str) -> list[Emission]:
        self.metrics.record_invocation(self.name)
        if isinstance(item, Punctuation):
            return [("out", item)]
        if isinstance(item, JoinedTuple):
            values = item.values
            projected = {name: values[name] for name in self.attributes if name in values}
            out = StreamTuple(
                stream=f"{item.left.stream}x{item.right.stream}",
                timestamp=item.timestamp,
                values=projected,
            )
            return [("out", out)]
        projected = {
            name: item.values[name] for name in self.attributes if name in item.values
        }
        return [("out", StreamTuple(item.stream, item.timestamp, projected))]

    def process_batch(self, items: Iterable[Any], port: str) -> list[Emission]:
        batch = list(items)
        attributes = self.attributes
        emissions: list[Emission] = []
        append = emissions.append
        for item in batch:
            if isinstance(item, Punctuation):
                append(("out", item))
            elif isinstance(item, JoinedTuple):
                values = item.values
                projected = {name: values[name] for name in attributes if name in values}
                append(
                    (
                        "out",
                        StreamTuple(
                            stream=f"{item.left.stream}x{item.right.stream}",
                            timestamp=item.timestamp,
                            values=projected,
                        ),
                    )
                )
            else:
                values = item.values
                projected = {name: values[name] for name in attributes if name in values}
                append(("out", StreamTuple(item.stream, item.timestamp, projected)))
        self.metrics.record_invocation(self.name, len(batch))
        return emissions

    def describe(self) -> str:
        return f"π[{', '.join(self.attributes)}]"
