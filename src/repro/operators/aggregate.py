"""Windowed aggregation operator.

The paper's focus is window joins, but its related-work section discusses
shared window aggregation ([3], [28], [16]) and one of the repository's
examples builds a monitoring query mixing a shared join chain with a
downstream aggregate.  :class:`SlidingWindowAggregate` provides that
substrate: it maintains a time-based sliding window over its input and
emits one aggregate value per arriving tuple (or per ``emit_every``
arrivals).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque

from repro.engine.errors import PlanError
from repro.engine.metrics import CostCategory
from repro.engine.operator import Emission, Operator
from repro.streams.tuples import JoinedTuple, Punctuation, StreamTuple

__all__ = ["SlidingWindowAggregate", "AGGREGATE_FUNCTIONS"]


def _mean(values: list[float]) -> float:
    return sum(values) / len(values) if values else 0.0


#: Built-in aggregate functions selectable by name.
AGGREGATE_FUNCTIONS: dict[str, Callable[[list[float]], float]] = {
    "count": lambda values: float(len(values)),
    "sum": lambda values: float(sum(values)),
    "min": lambda values: float(min(values)) if values else 0.0,
    "max": lambda values: float(max(values)) if values else 0.0,
    "avg": _mean,
}


class SlidingWindowAggregate(Operator):
    """Aggregates an attribute over a time-based sliding window.

    Parameters
    ----------
    window:
        Window size in seconds.
    attribute:
        Attribute to aggregate.  For joined tuples use the prefixed name
        (for example ``"A.value"``).
    function:
        One of :data:`AGGREGATE_FUNCTIONS` or a callable over a list of
        floats.
    emit_every:
        Emit one aggregate tuple every N input tuples (default: every tuple).
    """

    input_ports = ("in",)
    output_ports = ("out",)

    def __init__(
        self,
        window: float,
        attribute: str,
        function: str | Callable[[list[float]], float] = "avg",
        emit_every: int = 1,
        name: str | None = None,
    ) -> None:
        super().__init__(name)
        if window <= 0:
            raise PlanError(f"aggregate window must be positive, got {window}")
        if isinstance(function, str):
            if function not in AGGREGATE_FUNCTIONS:
                raise PlanError(
                    f"unknown aggregate {function!r}; expected one of "
                    f"{sorted(AGGREGATE_FUNCTIONS)}"
                )
            self.function = AGGREGATE_FUNCTIONS[function]
            self.function_name = function
        else:
            self.function = function
            self.function_name = getattr(function, "__name__", "custom")
        self.window = float(window)
        self.attribute = attribute
        self.emit_every = max(1, int(emit_every))
        self._window_items: Deque[tuple[float, float]] = deque()
        self._since_emit = 0

    def _declares_state(self) -> bool:
        return True

    def state_size(self) -> int:
        return len(self._window_items)

    def process(self, item: Any, port: str) -> list[Emission]:
        self.metrics.record_invocation(self.name)
        if isinstance(item, Punctuation):
            return []
        timestamp = item.timestamp
        value = self._extract(item)
        # Expire old window entries.
        comparisons = 0
        while self._window_items:
            comparisons += 1
            if timestamp - self._window_items[0][0] >= self.window:
                self._window_items.popleft()
            else:
                break
        self.metrics.count(CostCategory.PURGE, comparisons)
        self._window_items.append((timestamp, value))
        self._since_emit += 1
        if self._since_emit < self.emit_every:
            return []
        self._since_emit = 0
        values = [v for _, v in self._window_items]
        self.metrics.count(CostCategory.OTHER, len(values))
        aggregate = self.function(values)
        out = StreamTuple(
            stream=f"agg({self.function_name})",
            timestamp=timestamp,
            values={"aggregate": aggregate, "window_count": len(values)},
        )
        return [("out", out)]

    def _extract(self, item: Any) -> float:
        if isinstance(item, JoinedTuple):
            values = item.values
            if self.attribute not in values:
                raise PlanError(
                    f"aggregate {self.name!r}: joined tuple has no attribute "
                    f"{self.attribute!r}; known: {sorted(values)}"
                )
            return float(values[self.attribute])
        return float(item[self.attribute])

    def describe(self) -> str:
        return f"{self.function_name}({self.attribute}) over {self.window:g}s"
