"""Count-based sliding-window joins, regular and sliced.

The paper presents state-slicing with time-based windows and notes that
"our proposed techniques can be applied to count-based window constraints in
the same way" (Section 2).  This module provides that extension:

* :class:`CountWindowJoin` — the regular count-based join
  ``A[rows N] ⋈ B[rows M]``: each side's state holds the most recent N (M)
  tuples of that stream, an arriving tuple probes the opposite state and is
  then inserted into its own state, evicting the oldest tuple on overflow.

* :class:`CountSlicedBinaryJoin` — one slice ``[rank_start, rank_end)`` of a
  count-based chain.  A slice stores, per stream, the tuples whose *rank*
  (number of newer tuples of the same stream) falls inside the slice.
  Unlike the time-based sliced join, eviction is triggered by same-stream
  insertions (rank only changes when a newer tuple of the same stream
  arrives), so the female copy both inserts and hands the overflowing tuple
  to the next slice; the male copy only probes and propagates.

* :class:`SharedCountJoin` — the count-window analogue of the selection
  pull-up strategy (Section 3.1): one join with the *largest* registered
  count dispatches each joined pair directly to the queries it belongs to.
  A time-window router re-checks ``|Ta - Tb| < W`` on the joined pair
  itself, but a pair's *rank distance* is not derivable downstream — only
  the join knows how deep in the state the matched partner sat — so the
  per-query dispatch happens inside the operator, one output port per
  registered tap.

Chains of count-sliced joins are managed by
:class:`repro.core.count_chain.CountSlicedJoinChain`.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Any, Deque, Iterable, Sequence

import numpy as np

from repro.engine.columns import ColumnarState
from repro.engine.errors import PlanError
from repro.engine.metrics import CostCategory
from repro.engine.operator import Emission, Operator
from repro.engine.spill import SpillableJoinMixin, SpilledState
from repro.operators.sliced_join import KeyedStateMixin, resolve_columnar, resolve_probe
from repro.query.predicates import (
    EquiJoinCondition,
    JoinCondition,
    Predicate,
    TruePredicate,
)
from repro.streams.tuples import FEMALE, JoinedTuple, Punctuation, RefTuple, StreamTuple

__all__ = ["CountWindowJoin", "CountSlicedBinaryJoin", "CountTap", "SharedCountJoin"]

_ABSENT = object()


class CountWindowJoin(Operator):
    """Regular count-based sliding-window join ``A[rows N] ⋈ B[rows M]``."""

    input_ports = ("left", "right")
    output_ports = ("output",)

    def __init__(
        self,
        count_left: int,
        count_right: int,
        condition: JoinCondition,
        name: str | None = None,
    ) -> None:
        super().__init__(name)
        if count_left <= 0 or count_right <= 0:
            raise PlanError(
                f"count windows must be positive, got {count_left}, {count_right}"
            )
        self.count_left = int(count_left)
        self.count_right = int(count_right)
        self.condition = condition
        self._left_state: Deque[StreamTuple] = deque()
        self._right_state: Deque[StreamTuple] = deque()

    def _declares_state(self) -> bool:
        return True

    def state_size(self) -> int:
        return len(self._left_state) + len(self._right_state)

    def process(self, item: Any, port: str) -> list[Emission]:
        self.metrics.record_invocation(self.name)
        if isinstance(item, Punctuation):
            return []
        if port == "left":
            return self._handle(item, from_left=True)
        if port == "right":
            return self._handle(item, from_left=False)
        raise PlanError(f"unexpected port {port!r} for {self.name!r}")

    def process_batch(self, items: Iterable[Any], port: str) -> list[Emission]:
        batch = list(items)
        if port == "left":
            from_left = True
        elif port == "right":
            from_left = False
        else:
            raise PlanError(f"unexpected port {port!r} for {self.name!r}")
        own_state = self._left_state if from_left else self._right_state
        other_state = self._right_state if from_left else self._left_state
        own_limit = self.count_left if from_left else self.count_right
        bind = self.condition.bind_left if from_left else self.condition.bind_right
        joined_tuple = JoinedTuple
        emissions: list[Emission] = []
        append = emissions.append
        probe_count = 0
        purge_count = 0
        for tup in batch:
            if isinstance(tup, Punctuation):
                continue
            probe_count += len(other_state)
            if other_state:
                # Pre-bound probe predicate: the arriving tuple's attribute
                # lookups happen once, not once per resident candidate.
                check = bind(tup)
                if from_left:
                    for candidate in other_state:
                        if check(candidate):
                            append(("output", joined_tuple(tup, candidate)))
                else:
                    for candidate in other_state:
                        if check(candidate):
                            append(("output", joined_tuple(candidate, tup)))
            own_state.append(tup)
            if len(own_state) > own_limit:
                purge_count += 1
                own_state.popleft()
        self.metrics.record_invocation(self.name, len(batch))
        self.metrics.count(CostCategory.PROBE, probe_count)
        self.metrics.count(CostCategory.PURGE, purge_count)
        return emissions

    def _handle(self, tup: StreamTuple, from_left: bool) -> list[Emission]:
        own_state = self._left_state if from_left else self._right_state
        other_state = self._right_state if from_left else self._left_state
        own_limit = self.count_left if from_left else self.count_right
        emissions: list[Emission] = []
        # Probe the opposite state (its newest `count` tuples by construction).
        for candidate in other_state:
            self.metrics.count(CostCategory.PROBE)
            left, right = (tup, candidate) if from_left else (candidate, tup)
            if self.condition.matches(left, right):
                emissions.append(("output", JoinedTuple(left, right)))
        # Insert, evicting the oldest tuple of the own state on overflow.
        own_state.append(tup)
        if len(own_state) > own_limit:
            self.metrics.count(CostCategory.PURGE)
            own_state.popleft()
        return emissions

    def describe(self) -> str:
        return (
            f"A[rows {self.count_left}] ⋈ B[rows {self.count_right}] on "
            f"{self.condition.describe()}"
        )


@dataclass(frozen=True)
class CountTap:
    """One query tapping a :class:`SharedCountJoin`.

    ``count`` is the query's count window (its pair is routed when the
    matched partner sat among the ``count`` newest opposite tuples at probe
    time); the filters are the query's selections, applied *above* the join
    as pull-up sharing prescribes (count windows range over raw arrivals,
    so selections can only filter answers — see
    :class:`repro.runtime.engine.StreamEngine`).
    """

    port: str
    count: int
    left_filter: Predicate = field(default_factory=TruePredicate)
    right_filter: Predicate = field(default_factory=TruePredicate)

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise PlanError(f"tap {self.port!r} needs a positive count, got {self.count}")


class SharedCountJoin(Operator):
    """Count-window join shared by several queries (pull-up sharing).

    Keeps the ``max(count)`` newest tuples of each stream; an arriving tuple
    probes the whole opposite state (the pull-up inefficiency the paper's
    Equation 1 quantifies) and each matching pair is dispatched to every tap
    whose count covers the matched partner's depth and whose filters accept
    the pair.  Cost accounting mirrors the time-window pull-up plan: one
    ``probe`` comparison per candidate, one ``route`` comparison per
    (matched pair, tap with a count smaller than the shared one), one
    ``select`` comparison per residual filter evaluation.
    """

    input_ports = ("left", "right")

    def __init__(
        self,
        taps: Sequence[CountTap],
        condition: JoinCondition,
        name: str | None = None,
    ) -> None:
        super().__init__(name)
        if not taps:
            raise PlanError("SharedCountJoin requires at least one tap")
        ports = [tap.port for tap in taps]
        if len(ports) != len(set(ports)):
            raise PlanError(f"duplicate tap ports: {ports}")
        self.taps = list(taps)
        self.condition = condition
        self.shared_count = max(tap.count for tap in taps)
        self.output_ports = tuple(ports)
        self._left_state: Deque[StreamTuple] = deque()
        self._right_state: Deque[StreamTuple] = deque()

    def _declares_state(self) -> bool:
        return True

    def state_size(self) -> int:
        return len(self._left_state) + len(self._right_state)

    def process(self, item: Any, port: str) -> list[Emission]:
        self.metrics.record_invocation(self.name)
        if isinstance(item, Punctuation):
            return []
        if port == "left":
            return self._handle(item, from_left=True)
        if port == "right":
            return self._handle(item, from_left=False)
        raise PlanError(f"unexpected port {port!r} for {self.name!r}")

    def _handle(self, tup: StreamTuple, from_left: bool) -> list[Emission]:
        own_state = self._left_state if from_left else self._right_state
        other_state = self._right_state if from_left else self._left_state
        emissions: list[Emission] = []
        size = len(other_state)
        shared_count = self.shared_count
        # Probe oldest-first (matching CountWindowJoin) so per-tap emission
        # order is identical to an unshared per-query join; ``depth`` is the
        # candidate's recency rank (1 = newest opposite tuple).
        for index, candidate in enumerate(other_state):
            self.metrics.count(CostCategory.PROBE)
            depth = size - index
            left, right = (tup, candidate) if from_left else (candidate, tup)
            if not self.condition.matches(left, right):
                continue
            for tap in self.taps:
                if tap.count < shared_count:
                    self.metrics.count(CostCategory.ROUTE)
                    if depth > tap.count:
                        continue
                if not isinstance(tap.left_filter, TruePredicate):
                    self.metrics.count(CostCategory.SELECT)
                    if not tap.left_filter.matches(left):
                        continue
                if not isinstance(tap.right_filter, TruePredicate):
                    self.metrics.count(CostCategory.SELECT)
                    if not tap.right_filter.matches(right):
                        continue
                emissions.append((tap.port, JoinedTuple(left, right)))
        own_state.append(tup)
        if len(own_state) > shared_count:
            self.metrics.count(CostCategory.PURGE)
            own_state.popleft()
        return emissions

    def describe(self) -> str:
        taps = ", ".join(f"{tap.port}[rows {tap.count}]" for tap in self.taps)
        return (
            f"shared A[rows {self.shared_count}] ⋈ B[rows {self.shared_count}] "
            f"on {self.condition.describe()} -> {taps}"
        )


class CountSlicedBinaryJoin(SpillableJoinMixin, KeyedStateMixin, Operator):
    """One slice ``[rank_start, rank_end)`` of a count-based sliced-join chain.

    Ports mirror :class:`repro.operators.sliced_join.SlicedBinaryJoin`:
    raw arrivals enter the head of the chain on ``left``/``right``;
    reference tuples travel between slices on ``chain``/``next``;
    results leave on ``output``; punctuations on ``punct``.  The keyed
    extract/ingest surface comes from
    :class:`~repro.operators.sliced_join.KeyedStateMixin`.
    """

    input_ports = ("left", "right", "chain")
    output_ports = ("output", "next", "punct")
    #: Raw arrivals are handled identically on either port (the tuple's own
    #: stream decides which state it fills).
    interchangeable_input_ports = ("left", "right")

    def __init__(
        self,
        rank_start: int,
        rank_end: int,
        condition: JoinCondition,
        left_stream: str = "A",
        right_stream: str = "B",
        probe: str = "nested_loop",
        columnar: bool | str = "auto",
        name: str | None = None,
    ) -> None:
        super().__init__(name)
        if rank_start < 0 or rank_end <= rank_start:
            raise PlanError(
                f"invalid rank slice [{rank_start}, {rank_end}) for {name!r}"
            )
        self.rank_start = int(rank_start)
        self.rank_end = int(rank_end)
        self.condition = condition
        self.left_stream = left_stream
        self.right_stream = right_stream
        self.probe = resolve_probe(probe, condition)
        self.columnar = resolve_columnar(columnar)
        self._configure_probe()
        self._states: dict[str, Any] = {
            left_stream: self._new_state(left_stream),
            right_stream: self._new_state(right_stream),
        }

    def _configure_probe(self) -> None:
        """(Re)derive the probe-dependent structures from ``self.probe``."""
        left_stream = self.left_stream
        right_stream = self.right_stream
        condition = self.condition
        if self.probe == "hash":
            assert isinstance(condition, EquiJoinCondition)
            self._key_attrs: dict[str, str] = {
                left_stream: condition.left_attribute,
                right_stream: condition.right_attribute,
            }
            self._indexes: dict[str, dict[Any, Deque[StreamTuple]]] | None = {
                left_stream: defaultdict(deque),
                right_stream: defaultdict(deque),
            }
            # The hash index supplies candidates; no key column is needed.
            self._column_attrs: dict[str, str | None] = {
                left_stream: None,
                right_stream: None,
            }
        else:
            self._indexes = None
            attributes = condition.columnar_attributes
            if attributes is not None:
                self._column_attrs = {
                    left_stream: attributes[0],
                    right_stream: attributes[1],
                }
            else:
                self._column_attrs = {left_stream: None, right_stream: None}

    def _new_state(self, stream: str, tuples: Iterable[StreamTuple] = ()) -> Any:
        if self.columnar:
            return ColumnarState(self._column_attrs[stream], tuples)
        return deque(tuples)

    def set_probe(self, probe: str) -> None:
        """Switch the probing strategy in place, rebuilding derived state.

        Used by per-shard probe tuning: the slice keeps its resident tuples
        and reloads them so the hash index / key columns match the new
        strategy.
        """
        resolved = resolve_probe(probe, self.condition)
        if resolved == self.probe:
            return
        self.probe = resolved
        self._configure_probe()
        for stream in list(self._states):
            self.load_state(stream, list(self._states[stream]))

    # -- introspection --------------------------------------------------------
    @property
    def capacity(self) -> int:
        """Number of tuples of each stream this slice may hold."""
        return self.rank_end - self.rank_start

    def _declares_state(self) -> bool:
        return True

    def state_size(self) -> int:
        return sum(len(state) for state in self._states.values())

    def state_tuples(self, stream: str) -> list[StreamTuple]:
        return list(self._states[stream])

    def load_state(self, stream: str, tuples: Iterable[StreamTuple]) -> None:
        """Replace one stream's sliced state (migration helper).

        The count chain's split/merge migrations move rank ranges between
        slices eagerly; the hash index, when enabled, is rebuilt here so
        probing stays correct across migrations.  A replaced spilled state
        has its segments deleted (cold slices re-materialize through here
        before any migration crosses them — see ``docs/invariants.md``).
        """
        replaced = self._states.get(stream)
        self._states[stream] = self._new_state(stream, tuples)
        if isinstance(replaced, SpilledState):
            replaced.release()
        if self._indexes is not None:
            index: dict[Any, Deque[StreamTuple]] = defaultdict(deque)
            attribute = self._key_attrs[stream]
            for tup in self._states[stream]:
                index[tup[attribute]].append(tup)
            self._indexes[stream] = index

    def _insert(self, stream: str, tup: StreamTuple) -> StreamTuple | None:
        """Append to the own state; return the evicted overflow tuple, if any.

        A spilled state buffers the append in its resident tail and decodes
        the overflow row from its oldest segment; the in-core hash index is
        not maintained while spilled (the segment key index replaces it).
        """
        state = self._states[stream]
        spilled = isinstance(state, SpilledState)
        state.append(tup)
        if self._indexes is not None and not spilled:
            self._indexes[stream][tup[self._key_attrs[stream]]].append(tup)
        if len(state) > self.capacity:
            evicted = state.popleft()
            if self._indexes is not None and not spilled:
                index = self._indexes[stream]
                bucket = index[evicted[self._key_attrs[stream]]]
                bucket.popleft()
                if not bucket:
                    del index[evicted[self._key_attrs[stream]]]
            return evicted
        return None

    # -- execution --------------------------------------------------------------
    def process(self, item: Any, port: str) -> list[Emission]:
        self.metrics.record_invocation(self.name)
        if isinstance(item, Punctuation):
            return [("punct", item)]
        if port in ("left", "right"):
            if item.stream not in self._states:
                raise PlanError(
                    f"join {self.name!r} joins streams {sorted(self._states)}, got "
                    f"{item.stream!r}"
                )
            emissions = self._process_male(item)
            emissions.extend(self._process_female(item))
            return emissions
        if port == "chain":
            if not isinstance(item, RefTuple):
                raise PlanError(
                    f"chain input of {self.name!r} expects reference tuples, got "
                    f"{type(item).__name__}"
                )
            if item.is_male():
                return self._process_male(item.base)
            return self._process_female(item.base)
        raise PlanError(f"unexpected port {port!r} for {self.name!r}")

    def process_batch(
        self,
        items: Iterable[Any],
        port: str,
        emit_punctuations: bool = True,
    ) -> list[Emission]:
        batch = list(items)
        chain_port = port == "chain"
        if not chain_port and port not in ("left", "right"):
            raise PlanError(f"unexpected port {port!r} for {self.name!r}")
        states = self._states
        indexes = self._indexes
        key_attrs = self._key_attrs if indexes is not None else None
        spilled = self.is_spilled()
        columnar = self.columnar and indexes is None and not spilled
        spill_attrs = self._spill_key_attrs() if spilled else None
        column_attrs = self._column_attrs
        condition = self.condition
        all_match = condition.columnar_all_match
        match_mask = condition.match_mask
        nonzero = np.nonzero
        left_stream = self.left_stream
        right_stream = self.right_stream
        bind_left = condition.bind_left
        bind_right = condition.bind_right
        name = self.name
        joined_tuple = JoinedTuple
        emissions: list[Emission] = []
        append = emissions.append
        probe_count = 0
        purge_count = 0

        def run_male(tup: StreamTuple) -> None:
            nonlocal probe_count
            stream = tup.stream
            if stream == left_stream:
                opposite = right_stream
            elif stream == right_stream:
                opposite = left_stream
            else:
                raise PlanError(
                    f"join {name!r} joins streams "
                    f"{left_stream!r}/{right_stream!r}, got {stream!r}"
                )
            opposite_state = states[opposite]
            if isinstance(opposite_state, SpilledState):
                # Cold state: the per-segment key index supplies candidates
                # (decoding only matching rows); the bound predicate
                # re-checks every one.  Rank slices never purge on probe.
                # Checked per state, not per slice — a migration's
                # load_state materializes one stream at a time, so a slice
                # can be half-spilled between those calls.
                attribute = spill_attrs[stream]
                probe_key = (
                    tup.values.get(attribute, _ABSENT)
                    if attribute is not None
                    else _ABSENT
                )
                candidates = opposite_state.probe(probe_key)
                probe_count += len(candidates)
                if candidates:
                    if stream == left_stream:
                        check = bind_left(tup)
                        for candidate in candidates:
                            if check(candidate):
                                append(("output", joined_tuple(tup, candidate)))
                    else:
                        check = bind_right(tup)
                        for candidate in candidates:
                            if check(candidate):
                                append(("output", joined_tuple(candidate, tup)))
                append(("next", RefTuple(tup, "male")))
                if emit_punctuations:
                    append(("punct", Punctuation(tup.timestamp, source=name)))
                return
            if columnar:
                refs, offset, _ts, key_col, int_keys = states[opposite].columns()
                remaining = len(refs) - offset
                probe_count += remaining
                if remaining:
                    sel = None
                    vector = all_match
                    if not vector and key_col is not None:
                        probe_key = tup.values.get(column_attrs[stream], _ABSENT)
                        if probe_key is not _ABSENT:
                            sel = match_mask(probe_key, key_col, int_keys)
                            vector = sel is not None
                    if vector:
                        if sel is None:
                            rows: Any = range(offset, offset + remaining)
                        else:
                            hits = nonzero(sel)[0]
                            rows = (hits + offset if offset else hits).tolist()
                        if stream == left_stream:
                            for row in rows:
                                append(("output", joined_tuple(tup, refs[row])))
                        else:
                            for row in rows:
                                append(("output", joined_tuple(refs[row], tup)))
                    elif stream == left_stream:
                        check = bind_left(tup)
                        for row in range(offset, offset + remaining):
                            candidate = refs[row]
                            if check(candidate):
                                append(("output", joined_tuple(tup, candidate)))
                    else:
                        check = bind_right(tup)
                        for row in range(offset, offset + remaining):
                            candidate = refs[row]
                            if check(candidate):
                                append(("output", joined_tuple(candidate, tup)))
                append(("next", RefTuple(tup, "male")))
                if emit_punctuations:
                    append(("punct", Punctuation(tup.timestamp, source=name)))
                return
            if indexes is not None:
                candidates = indexes[opposite].get(tup[key_attrs[stream]], ())
            else:
                candidates = states[opposite]
            probe_count += len(candidates)
            if candidates:
                # Pre-bound probe predicate (see JoinCondition.bind_left).
                if stream == left_stream:
                    check = bind_left(tup)
                    for candidate in candidates:
                        if check(candidate):
                            append(("output", joined_tuple(tup, candidate)))
                else:
                    check = bind_right(tup)
                    for candidate in candidates:
                        if check(candidate):
                            append(("output", joined_tuple(candidate, tup)))
            append(("next", RefTuple(tup, "male")))
            if emit_punctuations:
                append(("punct", Punctuation(tup.timestamp, source=name)))

        def run_female(tup: StreamTuple) -> None:
            nonlocal purge_count
            evicted = self._insert(tup.stream, tup)
            if evicted is not None:
                purge_count += 1
                append(("next", RefTuple(evicted, FEMALE)))

        for item in batch:
            if isinstance(item, Punctuation):
                append(("punct", item))
                continue
            if chain_port:
                if not isinstance(item, RefTuple):
                    raise PlanError(
                        f"chain input of {self.name!r} expects reference tuples, got "
                        f"{type(item).__name__}"
                    )
                if item.is_male():
                    run_male(item.base)
                else:
                    run_female(item.base)
                continue
            if item.stream not in states:
                raise PlanError(
                    f"join {self.name!r} joins streams {sorted(states)}, got "
                    f"{item.stream!r}"
                )
            run_male(item)
            run_female(item)
        self.metrics.record_invocation(name, len(batch))
        self.metrics.count(CostCategory.PROBE, probe_count)
        self.metrics.count(CostCategory.PURGE, purge_count)
        return emissions

    def _process_male(self, tup: StreamTuple) -> list[Emission]:
        """Probe the opposite sliced state, then propagate down the chain."""
        opposite = self._opposite(tup.stream)
        emissions: list[Emission] = []
        opposite_state = self._states[opposite]
        if isinstance(opposite_state, SpilledState):
            attribute = self._spill_key_attrs()[tup.stream]
            candidates: Iterable[StreamTuple] = opposite_state.probe(
                tup.values.get(attribute, _ABSENT) if attribute is not None else _ABSENT
            )
        elif self._indexes is not None:
            candidates = self._indexes[opposite].get(
                tup[self._key_attrs[tup.stream]], ()
            )
        else:
            candidates = opposite_state
        for candidate in candidates:
            self.metrics.count(CostCategory.PROBE)
            left, right = self._orient(tup, candidate)
            if self.condition.matches(left, right):
                emissions.append(("output", JoinedTuple(left, right)))
        emissions.append(("next", RefTuple(tup, "male")))
        emissions.append(("punct", Punctuation(tup.timestamp, source=self.name)))
        return emissions

    def _process_female(self, tup: StreamTuple) -> list[Emission]:
        """Insert into the own sliced state; hand the overflow to the next slice."""
        emissions: list[Emission] = []
        evicted = self._insert(tup.stream, tup)
        if evicted is not None:
            self.metrics.count(CostCategory.PURGE)
            emissions.append(("next", RefTuple(evicted, FEMALE)))
        return emissions

    def _opposite(self, stream: str) -> str:
        if stream == self.left_stream:
            return self.right_stream
        if stream == self.right_stream:
            return self.left_stream
        raise PlanError(
            f"join {self.name!r} joins streams "
            f"{self.left_stream!r}/{self.right_stream!r}, got {stream!r}"
        )

    def _orient(
        self, probing: StreamTuple, candidate: StreamTuple
    ) -> tuple[StreamTuple, StreamTuple]:
        if probing.stream == self.left_stream:
            return probing, candidate
        return candidate, probing

    def describe(self) -> str:
        return (
            f"{self.left_stream}[rows {self.rank_start},{self.rank_end}) s⋈ "
            f"{self.right_stream}[rows {self.rank_start},{self.rank_end}) on "
            f"{self.condition.describe()}"
        )
