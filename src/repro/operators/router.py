"""Router operator for shared join outputs.

When several queries share one physical join whose window is the largest of
the group (the selection pull-up strategy of Section 3.1), the joined
results must be dispatched to each query according to that query's window
constraint and residual filter.  The routing step is a per-result-tuple cost
and is one of the inefficiencies the state-slice paradigm eliminates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.engine.errors import PlanError
from repro.engine.metrics import CostCategory
from repro.engine.operator import Emission, Operator
from repro.query.predicates import Predicate, TruePredicate
from repro.streams.tuples import JoinedTuple, Punctuation

__all__ = ["Route", "Router"]


@dataclass(frozen=True)
class Route:
    """One routing rule of a :class:`Router`.

    Parameters
    ----------
    port:
        Output port receiving the matching results.
    window:
        Window constraint of the registered query; a joined tuple is routed
        when ``|Ta - Tb| < window``.  ``None`` means no window check is
        needed (the query's window equals the shared join's window).
    left_filter / right_filter:
        Residual filters applied to the left / right component of the joined
        tuple ("Filtered PullUp" keeps the selection above the join).
    """

    port: str
    window: float | None = None
    left_filter: Predicate = TruePredicate()
    right_filter: Predicate = TruePredicate()


class Router(Operator):
    """Dispatches joined tuples to query outputs by window and filter.

    Cost accounting follows Section 3.1: each non-trivial window check costs
    one comparison (category ``route``) and each residual filter evaluation
    one comparison (category ``select``), both charged per joined result —
    the quadratic per-result cost the paper highlights.
    """

    input_ports = ("in",)

    def __init__(self, routes: Sequence[Route], name: str | None = None) -> None:
        super().__init__(name)
        if not routes:
            raise PlanError("Router requires at least one route")
        ports = [route.port for route in routes]
        if len(ports) != len(set(ports)):
            raise PlanError(f"duplicate output ports in router routes: {ports}")
        self.routes = list(routes)
        self.output_ports = tuple(ports)
        #: Dispatch table for the batched path, built once: trivial filters
        #: compile to None so the hot loop skips them without isinstance.
        self._compiled = [
            (
                route.port,
                route.window,
                None
                if isinstance(route.left_filter, TruePredicate)
                else route.left_filter.matches,
                None
                if isinstance(route.right_filter, TruePredicate)
                else route.right_filter.matches,
            )
            for route in self.routes
        ]

    def process(self, item: Any, port: str) -> list[Emission]:
        self.metrics.record_invocation(self.name)
        if isinstance(item, Punctuation):
            return [(route.port, item) for route in self.routes]
        if not isinstance(item, JoinedTuple):
            raise PlanError(
                f"router {self.name!r} expects joined tuples, got {type(item).__name__}"
            )
        emissions: list[Emission] = []
        gap = abs(item.left.timestamp - item.right.timestamp)
        for route in self.routes:
            if route.window is not None:
                self.metrics.count(CostCategory.ROUTE)
                if gap >= route.window:
                    continue
            if not isinstance(route.left_filter, TruePredicate):
                self.metrics.count(CostCategory.SELECT)
                if not route.left_filter.matches(item.left):
                    continue
            if not isinstance(route.right_filter, TruePredicate):
                self.metrics.count(CostCategory.SELECT)
                if not route.right_filter.matches(item.right):
                    continue
            emissions.append((route.port, item))
        return emissions

    def process_batch(self, items: Iterable[Any], port: str) -> list[Emission]:
        batch = list(items)
        compiled = self._compiled
        emissions: list[Emission] = []
        append = emissions.append
        route_checks = 0
        filter_checks = 0
        for item in batch:
            if isinstance(item, Punctuation):
                for out_port, _, _, _ in compiled:
                    append((out_port, item))
                continue
            if not isinstance(item, JoinedTuple):
                raise PlanError(
                    f"router {self.name!r} expects joined tuples, got "
                    f"{type(item).__name__}"
                )
            gap = abs(item.left.timestamp - item.right.timestamp)
            for out_port, window, left_matches, right_matches in compiled:
                if window is not None:
                    route_checks += 1
                    if gap >= window:
                        continue
                if left_matches is not None:
                    filter_checks += 1
                    if not left_matches(item.left):
                        continue
                if right_matches is not None:
                    filter_checks += 1
                    if not right_matches(item.right):
                        continue
                append((out_port, item))
        self.metrics.record_invocation(self.name, len(batch))
        self.metrics.count(CostCategory.ROUTE, route_checks)
        self.metrics.count(CostCategory.SELECT, filter_checks)
        return emissions

    def describe(self) -> str:
        parts = []
        for route in self.routes:
            window = "all" if route.window is None else f"|ΔT|<{route.window:g}"
            parts.append(f"{route.port}:{window}")
        return f"router[{', '.join(parts)}]"
