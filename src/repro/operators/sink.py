"""Result sinks.

Query outputs are normally collected by the executor's named outputs, but a
:class:`CollectorSink` is handy when callers want an explicit operator at
the end of a plan (for example to attach a callback or to count results
without keeping them).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.engine.operator import Emission, Operator
from repro.streams.tuples import Punctuation

__all__ = ["CollectorSink", "CountingSink"]


class CollectorSink(Operator):
    """Stores every received item in a list and forwards it unchanged."""

    input_ports = ("in",)
    output_ports = ("out",)

    def __init__(
        self,
        name: str | None = None,
        callback: Callable[[Any], None] | None = None,
    ) -> None:
        super().__init__(name)
        self.items: list[Any] = []
        self.callback = callback

    def process(self, item: Any, port: str) -> list[Emission]:
        self.metrics.record_invocation(self.name)
        if isinstance(item, Punctuation):
            return [("out", item)]
        self.items.append(item)
        if self.callback is not None:
            self.callback(item)
        return [("out", item)]

    def describe(self) -> str:
        return f"collect ({len(self.items)} items)"


class CountingSink(Operator):
    """Counts received items without retaining them (memory-friendly)."""

    input_ports = ("in",)
    output_ports = ("out",)

    def __init__(self, name: str | None = None) -> None:
        super().__init__(name)
        self.count = 0

    def process(self, item: Any, port: str) -> list[Emission]:
        self.metrics.record_invocation(self.name)
        if isinstance(item, Punctuation):
            return [("out", item)]
        self.count += 1
        return [("out", item)]

    def describe(self) -> str:
        return f"count ({self.count} items)"
