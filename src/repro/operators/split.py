"""Stream partitioning (split) operator.

The selection push-down sharing strategy of Section 3.2 partitions the input
stream by the selection predicate so that each partial join only sees the
tuples it needs.  :class:`Split` performs a two-way partition ("match" /
"rest"); :class:`MultiSplit` generalises to many disjoint predicates for
workloads with several distinct selections.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.engine.errors import PlanError
from repro.engine.metrics import CostCategory
from repro.engine.operator import Emission, Operator
from repro.query.predicates import Predicate
from repro.streams.tuples import Punctuation

__all__ = ["Split", "MultiSplit"]


class Split(Operator):
    """Routes each tuple to ``match`` or ``rest`` depending on a predicate.

    One comparison (category ``split``) is charged per tuple, matching the
    splitting cost term ``λ`` in the paper's Equation 2.
    """

    input_ports = ("in",)
    output_ports = ("match", "rest")

    def __init__(self, predicate: Predicate, name: str | None = None) -> None:
        super().__init__(name)
        self.predicate = predicate

    def process(self, item: Any, port: str) -> list[Emission]:
        self.metrics.record_invocation(self.name)
        if isinstance(item, Punctuation):
            return [("match", item), ("rest", item)]
        self.metrics.count(CostCategory.SPLIT)
        if self.predicate.matches(item):
            return [("match", item)]
        return [("rest", item)]

    def process_batch(self, items: Iterable[Any], port: str) -> list[Emission]:
        batch = list(items)
        matches = self.predicate.matches
        emissions: list[Emission] = []
        append = emissions.append
        evaluated = 0
        for item in batch:
            if isinstance(item, Punctuation):
                append(("match", item))
                append(("rest", item))
                continue
            evaluated += 1
            append(("match", item) if matches(item) else ("rest", item))
        self.metrics.record_invocation(self.name, len(batch))
        self.metrics.count(CostCategory.SPLIT, evaluated)
        return emissions

    def describe(self) -> str:
        return f"split[{self.predicate.describe()}]"


class MultiSplit(Operator):
    """Routes each tuple to the first matching predicate's port.

    ``routes`` is a sequence of ``(port_name, predicate)`` pairs evaluated in
    order; tuples matching none go to the ``rest`` port.  The comparison
    count equals the number of predicates evaluated, so a badly ordered
    route list is visibly more expensive — the same effect the paper notes
    for routers with large fanout.
    """

    input_ports = ("in",)

    def __init__(
        self,
        routes: Sequence[tuple[str, Predicate]],
        name: str | None = None,
    ) -> None:
        super().__init__(name)
        if not routes:
            raise PlanError("MultiSplit requires at least one route")
        self.routes = list(routes)
        ports = [port for port, _ in routes]
        if len(ports) != len(set(ports)):
            raise PlanError(f"duplicate ports in MultiSplit routes: {ports}")
        self.output_ports = tuple(ports) + ("rest",)
        self._compiled = [
            (out_port, predicate.matches) for out_port, predicate in self.routes
        ]

    def process(self, item: Any, port: str) -> list[Emission]:
        self.metrics.record_invocation(self.name)
        if isinstance(item, Punctuation):
            return [(out_port, item) for out_port in self.output_ports]
        for out_port, predicate in self.routes:
            self.metrics.count(CostCategory.SPLIT)
            if predicate.matches(item):
                return [(out_port, item)]
        return [("rest", item)]

    def process_batch(self, items: Iterable[Any], port: str) -> list[Emission]:
        batch = list(items)
        compiled = self._compiled
        all_ports = self.output_ports
        emissions: list[Emission] = []
        append = emissions.append
        evaluated = 0
        for item in batch:
            if isinstance(item, Punctuation):
                for out_port in all_ports:
                    append((out_port, item))
                continue
            for out_port, matches in compiled:
                evaluated += 1
                if matches(item):
                    append((out_port, item))
                    break
            else:
                append(("rest", item))
        self.metrics.record_invocation(self.name, len(batch))
        self.metrics.count(CostCategory.SPLIT, evaluated)
        return emissions

    def describe(self) -> str:
        parts = ", ".join(f"{port}:{pred.describe()}" for port, pred in self.routes)
        return f"multisplit[{parts}]"
