"""Regular sliding-window join operators.

These implement the textbook execution of Figure 1 in the paper:

1. **Cross-purge** — an arriving tuple discards expired tuples from the
   opposite window;
2. **Probe** — it is joined against the remaining tuples of the opposite
   window;
3. **Insert** — it is added to its own window.

Two operators are provided: :class:`OneWayWindowJoin` (``A[W] ⋉ B``) and the
symmetric :class:`SlidingWindowJoin` (``A[W1] ⋈ B[W2]``).  Both support the
nested-loop probing the paper's cost model assumes and an optional
hash-based probing for equi-joins.

Cost accounting matches Section 3: each probed pair costs one comparison
(category ``probe``); cross-purging costs one timestamp comparison per
purged tuple plus one for the first non-expired tuple (category ``purge``).
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Any, Deque

from repro.engine.errors import PlanError
from repro.engine.metrics import CostCategory
from repro.engine.operator import Emission, Operator
from repro.query.predicates import EquiJoinCondition, JoinCondition
from repro.streams.tuples import JoinedTuple, Punctuation, StreamTuple

__all__ = ["OneWayWindowJoin", "SlidingWindowJoin"]


class _WindowState:
    """Time-ordered window state of one stream side.

    Tuples are appended in arrival order (which equals timestamp order), so
    purging only ever inspects the head of the deque.  An optional hash
    index over the equi-join key supports hash probing.
    """

    def __init__(self, key_attribute: str | None = None) -> None:
        self.tuples: Deque[StreamTuple] = deque()
        self.key_attribute = key_attribute
        self.index: dict[Any, Deque[StreamTuple]] | None = (
            defaultdict(deque) if key_attribute else None
        )

    def __len__(self) -> int:
        return len(self.tuples)

    def insert(self, tup: StreamTuple) -> None:
        self.tuples.append(tup)
        if self.index is not None:
            self.index[tup[self.key_attribute]].append(tup)

    def purge_expired(self, now: float, window: float) -> tuple[list[StreamTuple], int]:
        """Remove tuples with ``now - ts >= window``.

        Returns the purged tuples (oldest first) and the number of timestamp
        comparisons performed (purged count + 1 for the surviving head, or
        just the purged count when the state empties).
        """
        purged: list[StreamTuple] = []
        comparisons = 0
        while self.tuples:
            comparisons += 1
            head = self.tuples[0]
            if now - head.timestamp >= window:
                purged.append(self.tuples.popleft())
                if self.index is not None:
                    bucket = self.index[head[self.key_attribute]]
                    bucket.popleft()
                    if not bucket:
                        del self.index[head[self.key_attribute]]
            else:
                break
        return purged, comparisons

    def candidates(self, probe_key: Any, hash_probe: bool) -> list[StreamTuple]:
        """Tuples to probe: the matching hash bucket, or the whole window."""
        if hash_probe and self.index is not None:
            return list(self.index.get(probe_key, ()))
        return list(self.tuples)


class OneWayWindowJoin(Operator):
    """One-way sliding window join ``A[W] ⋉ B`` (Section 4.1).

    Only the left stream keeps state (window ``W``); right-stream tuples
    probe it and are not stored.  Output pairs satisfy ``Tb - Ta < W`` and
    the join condition.
    """

    input_ports = ("left", "right")
    output_ports = ("output",)

    def __init__(
        self,
        window: float,
        condition: JoinCondition,
        name: str | None = None,
    ) -> None:
        super().__init__(name)
        if window <= 0:
            raise PlanError(f"join window must be positive, got {window}")
        self.window = float(window)
        self.condition = condition
        self._state = _WindowState()

    def _declares_state(self) -> bool:
        return True

    def state_size(self) -> int:
        return len(self._state)

    def state_tuples(self) -> list[StreamTuple]:
        return list(self._state.tuples)

    def process(self, item: Any, port: str) -> list[Emission]:
        self.metrics.record_invocation(self.name)
        if isinstance(item, Punctuation):
            return []
        if port == "left":
            self._state.insert(item)
            return []
        if port != "right":
            raise PlanError(f"unexpected port {port!r} for {self.name!r}")
        emissions: list[Emission] = []
        _, purge_comparisons = self._state.purge_expired(item.timestamp, self.window)
        self.metrics.count(CostCategory.PURGE, purge_comparisons)
        for candidate in self._state.tuples:
            self.metrics.count(CostCategory.PROBE)
            if self.condition.matches(candidate, item):
                emissions.append(("output", JoinedTuple(candidate, item)))
        return emissions

    def describe(self) -> str:
        return f"A[{self.window:g}] ⋉ B on {self.condition.describe()}"


class SlidingWindowJoin(Operator):
    """Binary sliding-window join ``A[W_left] ⋈ B[W_right]`` (Figure 1).

    Parameters
    ----------
    window_left / window_right:
        Lifetimes of left / right tuples in their respective states.
    condition:
        The pairwise join condition.
    algorithm:
        ``"nested_loop"`` (the paper's cost model) or ``"hash"``
        (requires an :class:`~repro.query.predicates.EquiJoinCondition`).
    """

    input_ports = ("left", "right")
    output_ports = ("output",)

    def __init__(
        self,
        window_left: float,
        window_right: float,
        condition: JoinCondition,
        algorithm: str = "nested_loop",
        name: str | None = None,
    ) -> None:
        super().__init__(name)
        if window_left <= 0 or window_right <= 0:
            raise PlanError(
                f"join windows must be positive, got {window_left}, {window_right}"
            )
        if algorithm not in ("nested_loop", "hash"):
            raise PlanError(f"unknown join algorithm {algorithm!r}")
        if algorithm == "hash" and not isinstance(condition, EquiJoinCondition):
            raise PlanError("hash probing requires an equi-join condition")
        self.window_left = float(window_left)
        self.window_right = float(window_right)
        self.condition = condition
        self.algorithm = algorithm
        left_key = condition.left_attribute if algorithm == "hash" else None
        right_key = condition.right_attribute if algorithm == "hash" else None
        self._left_state = _WindowState(left_key)
        self._right_state = _WindowState(right_key)

    def _declares_state(self) -> bool:
        return True

    def state_size(self) -> int:
        return len(self._left_state) + len(self._right_state)

    def left_state_tuples(self) -> list[StreamTuple]:
        return list(self._left_state.tuples)

    def right_state_tuples(self) -> list[StreamTuple]:
        return list(self._right_state.tuples)

    def process(self, item: Any, port: str) -> list[Emission]:
        self.metrics.record_invocation(self.name)
        if isinstance(item, Punctuation):
            return []
        if port == "left":
            return self._handle(item, from_left=True)
        if port == "right":
            return self._handle(item, from_left=False)
        raise PlanError(f"unexpected port {port!r} for {self.name!r}")

    def _handle(self, tup: StreamTuple, from_left: bool) -> list[Emission]:
        own_state = self._left_state if from_left else self._right_state
        other_state = self._right_state if from_left else self._left_state
        other_window = self.window_right if from_left else self.window_left
        # 1. Cross-purge the opposite window.
        _, purge_comparisons = other_state.purge_expired(tup.timestamp, other_window)
        self.metrics.count(CostCategory.PURGE, purge_comparisons)
        # 2. Probe the opposite window.
        emissions: list[Emission] = []
        hash_probe = self.algorithm == "hash"
        probe_value = None
        if hash_probe and isinstance(self.condition, EquiJoinCondition):
            probe_value = tup[
                self.condition.left_attribute
                if from_left
                else self.condition.right_attribute
            ]
        candidates = other_state.candidates(probe_value, hash_probe)
        for candidate in candidates:
            self.metrics.count(CostCategory.PROBE)
            left, right = (tup, candidate) if from_left else (candidate, tup)
            if self.condition.matches(left, right):
                emissions.append(("output", JoinedTuple(left, right)))
        # 3. Insert into the own window.
        own_state.insert(tup)
        return emissions

    def describe(self) -> str:
        return (
            f"A[{self.window_left:g}] ⋈ B[{self.window_right:g}] on "
            f"{self.condition.describe()} ({self.algorithm})"
        )
