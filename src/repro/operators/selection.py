"""Selection (filter) operators.

Three variants are provided:

* :class:`Selection` — the plain σ operator over stream tuples.
* :class:`StreamFilter` — a selection placed *inside* a sliced-join chain
  (Figure 10/15 of the paper): it filters only the reference tuples of one
  stream and lets everything else (the other stream's tuples, punctuations)
  pass untouched.
* :class:`JoinedFilter` — a residual selection over joined results, used
  when a query's predicate is stronger than the predicate already pushed
  below the slice that produced the result (the σ' operators of
  Figures 10 and 15).
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.engine.metrics import CostCategory
from repro.engine.operator import Emission, Operator
from repro.query.predicates import Predicate, TruePredicate
from repro.streams.tuples import MALE, JoinedTuple, Punctuation, RefTuple, StreamTuple

__all__ = ["Selection", "StreamFilter", "JoinedFilter"]

_ABSENT = object()

#: Below this batch size the columnar filter path costs more than it saves.
_MIN_COLUMNAR_BATCH = 4


class Selection(Operator):
    """Filters tuples by a predicate (the paper's σ operator).

    Every evaluated tuple costs one comparison (category ``select``),
    matching the per-tuple filtering cost of the paper's CPU model.
    Punctuations pass through unharmed so selections can sit inside a
    sliced-join chain without breaking the union's ordering protocol.
    """

    input_ports = ("in",)
    output_ports = ("out",)

    def __init__(self, predicate: Predicate, name: str | None = None) -> None:
        super().__init__(name)
        self.predicate = predicate

    def process(self, item: Any, port: str) -> list[Emission]:
        self.metrics.record_invocation(self.name)
        if isinstance(item, Punctuation):
            return [("out", item)]
        self.metrics.count(CostCategory.SELECT)
        if self.predicate.matches(item):
            return [("out", item)]
        return []

    def process_batch(self, items: Iterable[Any], port: str) -> list[Emission]:
        batch = list(items)
        if len(batch) >= _MIN_COLUMNAR_BATCH:
            emissions = self._process_batch_columnar(batch)
            if emissions is not None:
                return emissions
        matches = self.predicate.matches
        emissions = []
        append = emissions.append
        evaluated = 0
        for item in batch:
            if isinstance(item, Punctuation):
                append(("out", item))
                continue
            evaluated += 1
            if matches(item):
                append(("out", item))
        self.metrics.record_invocation(self.name, len(batch))
        self.metrics.count(CostCategory.SELECT, evaluated)
        return emissions

    def _process_batch_columnar(self, batch: list[Any]) -> list[Emission] | None:
        """Vectorized filter: gather the predicate column, mask once.

        Returns ``None`` (fall back to per-tuple evaluation) whenever the
        predicate has no mask form or any value is not a plain float — the
        column path only runs when its semantics are exactly the per-tuple
        comparison's.
        """
        attribute = getattr(self.predicate, "attribute", None)
        if attribute is None:
            return None
        values: list[float] = []
        add_value = values.append
        puncts = []
        add_punct = puncts.append
        for index, item in enumerate(batch):
            if isinstance(item, Punctuation):
                add_punct(index)
                continue
            if type(item) is not StreamTuple:
                return None
            value = item.values.get(attribute, _ABSENT)
            if type(value) is not float:
                return None
            add_value(value)
        if not values:
            return None
        mask = self.predicate.match_mask(values)
        if mask is None:
            return None
        emissions: list[Emission] = []
        append = emissions.append
        punct_set = set(puncts)
        row = 0
        for index, item in enumerate(batch):
            if index in punct_set:
                append(("out", item))
                continue
            if mask[row]:
                append(("out", item))
            row += 1
        self.metrics.record_invocation(self.name, len(batch))
        self.metrics.count(CostCategory.SELECT, len(values))
        return emissions

    def describe(self) -> str:
        return f"σ[{self.predicate.describe()}]"


class StreamFilter(Operator):
    """A selection pushed into a sliced-join chain.

    It sits on the queue between two sliced joins and filters only the
    reference tuples (male and female copies) belonging to ``stream``; the
    other stream's tuples pass through untouched so the chain keeps working
    for the unfiltered side.

    Cost accounting follows the paper's Equation 3, which charges the pushed
    selection once per original stream tuple (λ): the predicate is charged
    for the male copy only — the female copy of the same tuple reuses that
    decision, which is the tuple-lineage optimisation the paper borrows
    from [18].
    """

    input_ports = ("in",)
    output_ports = ("out",)

    def __init__(
        self,
        predicate: Predicate,
        stream: str,
        name: str | None = None,
    ) -> None:
        super().__init__(name)
        self.predicate = predicate
        self.stream = stream

    def process(self, item: Any, port: str) -> list[Emission]:
        self.metrics.record_invocation(self.name)
        if isinstance(item, Punctuation):
            return [("out", item)]
        if isinstance(item, RefTuple) and item.stream == self.stream:
            if item.is_male():
                self.metrics.count(CostCategory.SELECT)
            if self.predicate.matches(item.base):
                return [("out", item)]
            return []
        if not isinstance(item, RefTuple) and getattr(item, "stream", None) == self.stream:
            self.metrics.count(CostCategory.SELECT)
            if self.predicate.matches(item):
                return [("out", item)]
            return []
        return [("out", item)]

    def process_batch(self, items: Iterable[Any], port: str) -> list[Emission]:
        batch = list(items)
        if len(batch) >= _MIN_COLUMNAR_BATCH:
            emissions = self._process_batch_columnar(batch)
            if emissions is not None:
                return emissions
        matches = self.predicate.matches
        stream = self.stream
        emissions = []
        append = emissions.append
        evaluated = 0
        for item in batch:
            if isinstance(item, Punctuation):
                append(("out", item))
            elif isinstance(item, RefTuple) and item.stream == stream:
                if item.is_male():
                    evaluated += 1
                if matches(item.base):
                    append(("out", item))
            elif not isinstance(item, RefTuple) and getattr(item, "stream", None) == stream:
                evaluated += 1
                if matches(item):
                    append(("out", item))
            else:
                append(("out", item))
        self.metrics.record_invocation(self.name, len(batch))
        self.metrics.count(CostCategory.SELECT, evaluated)
        return emissions

    def _process_batch_columnar(self, batch: list[Any]) -> list[Emission] | None:
        """Vectorized in-chain filter over this stream's reference tuples.

        Gathers the predicate column for every item belonging to
        ``self.stream`` (male/female reference copies and raw stream tuples)
        and evaluates the predicate once as a mask; pass-through items keep
        their positions.  Returns ``None`` — per-tuple fallback — when the
        predicate has no mask form or any gathered value is not a plain
        float, so the mask path never changes semantics.
        """
        attribute = getattr(self.predicate, "attribute", None)
        if attribute is None:
            return None
        stream = self.stream
        # Flags per item: 0 pass-through, 1 female ref (filtered, uncharged),
        # 2 male ref, 3 raw stream tuple (both filtered and charged).
        flags: list[int] = []
        add_flag = flags.append
        values: list[float] = []
        add_value = values.append
        evaluated = 0
        for item in batch:
            if isinstance(item, Punctuation):
                add_flag(0)
            elif isinstance(item, RefTuple) and item.stream == stream:
                base = item.base
                if type(base) is not StreamTuple:
                    return None
                value = base.values.get(attribute, _ABSENT)
                if type(value) is not float:
                    return None
                add_value(value)
                if item.gender == MALE:
                    evaluated += 1
                    add_flag(2)
                else:
                    add_flag(1)
            elif not isinstance(item, RefTuple) and getattr(item, "stream", None) == stream:
                if type(item) is not StreamTuple:
                    return None
                value = item.values.get(attribute, _ABSENT)
                if type(value) is not float:
                    return None
                add_value(value)
                evaluated += 1
                add_flag(3)
            else:
                add_flag(0)
        if not values:
            return None
        mask = self.predicate.match_mask(values)
        if mask is None:
            return None
        emissions: list[Emission] = []
        append = emissions.append
        row = 0
        for index, item in enumerate(batch):
            if not flags[index]:
                append(("out", item))
                continue
            if mask[row]:
                append(("out", item))
            row += 1
        self.metrics.record_invocation(self.name, len(batch))
        self.metrics.count(CostCategory.SELECT, evaluated)
        return emissions

    def describe(self) -> str:
        return f"σ[{self.stream}: {self.predicate.describe()}] (in-chain)"


class JoinedFilter(Operator):
    """Residual selection over joined results.

    ``left_predicate`` / ``right_predicate`` are evaluated against the left /
    right component of each joined tuple.  Trivial (always-true) predicates
    cost nothing, so plans only pay for the residual checks they genuinely
    need — matching the σ' term of the paper's Equation 3.
    """

    input_ports = ("in",)
    output_ports = ("out",)

    def __init__(
        self,
        left_predicate: Predicate | None = None,
        right_predicate: Predicate | None = None,
        name: str | None = None,
    ) -> None:
        super().__init__(name)
        self.left_predicate = left_predicate or TruePredicate()
        self.right_predicate = right_predicate or TruePredicate()
        self._check_left = not isinstance(self.left_predicate, TruePredicate)
        self._check_right = not isinstance(self.right_predicate, TruePredicate)

    def process(self, item: Any, port: str) -> list[Emission]:
        self.metrics.record_invocation(self.name)
        if isinstance(item, Punctuation):
            return [("out", item)]
        if not isinstance(item, JoinedTuple):
            return [("out", item)]
        if not isinstance(self.left_predicate, TruePredicate):
            self.metrics.count(CostCategory.SELECT)
            if not self.left_predicate.matches(item.left):
                return []
        if not isinstance(self.right_predicate, TruePredicate):
            self.metrics.count(CostCategory.SELECT)
            if not self.right_predicate.matches(item.right):
                return []
        return [("out", item)]

    def process_batch(self, items: Iterable[Any], port: str) -> list[Emission]:
        batch = list(items)
        check_left = self._check_left
        check_right = self._check_right
        left_matches = self.left_predicate.matches
        right_matches = self.right_predicate.matches
        emissions: list[Emission] = []
        append = emissions.append
        evaluated = 0
        for item in batch:
            if isinstance(item, Punctuation) or not isinstance(item, JoinedTuple):
                append(("out", item))
                continue
            if check_left:
                evaluated += 1
                if not left_matches(item.left):
                    continue
            if check_right:
                evaluated += 1
                if not right_matches(item.right):
                    continue
            append(("out", item))
        self.metrics.record_invocation(self.name, len(batch))
        self.metrics.count(CostCategory.SELECT, evaluated)
        return emissions

    def describe(self) -> str:
        return (
            f"σ'[left: {self.left_predicate.describe()}, "
            f"right: {self.right_predicate.describe()}]"
        )
