"""Build executable shared plans from chain specifications.

:func:`build_state_slice_plan` assembles the full state-slice shared query
plan of Figures 10, 12 and 15: the chain of sliced binary joins, the
selections pushed onto the chain queues, per-slice routers where a merged
slice serves several windows, and one order-preserving union per query that
taps more than one slice.

With ``window_kind="count"`` the same plan shape is built over
:class:`~repro.operators.count_join.CountSlicedBinaryJoin` slices, under
the two structural restrictions of rank-based windows (the same ones the
runtime layer documents on :class:`~repro.runtime.engine.CountStreamEngine`):
the chain must be Mem-Opt — a merged slice's results cannot be re-split by
rank at routing time — and selections are applied to each query's results
only, never pushed into the chain (a pushed filter would redefine which
tuples occupy the most recent N ranks).

The resulting :class:`~repro.engine.plan.QueryPlan` has one named output per
query of the workload and can be executed by either executor.
"""

from __future__ import annotations

from repro.core.mem_opt import build_mem_opt_chain
from repro.core.pushdown import pushed_filters, residual_filters
from repro.core.slices import ChainSpec
from repro.engine.errors import ChainError, ConfigurationError
from repro.engine.plan import QueryPlan
from repro.operators.count_join import CountSlicedBinaryJoin
from repro.operators.router import Route, Router
from repro.operators.selection import Selection, StreamFilter
from repro.operators.sliced_join import SlicedBinaryJoin
from repro.operators.union import OrderedUnion
from repro.query.predicates import TruePredicate
from repro.query.query import QueryWorkload
from repro.query.windows import as_count

__all__ = ["build_state_slice_plan"]

_EPSILON = 1e-9


def build_state_slice_plan(
    workload: QueryWorkload,
    chain: ChainSpec | None = None,
    push_selections: bool = True,
    plan_name: str = "state-slice",
    window_kind: str = "time",
    probe: str = "nested_loop",
) -> QueryPlan:
    """Build the shared state-slice plan for a workload.

    Parameters
    ----------
    workload:
        The continuous queries to share.
    chain:
        Chain specification; defaults to the Mem-Opt chain (one slice per
        distinct window).  Pass a CPU-Opt chain to build the merged variant
        (time windows only; count chains keep the Mem-Opt shape).
    push_selections:
        When True (the default), the per-slice disjunction filters σ' are
        installed on the chain (Section 6.1).  When False the selections are
        applied only to each query's results, which reproduces the behaviour
        of a chain without selection push-down for ablation studies.
        Ignored for count windows (selections are always residual there).
    window_kind:
        ``"time"`` (default) or ``"count"`` — the interpretation of every
        query window (seconds vs most-recent-N tuple ranks).
    probe:
        Probe algorithm of every sliced join: ``"nested_loop"`` (the
        paper's cost model), ``"hash"`` (equi-join conditions only) or
        ``"auto"``.
    """
    if window_kind == "count":
        return _build_count_state_slice_plan(workload, chain, plan_name, probe)
    if window_kind != "time":
        raise ConfigurationError(
            f"window_kind must be 'time' or 'count', got {window_kind!r}"
        )
    chain = chain or build_mem_opt_chain(workload)
    plan = QueryPlan(plan_name)

    joins = _add_chain_joins(plan, workload, chain, probe)
    _wire_chain(plan, workload, chain, joins, push_selections)
    _wire_entries(plan, workload, chain, joins, push_selections)
    _wire_outputs(plan, workload, chain, joins, push_selections)
    plan.validate()
    return plan


def _add_chain_joins(
    plan: QueryPlan, workload: QueryWorkload, chain: ChainSpec, probe: str
) -> list[SlicedBinaryJoin]:
    joins = []
    for index, slice_spec in enumerate(chain.slices):
        join = SlicedBinaryJoin(
            window_start=slice_spec.start,
            window_end=slice_spec.end,
            condition=workload.join_condition,
            left_stream=workload.left_stream,
            right_stream=workload.right_stream,
            probe=probe,
            name=f"slice_{index + 1}",
        )
        plan.add_operator(join)
        joins.append(join)
    return joins


def _build_count_state_slice_plan(
    workload: QueryWorkload,
    chain: ChainSpec | None,
    plan_name: str,
    probe: str,
) -> QueryPlan:
    """The count-window variant: a Mem-Opt chain of count-sliced joins."""
    chain = chain or build_mem_opt_chain(workload)
    if not chain.is_memory_optimal:
        raise ChainError(
            "count-window chains must be Mem-Opt (one slice per registered "
            "count): a merged slice's results cannot be re-split by rank at "
            "routing time"
        )
    boundaries = [
        as_count(boundary, context="chain boundary") for boundary in chain.boundaries()[1:]
    ]
    plan = QueryPlan(plan_name)
    joins: list[CountSlicedBinaryJoin] = []
    previous = 0
    for index, end in enumerate(boundaries):
        join = CountSlicedBinaryJoin(
            rank_start=previous,
            rank_end=end,
            condition=workload.join_condition,
            left_stream=workload.left_stream,
            right_stream=workload.right_stream,
            probe=probe,
            name=f"slice_{index + 1}",
        )
        plan.add_operator(join)
        joins.append(join)
        previous = end
    plan.add_entry(workload.left_stream, joins[0], "left")
    plan.add_entry(workload.right_stream, joins[0], "right")
    for index in range(len(joins) - 1):
        plan.connect(joins[index], "next", joins[index + 1], "chain")

    # Per-slice result routing: a query taps every slice inside its count.
    # The Mem-Opt invariant makes rank checks unnecessary; only residual
    # selections (always the query's own — nothing is pushed) need a router.
    union_inputs: dict[str, list[tuple[str, str]]] = {q.name: [] for q in workload}
    for index, join in enumerate(joins):
        routes: list[Route] = []
        direct: list[str] = []
        for query in workload:
            if query.window < join.rank_end - _EPSILON:
                continue  # The slice is beyond this query's count.
            if query.has_selection:
                routes.append(
                    Route(
                        port=query.name,
                        left_filter=query.left_filter,
                        right_filter=query.right_filter,
                    )
                )
            else:
                direct.append(query.name)
        if routes:
            router = Router(routes, name=f"router_{index + 1}")
            plan.add_operator(router)
            plan.connect(join, "output", router, "in")
            for route in routes:
                union_inputs[route.port].append((router.name, route.port))
        for query_name in direct:
            union_inputs[query_name].append((join.name, "output"))

    for query in workload:
        completing_index = boundaries.index(as_count(query.window))
        sources = union_inputs[query.name]
        if len(sources) == 1:
            source_name, source_port = sources[0]
            plan.add_output(query.name, source_name, source_port)
            continue
        union = OrderedUnion(name=f"union_{query.name}")
        plan.add_operator(union)
        for source_name, source_port in sources:
            plan.connect(source_name, source_port, union, "in")
        # The propagated male of the query's last slice acts as the
        # punctuation that lets the union release sorted results.
        plan.connect(joins[completing_index], "punct", union, "in")
        plan.add_output(query.name, union, "out")
    plan.validate()
    return plan


def _wire_entries(
    plan: QueryPlan,
    workload: QueryWorkload,
    chain: ChainSpec,
    joins: list[SlicedBinaryJoin],
    push_selections: bool,
) -> None:
    """Connect the raw stream arrivals to the head of the chain.

    When the head slice itself has a non-trivial pushed-down filter (every
    query filters the stream), a plain selection is installed on the raw
    input before the first join, as in Figure 15 (σ'_1).
    """
    head = joins[0]
    filters = pushed_filters(workload, chain.slices[0])
    if push_selections and not isinstance(filters.left, TruePredicate):
        selection = Selection(filters.left, name="entry_filter_left")
        plan.add_operator(selection)
        plan.add_entry(workload.left_stream, selection, "in")
        plan.connect(selection, "out", head, "left")
    else:
        plan.add_entry(workload.left_stream, head, "left")
    if push_selections and not isinstance(filters.right, TruePredicate):
        selection = Selection(filters.right, name="entry_filter_right")
        plan.add_operator(selection)
        plan.add_entry(workload.right_stream, selection, "in")
        plan.connect(selection, "out", head, "right")
    else:
        plan.add_entry(workload.right_stream, head, "right")


def _wire_chain(
    plan: QueryPlan,
    workload: QueryWorkload,
    chain: ChainSpec,
    joins: list[SlicedBinaryJoin],
    push_selections: bool,
) -> None:
    """Connect slice i's ``next`` queue to slice i+1, inserting σ' filters."""
    for index in range(len(joins) - 1):
        upstream = joins[index]
        downstream = joins[index + 1]
        source_op, source_port = upstream, "next"
        if push_selections:
            filters = pushed_filters(workload, chain.slices[index + 1])
            if not isinstance(filters.left, TruePredicate):
                chain_filter = StreamFilter(
                    filters.left,
                    stream=workload.left_stream,
                    name=f"chain_filter_left_{index + 2}",
                )
                plan.add_operator(chain_filter)
                plan.connect(source_op, source_port, chain_filter, "in")
                source_op, source_port = chain_filter, "out"
            if not isinstance(filters.right, TruePredicate):
                chain_filter = StreamFilter(
                    filters.right,
                    stream=workload.right_stream,
                    name=f"chain_filter_right_{index + 2}",
                )
                plan.add_operator(chain_filter)
                plan.connect(source_op, source_port, chain_filter, "in")
                source_op, source_port = chain_filter, "out"
        plan.connect(source_op, source_port, downstream, "chain")


def _wire_outputs(
    plan: QueryPlan,
    workload: QueryWorkload,
    chain: ChainSpec,
    joins: list[SlicedBinaryJoin],
    push_selections: bool,
) -> None:
    """Route slice results to per-query unions and register the query outputs."""
    # Per query: which slices feed it, and through which (router) port.
    union_inputs: dict[str, list[tuple[str, str]]] = {q.name: [] for q in workload}
    for index, slice_spec in enumerate(chain.slices):
        join = joins[index]
        tapping = chain.queries_tapping(index)
        routes: list[Route] = []
        direct: list[str] = []
        for query in tapping:
            needs_window_check = query.window < slice_spec.end - _EPSILON
            residual = residual_filters(workload, chain, query, index)
            if push_selections and residual.is_trivial and not needs_window_check:
                direct.append(query.name)
                continue
            if not push_selections:
                # Without push-down every query applies its own filter to the
                # results it receives.
                left_filter = query.left_filter
                right_filter = query.right_filter
            else:
                left_filter = residual.left
                right_filter = residual.right
            if (
                not needs_window_check
                and isinstance(left_filter, TruePredicate)
                and isinstance(right_filter, TruePredicate)
            ):
                direct.append(query.name)
                continue
            routes.append(
                Route(
                    port=query.name,
                    window=query.window if needs_window_check else None,
                    left_filter=left_filter,
                    right_filter=right_filter,
                )
            )
        if routes:
            router = Router(routes, name=f"router_{index + 1}")
            plan.add_operator(router)
            plan.connect(join, "output", router, "in")
            for route in routes:
                union_inputs[route.port].append((router.name, route.port))
        for query_name in direct:
            union_inputs[query_name].append((join.name, "output"))

    for query in workload:
        completing_index = chain.slice_for_window(query.window)
        sources = union_inputs[query.name]
        if len(sources) == 1:
            source_name, source_port = sources[0]
            plan.add_output(query.name, source_name, source_port)
            continue
        union = OrderedUnion(name=f"union_{query.name}")
        plan.add_operator(union)
        for source_name, source_port in sources:
            plan.connect(source_name, source_port, union, "in")
        # The propagated male of the query's last slice acts as the
        # punctuation that lets the union release sorted results.
        plan.connect(joins[completing_index], "punct", union, "in")
        plan.add_output(query.name, union, "out")
