"""Memory-optimal chain construction (Section 5.1).

The Mem-Opt chain has one slice per distinct query window: slices
``[0, w1), [w1, w2), ..., [w_{N-1}, w_N)`` for the distinct windows sorted
ascending.  Theorem 3 proves that this chain's total state memory equals the
state memory of a single join with the largest window — the minimum needed
to answer the largest query at all — and Theorem 4 extends the claim to the
chain with selections pushed down.
"""

from __future__ import annotations

from repro.core.slices import ChainSpec, SliceSpec
from repro.query.query import QueryWorkload

__all__ = ["build_mem_opt_chain"]


def build_mem_opt_chain(workload: QueryWorkload) -> ChainSpec:
    """Build the Mem-Opt chain: one slice per distinct query window."""
    windows = workload.window_sizes()
    slices = []
    previous = 0.0
    for window in windows:
        slices.append(SliceSpec(start=previous, end=window, covered_windows=(window,)))
        previous = window
    return ChainSpec(workload, slices)
