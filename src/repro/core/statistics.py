"""One statistics plane shared by the static optimizer and the runtime.

The chain searches of Sections 5-7 price plans from three quantities: the
per-stream arrival rates λ, the join factor S1 of the stream pair, and the
selection selectivities Sσ of the registered queries.  Before this module
those quantities lived in three unrelated places — hand-supplied
:class:`~repro.core.merge_graph.ChainCostParameters` fields, per-predicate
``selectivity`` estimates, and live counters inside
:class:`~repro.engine.metrics.MetricsCollector` that nothing read back.

:class:`StreamStatistics` unifies them:

* **static planning** — :meth:`StreamStatistics.from_workload` builds the
  declared prior (generator-configured rates, predicate estimates), and
  :meth:`chain_parameters` / :meth:`calibrated_workload` feed it to the
  CPU-Opt search exactly as hand-written parameters used to be;
* **online estimation** — :meth:`StreamStatistics.from_metrics_window`
  derives the same quantities from the *difference of two
  collector snapshots* (:meth:`~repro.engine.metrics.MetricsCollector.snapshot`
  / :meth:`~repro.engine.metrics.MetricsSnapshot.diff`): per-stream ingest
  deltas over elapsed stream time give rates, the chain's match/opportunity
  observations give the join factor, and per-query filter pass/seen
  observations give selection selectivities;
* **adaptation** — :meth:`drift` quantifies how far a fresh estimate has
  moved from the statistics the current chain was optimized for, which is
  the trigger signal of :class:`repro.runtime.adaptive.AdaptivePolicy`.

Observation-key conventions (recorded by the runtime engine when statistics
collection is enabled)::

    chain.matches              joined pairs produced by the head slice
    chain.opportunities        candidate pairs offered to the head slice
    filter.<query>.<side>.pass arrivals passing query's <side> predicate
    filter.<query>.<side>.seen arrivals the predicate was evaluated on
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping, Sequence

from repro.core.merge_graph import ChainCostParameters
from repro.engine.errors import ConfigurationError
from repro.engine.metrics import MetricsSnapshot
from repro.query.predicates import Predicate, TruePredicate
from repro.query.query import ContinuousQuery, QueryWorkload

__all__ = [
    "CalibratedPredicate",
    "StreamStatistics",
    "OBS_CHAIN_MATCHES",
    "OBS_CHAIN_OPPORTUNITIES",
    "filter_observation_key",
]

#: Observation-counter names shared with the runtime engine.
OBS_CHAIN_MATCHES = "chain.matches"
OBS_CHAIN_OPPORTUNITIES = "chain.opportunities"


def filter_observation_key(query: str, side: str, event: str) -> str:
    """The observation counter of one query-side filter (`pass` or `seen`)."""
    return f"filter.{query}.{side}.{event}"


@dataclass(frozen=True)
class CalibratedPredicate(Predicate):
    """A predicate whose *measured* selectivity replaces the declared one.

    Delegates matching and ``describe()`` to the wrapped predicate, so the
    push-down machinery (disjunction dedup, residual derivation — both keyed
    on ``describe()``) treats it as the original; only the cost model sees
    the calibrated estimate.
    """

    base: Predicate
    selectivity: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.selectivity <= 1.0:
            raise ConfigurationError(
                f"calibrated selectivity must lie in [0, 1], got {self.selectivity}"
            )

    def matches(self, tup) -> bool:
        return self.base.matches(tup)

    def describe(self) -> str:
        return self.base.describe()


@dataclass(frozen=True)
class StreamStatistics:
    """Arrival rates, join factors and selection selectivities of one session.

    Parameters
    ----------
    arrival_rates:
        λ per stream name, tuples per stream-second.
    join_selectivity:
        The join factor S1 of the stream pair (output pairs / candidate
        pairs), or ``None`` when not (yet) measurable — consumers then fall
        back to the join condition's declared estimate.
    selection_selectivities:
        ``{query name: (left Sσ, right Sσ)}`` for queries carrying
        selections.  Sides without a measured value use ``None``.
    left_stream / right_stream:
        Names of the stream pair the statistics describe.
    sample_arrivals:
        Arrivals backing the estimate (0 marks a declared prior).
    window:
        Stream-seconds spanned by the estimation window (0 for priors).
    """

    arrival_rates: Mapping[str, float] = field(default_factory=dict)
    join_selectivity: float | None = None
    selection_selectivities: Mapping[str, tuple[float | None, float | None]] = field(
        default_factory=dict
    )
    left_stream: str = "A"
    right_stream: str = "B"
    sample_arrivals: int = 0
    window: float = 0.0

    def __post_init__(self) -> None:
        for stream, rate in self.arrival_rates.items():
            if rate <= 0:
                raise ConfigurationError(
                    f"arrival rate of stream {stream!r} must be positive, got {rate}"
                )
        if self.join_selectivity is not None and not 0.0 <= self.join_selectivity <= 1.0:
            raise ConfigurationError(
                f"join selectivity must lie in [0, 1], got {self.join_selectivity}"
            )

    # -- constructors ---------------------------------------------------------
    @classmethod
    def from_workload(
        cls,
        workload: QueryWorkload,
        arrival_rate_left: float,
        arrival_rate_right: float | None = None,
    ) -> "StreamStatistics":
        """The declared prior: configured rates plus per-predicate estimates."""
        if arrival_rate_right is None:
            arrival_rate_right = arrival_rate_left
        selections: dict[str, tuple[float | None, float | None]] = {}
        for query in workload:
            left = (
                query.left_filter.selectivity
                if not isinstance(query.left_filter, TruePredicate)
                else None
            )
            right = (
                query.right_filter.selectivity
                if not isinstance(query.right_filter, TruePredicate)
                else None
            )
            if left is not None or right is not None:
                selections[query.name] = (left, right)
        return cls(
            arrival_rates={
                workload.left_stream: float(arrival_rate_left),
                workload.right_stream: float(arrival_rate_right),
            },
            join_selectivity=workload.join_condition.selectivity,
            selection_selectivities=selections,
            left_stream=workload.left_stream,
            right_stream=workload.right_stream,
        )

    @classmethod
    def from_metrics_window(
        cls,
        before: MetricsSnapshot,
        after: MetricsSnapshot,
        left_stream: str = "A",
        right_stream: str = "B",
    ) -> "StreamStatistics":
        """Estimate statistics from the counter deltas of one stream window.

        ``before``/``after`` are two
        :meth:`~repro.engine.metrics.MetricsCollector.snapshot` values taken
        around the window; nothing is reset in between.  Quantities without
        enough evidence in the window (zero elapsed time, zero opportunities,
        zero filter evaluations) are simply omitted from the estimate.
        """
        return cls.from_metrics_delta(
            after.diff(before), left_stream=left_stream, right_stream=right_stream
        )

    @classmethod
    def from_metrics_delta(
        cls,
        delta: MetricsSnapshot,
        left_stream: str = "A",
        right_stream: str = "B",
    ) -> "StreamStatistics":
        """Estimate statistics from an already-computed counter delta.

        ``delta`` is a :meth:`~repro.engine.metrics.MetricsSnapshot.diff`
        window — or several such windows folded together with
        :meth:`~repro.engine.metrics.MetricsSnapshot.aggregate`, which is how
        a sharded session merges its per-shard observations into one global
        estimate (all shards share the stream clock, so the aggregated
        ``time.elapsed`` stays the window span while the counters sum).
        """
        elapsed = delta.get("time.elapsed", 0.0)
        rates: dict[str, float] = {}
        if elapsed > 0:
            for stream in (left_stream, right_stream):
                ingested = delta.get(f"ingested.{stream}", 0.0)
                if ingested > 0:
                    rates[stream] = ingested / elapsed
        opportunities = delta.get(f"observations.{OBS_CHAIN_OPPORTUNITIES}", 0.0)
        matches = delta.get(f"observations.{OBS_CHAIN_MATCHES}", 0.0)
        join_selectivity = (
            min(1.0, matches / opportunities) if opportunities > 0 else None
        )
        selections: dict[str, tuple[float | None, float | None]] = {}
        prefix = "observations.filter."
        for key, value in delta.items():
            if not key.startswith(prefix) or not key.endswith(".seen"):
                continue
            query_and_side = key[len(prefix) : -len(".seen")]
            query, _, side = query_and_side.rpartition(".")
            if not query or value <= 0:
                continue
            passed = delta.get(f"{prefix}{query}.{side}.pass", 0.0)
            selectivity = min(1.0, passed / value)
            left, right = selections.get(query, (None, None))
            if side == "left":
                left = selectivity
            elif side == "right":
                right = selectivity
            else:
                continue
            selections[query] = (left, right)
        return cls(
            arrival_rates=rates,
            join_selectivity=join_selectivity,
            selection_selectivities=selections,
            left_stream=left_stream,
            right_stream=right_stream,
            sample_arrivals=int(delta.get("ingested.total", 0.0)),
            window=max(0.0, elapsed),
        )

    @classmethod
    def from_shard_windows(
        cls,
        windows: "Sequence[tuple[MetricsSnapshot, MetricsSnapshot]]",
        left_stream: str = "A",
        right_stream: str = "B",
    ) -> "StreamStatistics":
        """One global estimate from per-shard ``(before, after)`` snapshots.

        The per-shard diffs are aggregated (counters summed, time axis
        max'ed — see :meth:`MetricsSnapshot.aggregate`) before estimation, so
        arrival rates, the join factor and selection selectivities describe
        the whole partitioned session: this is the merged view a
        :class:`~repro.runtime.sharding.ShardPlanner` consumes.
        """
        if not windows:
            raise ConfigurationError("from_shard_windows needs at least one window")
        merged = MetricsSnapshot.aggregate(
            after.diff(before) for before, after in windows
        )
        return cls.from_metrics_delta(
            merged, left_stream=left_stream, right_stream=right_stream
        )

    # -- lookups --------------------------------------------------------------
    def rate(self, stream: str, default: float | None = None) -> float:
        """Arrival rate of ``stream``; raises unless a default is supplied."""
        try:
            return self.arrival_rates[stream]
        except KeyError:
            if default is not None:
                return default
            raise ConfigurationError(
                f"no arrival rate measured for stream {stream!r}; "
                f"known streams: {sorted(self.arrival_rates)}"
            ) from None

    def selection_selectivity(
        self, query: str, side: str = "left"
    ) -> float | None:
        """Measured Sσ of one query's selection, or None when unmeasured."""
        pair = self.selection_selectivities.get(query)
        if pair is None:
            return None
        return pair[0] if side == "left" else pair[1]

    @property
    def is_estimate(self) -> bool:
        """True when the statistics come from observation, not declaration."""
        return self.sample_arrivals > 0

    # -- consumers ------------------------------------------------------------
    def chain_parameters(
        self,
        system_overhead: float = 0.5,
        tuple_size: float = 1.0,
        hash_probe: bool = False,
        default_rate: float | None = None,
        memory_budget: float | None = None,
        cold_probe_penalty: float = 0.0,
    ) -> ChainCostParameters:
        """The cost-model parameters this statistics plane implies.

        ``memory_budget`` (KB) and ``cold_probe_penalty`` place the
        hot/cold tier boundary of a memory-budgeted session into the cost
        model; a session-level budget is injected by
        :meth:`repro.runtime.engine.StreamEngine.rebalance` when the caller
        leaves them unset.
        """
        return ChainCostParameters(
            arrival_rate_left=self.rate(self.left_stream, default_rate),
            arrival_rate_right=self.rate(self.right_stream, default_rate),
            system_overhead=system_overhead,
            tuple_size=tuple_size,
            hash_probe=hash_probe,
            join_selectivity=self.join_selectivity,
            memory_budget=memory_budget,
            cold_probe_penalty=cold_probe_penalty,
        )

    def calibrated_workload(self, workload: QueryWorkload) -> QueryWorkload:
        """Re-estimate the workload's predicates with measured selectivities.

        Queries with a measured selection selectivity get their predicate
        wrapped in :class:`CalibratedPredicate`; everything else is kept
        as-is.  The calibrated workload prices identically to the original
        under the analytical cost model *except* that slice selectivities
        reflect what the stream actually does — which is what lets the
        CPU-Opt search react to selectivity drift the declared estimates
        cannot see.
        """
        queries: list[ContinuousQuery] = []
        changed = False
        for query in workload:
            left = self.selection_selectivity(query.name, "left")
            right = self.selection_selectivity(query.name, "right")
            updates: dict[str, Predicate] = {}
            if left is not None and not isinstance(query.left_filter, TruePredicate):
                updates["left_filter"] = CalibratedPredicate(query.left_filter, left)
            if right is not None and not isinstance(query.right_filter, TruePredicate):
                updates["right_filter"] = CalibratedPredicate(query.right_filter, right)
            if updates:
                changed = True
                queries.append(replace(query, **updates))
            else:
                queries.append(query)
        return QueryWorkload(queries) if changed else workload

    def scaled(self, factor: float) -> "StreamStatistics":
        """A copy with every arrival rate multiplied by ``factor``.

        Key-partitioning splits the arrival stream but not its *character*:
        a shard of an evenly partitioned session sees ``1/N`` of each
        stream's rate while the join factor and selection selectivities are
        unchanged (they are ratios, invariant under uniform thinning).  The
        sharded engine uses ``scaled(1/N)`` to price each shard's chain from
        a global estimate.
        """
        if factor <= 0:
            raise ConfigurationError(f"scale factor must be positive, got {factor}")
        return replace(
            self,
            arrival_rates={
                stream: rate * factor for stream, rate in self.arrival_rates.items()
            },
        )

    # -- adaptation -----------------------------------------------------------
    def blend(self, newer: "StreamStatistics", weight: float = 0.5) -> "StreamStatistics":
        """Exponentially-weighted blend of this estimate with a ``newer`` one.

        ``weight`` is the share of the newer estimate.  Quantities only one
        side measured are taken as-is; the result keeps the newer window's
        provenance fields.  The adaptive policy smooths per-window estimates
        this way so single noisy windows cannot masquerade as drift.
        """
        if not 0.0 < weight <= 1.0:
            raise ConfigurationError(f"blend weight must lie in (0, 1], got {weight}")

        def mix(old: float | None, new: float | None) -> float | None:
            if old is None:
                return new
            if new is None:
                return old
            return (1.0 - weight) * old + weight * new

        rates: dict[str, float] = {}
        for stream in set(self.arrival_rates) | set(newer.arrival_rates):
            mixed = mix(self.arrival_rates.get(stream), newer.arrival_rates.get(stream))
            if mixed is not None:
                rates[stream] = mixed
        selections: dict[str, tuple[float | None, float | None]] = {}
        for query in set(self.selection_selectivities) | set(
            newer.selection_selectivities
        ):
            mine = self.selection_selectivities.get(query, (None, None))
            theirs = newer.selection_selectivities.get(query, (None, None))
            selections[query] = (mix(mine[0], theirs[0]), mix(mine[1], theirs[1]))
        return StreamStatistics(
            arrival_rates=rates,
            join_selectivity=mix(self.join_selectivity, newer.join_selectivity),
            selection_selectivities=selections,
            left_stream=newer.left_stream,
            right_stream=newer.right_stream,
            sample_arrivals=newer.sample_arrivals,
            window=newer.window,
        )

    def drift(self, baseline: "StreamStatistics") -> float:
        """Largest relative change of any shared quantity vs ``baseline``.

        Compares arrival rates, the join factor and selection selectivities
        that both statistics carry; quantities only one side measured are
        ignored (no evidence of drift).  Returns 0.0 when nothing is
        comparable.
        """
        worst = 0.0
        for stream, rate in self.arrival_rates.items():
            base = baseline.arrival_rates.get(stream)
            if base:
                worst = max(worst, abs(rate - base) / base)
        if self.join_selectivity is not None and baseline.join_selectivity:
            worst = max(
                worst,
                abs(self.join_selectivity - baseline.join_selectivity)
                / baseline.join_selectivity,
            )
        for query, (left, right) in self.selection_selectivities.items():
            base_pair = baseline.selection_selectivities.get(query)
            if base_pair is None:
                continue
            for mine, theirs in ((left, base_pair[0]), (right, base_pair[1])):
                if mine is not None and theirs:
                    worst = max(worst, abs(mine - theirs) / theirs)
        return worst

    def describe(self) -> str:
        rates = ", ".join(
            f"λ({stream})={rate:.3g}/s"
            for stream, rate in sorted(self.arrival_rates.items())
        )
        parts = [rates or "no rates"]
        if self.join_selectivity is not None:
            parts.append(f"S1={self.join_selectivity:.3g}")
        for query, (left, right) in sorted(self.selection_selectivities.items()):
            sides = []
            if left is not None:
                sides.append(f"L={left:.3g}")
            if right is not None:
                sides.append(f"R={right:.3g}")
            parts.append(f"Sσ({query})={'/'.join(sides)}")
        origin = (
            f"measured over {self.window:.3g}s/{self.sample_arrivals} arrivals"
            if self.is_estimate
            else "declared prior"
        )
        return f"StreamStatistics[{'; '.join(parts)}] ({origin})"
