"""Chain specifications.

A :class:`ChainSpec` is the declarative description of a state-slice chain:
an ordered list of :class:`SliceSpec` intervals covering ``[0, W_max)``
together with the workload they serve.  The Mem-Opt builder produces one
slice per distinct query window (Section 5.1); the CPU-Opt builder may merge
adjacent slices (Section 5.2); the plan builder turns a spec into an
executable :class:`~repro.engine.plan.QueryPlan`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.engine.errors import ChainError
from repro.query.query import ContinuousQuery, QueryWorkload

__all__ = ["SliceSpec", "ChainSpec"]

#: Tolerance used when comparing window boundaries (floats).
_EPSILON = 1e-9


@dataclass(frozen=True)
class SliceSpec:
    """One slice ``[start, end)`` of a chain and the query windows it covers.

    ``covered_windows`` are the distinct query window sizes ``w`` with
    ``start < w <= end`` — the queries whose answers are completed inside
    this slice.  When a slice covers more than one window (a CPU-Opt merge)
    or covers a window strictly smaller than its end, a router is required
    on its output (Figure 13(b) / 16(b)).
    """

    start: float
    end: float
    covered_windows: tuple[float, ...]

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ChainError(f"slice start must be non-negative, got {self.start}")
        if self.end <= self.start:
            raise ChainError(f"slice end must exceed start: [{self.start}, {self.end})")
        for window in self.covered_windows:
            if not (self.start - _EPSILON < window <= self.end + _EPSILON):
                raise ChainError(
                    f"covered window {window} lies outside slice [{self.start}, {self.end})"
                )

    @property
    def length(self) -> float:
        return self.end - self.start

    @property
    def needs_router(self) -> bool:
        """True when some covered window ends strictly inside the slice."""
        return any(window < self.end - _EPSILON for window in self.covered_windows)

    def inner_windows(self) -> tuple[float, ...]:
        """Covered windows that end strictly inside the slice (need a check)."""
        return tuple(w for w in self.covered_windows if w < self.end - _EPSILON)

    def describe(self) -> str:
        covered = ", ".join(f"{w:g}" for w in self.covered_windows)
        return f"[{self.start:g}, {self.end:g}) covering windows {{{covered}}}"


class ChainSpec:
    """A complete chain specification for a query workload."""

    def __init__(self, workload: QueryWorkload, slices: Sequence[SliceSpec]) -> None:
        self.workload = workload
        self.slices = list(slices)
        self._validate()

    # -- validation ----------------------------------------------------------------
    def _validate(self) -> None:
        if not self.slices:
            raise ChainError("a chain requires at least one slice")
        if abs(self.slices[0].start) > _EPSILON:
            raise ChainError(
                f"the first slice must start at 0, got {self.slices[0].start}"
            )
        previous_end = self.slices[0].start
        for slice_spec in self.slices:
            if abs(slice_spec.start - previous_end) > _EPSILON:
                raise ChainError(
                    f"slices must be contiguous: slice {slice_spec.describe()} does not "
                    f"start at previous end {previous_end:g}"
                )
            previous_end = slice_spec.end
        expected_windows = self.workload.window_sizes()
        if abs(previous_end - expected_windows[-1]) > _EPSILON:
            raise ChainError(
                f"the chain must end at the largest query window "
                f"{expected_windows[-1]:g}, got {previous_end:g}"
            )
        covered = sorted(w for s in self.slices for w in s.covered_windows)
        if len(covered) != len(expected_windows) or any(
            abs(a - b) > _EPSILON for a, b in zip(covered, expected_windows)
        ):
            raise ChainError(
                f"chain covers windows {covered} but the workload requires "
                f"{expected_windows}"
            )

    # -- lookups -----------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.slices)

    def __iter__(self) -> Iterator[SliceSpec]:
        return iter(self.slices)

    def boundaries(self) -> list[float]:
        """Chain boundaries including 0 and the largest window."""
        return [self.slices[0].start] + [s.end for s in self.slices]

    def slice_for_window(self, window: float) -> int:
        """Index of the slice that completes a query with ``window``."""
        for index, slice_spec in enumerate(self.slices):
            if any(abs(window - w) <= _EPSILON for w in slice_spec.covered_windows):
                return index
        raise ChainError(f"no slice covers window {window:g}")

    def slices_for_query(self, query: ContinuousQuery) -> list[int]:
        """Indices of all slices whose results feed ``query`` (a chain prefix)."""
        last = self.slice_for_window(query.window)
        return list(range(last + 1))

    def queries_completing_in(self, slice_index: int) -> list[ContinuousQuery]:
        """Queries whose window is covered by slice ``slice_index``."""
        slice_spec = self.slices[slice_index]
        return [
            query
            for query in self.workload
            if any(abs(query.window - w) <= _EPSILON for w in slice_spec.covered_windows)
        ]

    def queries_tapping(self, slice_index: int) -> list[ContinuousQuery]:
        """Queries that consume the output of slice ``slice_index``.

        These are all queries whose window reaches at least this slice —
        i.e. whose own completing slice is this one or a later one.
        """
        start = self.slices[slice_index].start
        return [query for query in self.workload if query.window > start + _EPSILON]

    @property
    def is_memory_optimal(self) -> bool:
        """True when every slice covers exactly one window (the Mem-Opt shape)."""
        return all(len(s.covered_windows) == 1 and not s.needs_router for s in self.slices)

    def describe(self) -> str:
        lines = [f"chain of {len(self.slices)} slices over {len(self.workload)} queries:"]
        for index, slice_spec in enumerate(self.slices):
            completing = [q.name for q in self.queries_completing_in(index)]
            lines.append(
                f"  J{index + 1}: {slice_spec.describe()} -> completes {completing}"
            )
        return "\n".join(lines)
