"""Shared runtime scaffolding of the sliced-join chains.

:class:`SlicedJoinChain` (time windows) and
:class:`~repro.core.count_chain.CountSlicedJoinChain` (count windows) share
almost all of their runtime machinery: pipelined per-tuple and batched
execution, state introspection, and the drain-and-splice migration
primitives of Section 5.3 (merge / append / drop-tail; only *split* differs
structurally — lazy re-purging for time slices, eager rank moves for count
slices — and stays in the subclasses).  :class:`SlicedChainBase` hosts that
shared machinery once; subclasses provide the slice-kind specifics through
a small hook surface:

* ``_coerce_boundaries`` / ``_coerce_boundary`` — validate and type the
  boundary values (floats starting at 0.0 vs strictly increasing ints);
* ``_make_join`` — construct one slice operator for ``[start, end)``;
* ``_join_bounds`` / ``_set_join_end`` — read/extend a join's interval;
* ``_describe_join`` — one slice's display form;
* ``_through_link`` — the pushed-down filter of the queue in front of a
  slice (identity by default; the time chain overrides it, Section 6);
* ``_on_slice_inserted`` / ``_on_slice_removed`` — keep per-link metadata
  (the time chain's filter list) aligned with structural migrations.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Sequence

from repro.engine.errors import MigrationError
from repro.engine.metrics import MetricsCollector
from repro.query.predicates import JoinCondition
from repro.streams.tuples import JoinedTuple, StreamTuple

__all__ = ["SlicedChainBase", "SliceResult"]

#: One result produced by a chain: the slice index and the joined tuple.
SliceResult = tuple[int, JoinedTuple]

_EPSILON = 1e-9


class SlicedChainBase:
    """Common execution, introspection and migration core of sliced chains."""

    def __init__(
        self,
        boundaries: Sequence[float],
        condition: JoinCondition,
        left_stream: str = "A",
        right_stream: str = "B",
        metrics: MetricsCollector | None = None,
        probe: str = "nested_loop",
        columnar: bool | str = "auto",
    ) -> None:
        bounds = self._coerce_boundaries(boundaries)
        self.condition = condition
        self.left_stream = left_stream
        self.right_stream = right_stream
        self.metrics = metrics if metrics is not None else MetricsCollector()
        self.probe = probe
        self.columnar = columnar
        self.joins: list = [
            self._make_join(start, end) for start, end in zip(bounds, bounds[1:])
        ]

    def set_probe(self, probe: str) -> None:
        """Switch every slice's probing strategy in place.

        New slices created by later migrations inherit the new setting;
        existing slices keep their resident state (see the joins'
        ``set_probe``).
        """
        self.probe = probe
        for join in self.joins:
            join.set_probe(probe)

    # -- subclass hooks -------------------------------------------------------
    def _coerce_boundaries(self, boundaries: Sequence[float]) -> list:
        raise NotImplementedError

    def _coerce_boundary(self, boundary: float):
        raise NotImplementedError

    def _make_join(self, start, end):
        raise NotImplementedError

    def _join_bounds(self, join) -> tuple:
        raise NotImplementedError

    def _set_join_end(self, join, end) -> None:
        raise NotImplementedError

    def _describe_join(self, join) -> str:
        start, end = self._join_bounds(join)
        return f"[{start:g},{end:g})"

    def _through_link(self, index: int, items: list) -> list:
        """Run a FIFO run of items through the link in front of slice ``index``.

        The base chain has no pushed-down selections; the time chain
        overrides this with its per-link :class:`StreamFilter` pairs.
        """
        return items

    def _on_slice_inserted(self, index: int) -> None:
        """A slice was inserted at ``index`` (migration bookkeeping hook)."""

    def _on_slice_removed(self, index: int) -> None:
        """The slice at ``index`` was removed (migration bookkeeping hook)."""

    # -- execution ------------------------------------------------------------
    def process(self, tup: StreamTuple) -> list[SliceResult]:
        """Feed one arriving tuple through the whole chain.

        Returns every joined result produced, tagged with the index of the
        slice that produced it.  Tuples must be fed in global timestamp
        order.
        """
        results: list[SliceResult] = []
        port = "left" if tup.stream == self.left_stream else "right"
        pending: deque[tuple[int, tuple[str, Any]]] = deque()
        for entry in self._through_link(0, [tup]):
            for emission in self.joins[0].process(entry, port):
                pending.append((0, emission))
        while pending:
            index, (out_port, item) = pending.popleft()
            if out_port == "output":
                results.append((index, item))
            elif out_port == "next":
                next_index = index + 1
                if next_index < len(self.joins):
                    for passed in self._through_link(next_index, [item]):
                        emissions = self.joins[next_index].process(passed, "chain")
                        for emission in emissions:
                            pending.append((next_index, emission))
            # punctuations are dropped: the chain harness returns results
            # directly instead of routing them through a union operator.
        return results

    def process_batch(self, tuples: Sequence[StreamTuple]) -> list[SliceResult]:
        """Feed a FIFO batch of arrivals through the chain, slice by slice.

        The head join's raw ports are interchangeable (each arrival is
        captured as its male/female reference pair from the tuple's own
        stream), so the whole mixed-stream batch is delivered to it in one
        ``process_batch`` call; later joins consume the propagated
        references on their ``chain`` port.  Results are returned in
        slice-major order: all of slice 0's results for the batch, then
        slice 1's, and so on — the result *set* is identical to per-tuple
        processing, and within one slice results keep arrival order.
        """
        batch: list[Any] = list(tuples)
        results: list[SliceResult] = []
        port = "left"
        for index, join in enumerate(self.joins):
            batch = self._through_link(index, batch)
            if not batch:
                break
            next_batch: list[Any] = []
            # Punctuation construction is suppressed (the chain harness
            # returns results directly instead of routing them through a
            # union operator, so slice punctuations would be dropped here).
            for out_port, item in join.process_batch(batch, port, False):
                if out_port == "output":
                    results.append((index, item))
                elif out_port == "next":
                    next_batch.append(item)
            batch = next_batch
            port = "chain"
        return results

    def process_all(self, tuples: Sequence[StreamTuple]) -> list[SliceResult]:
        """Feed a whole (timestamp-ordered) sequence of tuples."""
        results: list[SliceResult] = []
        for tup in tuples:
            results.extend(self.process(tup))
        return results

    # -- introspection ----------------------------------------------------------
    @property
    def boundaries(self) -> list:
        bounds = [self._join_bounds(self.joins[0])[0]]
        bounds.extend(self._join_bounds(join)[1] for join in self.joins)
        return bounds

    def slice_count(self) -> int:
        return len(self.joins)

    def state_size(self) -> int:
        """Total number of tuples stored across all slices of the chain."""
        return sum(join.state_size() for join in self.joins)

    def state_sizes(self) -> list[int]:
        return [join.state_size() for join in self.joins]

    def memory_bytes(self, tuple_bytes: float) -> tuple[int, int]:
        """(resident, spilled) byte estimate across all slices.

        ``tuple_bytes`` is the caller's per-tuple in-core estimate (the
        engine samples it from the first arrival); slices on the disk tier
        report their segment bytes as spilled and only their tail buffer
        and row metadata as resident.
        """
        resident = 0
        spilled = 0
        for join in self.joins:
            memory = getattr(join, "memory_bytes", None)
            if memory is None:
                resident += int(join.state_size() * tuple_bytes)
            else:
                join_resident, join_spilled = memory(tuple_bytes)
                resident += join_resident
                spilled += join_spilled
        return resident, spilled

    def spilled_slice_count(self) -> int:
        """Number of slices currently living on the disk tier."""
        return sum(
            1
            for join in self.joins
            if getattr(join, "is_spilled", lambda: False)()
        )

    def state_tuples(self, stream: str) -> list[list[StreamTuple]]:
        """Per-slice state contents of one stream (oldest slice last)."""
        return [join.state_tuples(stream) for join in self.joins]

    def head_state_sizes(self) -> tuple[int, int]:
        """(left, right) state occupancy of the head slice.

        The head slice sees the unfiltered stream pair whenever its entry
        link carries no selection, which makes its match/candidate ratio an
        unbiased estimator of the join factor — the quantity the adaptive
        runtime feeds into :class:`repro.core.statistics.StreamStatistics`.
        """
        head = self.joins[0]
        return (
            len(head.state_tuples(self.left_stream)),
            len(head.state_tuples(self.right_stream)),
        )

    def states_are_disjoint(self) -> bool:
        """Check the Lemma 1 property: per-stream slice states never overlap."""
        for stream in (self.left_stream, self.right_stream):
            seen: set[int] = set()
            for join in self.joins:
                for tup in join.state_tuples(stream):
                    if tup.seqno in seen:
                        return False
                    seen.add(tup.seqno)
        return True

    # -- keyed state repartition (live resharding) ------------------------------
    def extract_keyed_state(self, predicate=None) -> list[dict[str, list[StreamTuple]]]:
        """Remove and return the resident tuples matching ``predicate``, per slice.

        Returns one ``{stream: [tuples]}`` map per slice (head slice first);
        ``predicate`` is evaluated on each resident tuple (``None`` extracts
        everything).  Within each list the tuples keep their arrival order
        — the ``(timestamp, seqno)`` order every purge loop relies on.  This
        is the donor half of the repartition primitive behind
        :meth:`repro.runtime.sharding.ShardedStreamEngine.reshard`; the
        receiving half is :meth:`ingest_keyed_state`.
        """
        return [
            {
                stream: join.extract_state(stream, predicate)
                for stream in (self.left_stream, self.right_stream)
            }
            for join in self.joins
        ]

    def ingest_keyed_state(
        self, state: Sequence[dict[str, list[StreamTuple]]]
    ) -> int:
        """Splice extracted per-slice state into this chain's slices.

        ``state`` must have one ``{stream: [tuples]}`` entry per slice of
        this chain (the donor chain must therefore hold the same boundaries
        — the admission fan-out invariant of a sharded session).  Each
        slice merges the incoming tuples with its resident ones in global
        ``(timestamp, seqno)`` order and rebuilds its hash index when
        probing is indexed.  Returns the total number of tuples spliced in.
        """
        if len(state) != len(self.joins):
            raise MigrationError(
                f"keyed state has {len(state)} slice entries, chain has "
                f"{len(self.joins)} slices — repartition requires identical "
                f"boundaries"
            )
        moved = 0
        for join, entry in zip(self.joins, state):
            for stream, tuples in entry.items():
                moved += join.ingest_state(stream, tuples)
        return moved

    # -- online migration (Section 5.3) -----------------------------------------
    def merge_slices(self, index: int) -> None:
        """Merge slice ``index`` with slice ``index + 1``.

        The states of the two slices are concatenated (the later slice holds
        the older tuples, so its state goes first — ``load_state`` also
        rebuilds the hash index when probing is indexed) and the surviving
        join's end boundary is extended, mirroring the merge procedure of
        Section 5.3.  The queue between the two slices is always empty in
        this harness because every arrival is propagated fully.
        """
        if not 0 <= index < len(self.joins) - 1:
            raise MigrationError(
                f"cannot merge slice {index}: it has no successor in the chain"
            )
        keep = self.joins[index]
        absorb = self.joins[index + 1]
        for stream in (self.left_stream, self.right_stream):
            older = absorb.state_tuples(stream)
            newer = keep.state_tuples(stream)
            keep.load_state(stream, older + newer)
        self._set_join_end(keep, self._join_bounds(absorb)[1])
        release = getattr(absorb, "release_spill", None)
        if release is not None:
            release()
        del self.joins[index + 1]
        self._on_slice_removed(index + 1)

    def append_slice(self, end) -> None:
        """Extend the chain with a new empty tail slice ``[old_end, end)``.

        Used when a query with a window larger than the current chain end
        registers at runtime: tuples purged off the old tail (previously
        discarded) now flow into the new slice, so the larger window fills
        naturally from this point on — the new query sees exactly the
        results a fresh chain over the remaining stream suffix would see.
        """
        old_end = self._join_bounds(self.joins[-1])[1]
        end = self._coerce_boundary(end)
        if end <= old_end + 1e-12:
            raise MigrationError(
                f"appended boundary {end:g} must exceed the chain end {old_end:g}"
            )
        self.joins.append(self._make_join(old_end, end))
        self._on_slice_inserted(len(self.joins) - 1)

    def drop_tail_slice(self) -> None:
        """Remove the last slice of the chain, discarding its state.

        Used when the largest-window query deregisters: the tail slice holds
        only tuples too old for every remaining window, so its state can be
        dropped wholesale without touching the rest of the chain.
        """
        if len(self.joins) < 2:
            raise MigrationError("cannot drop the only slice of a chain")
        dropped = self.joins.pop()
        release = getattr(dropped, "release_spill", None)
        if release is not None:
            release()
        self._on_slice_removed(len(self.joins))

    def slice_index_for_boundary(self, boundary) -> int | None:
        """Index of the slice whose *end* equals ``boundary``, if any."""
        boundary = self._coerce_boundary(boundary)
        for index, join in enumerate(self.joins):
            if abs(self._join_bounds(join)[1] - boundary) <= _EPSILON:
                return index
        return None

    def slice_index_containing(self, boundary) -> int | None:
        """Index of the slice with ``start < boundary < end``, if any."""
        boundary = self._coerce_boundary(boundary)
        for index, join in enumerate(self.joins):
            start, end = self._join_bounds(join)
            if start + _EPSILON < boundary < end - _EPSILON:
                return index
        return None

    def describe(self) -> str:
        return " -> ".join(self._describe_join(join) for join in self.joins)
