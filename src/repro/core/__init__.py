"""The paper's contribution: state-slice chains and their optimization."""

from repro.core.chain import SlicedJoinChain
from repro.core.count_chain import CountSlicedJoinChain
from repro.core.cost_model import (
    CostEstimate,
    Savings,
    TwoQuerySettings,
    cpu_savings_vs_pullup_grid,
    cpu_savings_vs_pushdown_grid,
    savings_grid,
    selection_pullup_cost,
    selection_pushdown_cost,
    state_slice_cost,
    state_slice_savings,
)
from repro.core.cpu_opt import (
    brute_force_cpu_opt_chain,
    build_cpu_opt_chain,
    enumerate_chains,
    shortest_path,
)
from repro.core.mem_opt import build_mem_opt_chain
from repro.core.merge_graph import (
    ChainCostParameters,
    MergeGraph,
    SliceCostBreakdown,
    chain_cpu_cost,
    chain_memory_cost,
    slice_cpu_cost,
    slice_memory_cost,
)
from repro.core.plan_builder import build_state_slice_plan
from repro.core.pushdown import (
    ResidualFilters,
    SliceFilters,
    pushed_filters,
    residual_filters,
)
from repro.core.slices import ChainSpec, SliceSpec
from repro.core.statistics import CalibratedPredicate, StreamStatistics

__all__ = [
    "SlicedJoinChain",
    "CountSlicedJoinChain",
    "CalibratedPredicate",
    "StreamStatistics",
    "TwoQuerySettings",
    "CostEstimate",
    "Savings",
    "selection_pullup_cost",
    "selection_pushdown_cost",
    "state_slice_cost",
    "state_slice_savings",
    "savings_grid",
    "cpu_savings_vs_pullup_grid",
    "cpu_savings_vs_pushdown_grid",
    "build_mem_opt_chain",
    "build_cpu_opt_chain",
    "brute_force_cpu_opt_chain",
    "enumerate_chains",
    "shortest_path",
    "ChainCostParameters",
    "MergeGraph",
    "SliceCostBreakdown",
    "chain_cpu_cost",
    "chain_memory_cost",
    "slice_cpu_cost",
    "slice_memory_cost",
    "build_state_slice_plan",
    "pushed_filters",
    "residual_filters",
    "SliceFilters",
    "ResidualFilters",
    "ChainSpec",
    "SliceSpec",
]
