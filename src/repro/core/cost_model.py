"""Analytical cost model (Section 3 and 4.3 of the paper).

For the two-query running example — Q1 = A[W1] ⋈ B[W1] and
Q2 = σ(A[W2]) ⋈ B[W2] with W1 < W2 — the paper derives closed-form state
memory (``Cm``) and CPU (``Cp``) costs of the three sharing strategies:

* Equation 1 — naive sharing with selection pull-up;
* Equation 2 — stream partition with selection push-down;
* Equation 3 — the state-slice chain;
* Equation 4 — the relative savings of state-slicing over the other two,
  which Figure 11 plots over the (ρ = W1/W2, Sσ) plane.

The functions here reproduce those formulas exactly (same term order as the
paper so each component can be inspected), and provide the grids used to
regenerate Figure 11.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.engine.errors import ConfigurationError

__all__ = [
    "TwoQuerySettings",
    "CostEstimate",
    "selection_pullup_cost",
    "selection_pushdown_cost",
    "state_slice_cost",
    "Savings",
    "state_slice_savings",
    "savings_grid",
    "cpu_savings_vs_pullup_grid",
    "cpu_savings_vs_pushdown_grid",
    "two_query_settings_from_statistics",
]


@dataclass(frozen=True)
class TwoQuerySettings:
    """System settings of Table 1 for the two-query analysis.

    Parameters
    ----------
    arrival_rate:
        λ, tuples per second on each input stream (the paper sets
        λA = λB = λ for the analysis).
    window_small / window_large:
        W1 and W2 in seconds, with 0 < W1 < W2.
    tuple_size:
        Mt, tuple size in KB (only scales the memory figures).
    filter_selectivity:
        Sσ, selectivity of the selection σA of Q2.
    join_selectivity:
        S1, join selectivity (output / Cartesian product).
    hash_probe:
        When True every probe term is scaled by S1: a hash-indexed probe
        examines only the matching equi-key bucket (an expected ``S1``
        fraction of the opposite state) instead of the whole state.  The
        paper's equations assume nested loops (the default).
    """

    arrival_rate: float
    window_small: float
    window_large: float
    tuple_size: float = 1.0
    filter_selectivity: float = 0.5
    join_selectivity: float = 0.1
    hash_probe: bool = False

    def __post_init__(self) -> None:
        if self.arrival_rate <= 0:
            raise ConfigurationError("arrival_rate must be positive")
        if not 0 < self.window_small < self.window_large:
            raise ConfigurationError(
                "windows must satisfy 0 < window_small < window_large; got "
                f"{self.window_small}, {self.window_large}"
            )
        if self.tuple_size <= 0:
            raise ConfigurationError("tuple_size must be positive")
        if not 0 < self.filter_selectivity <= 1:
            raise ConfigurationError("filter_selectivity must lie in (0, 1]")
        if not 0 < self.join_selectivity <= 1:
            raise ConfigurationError("join_selectivity must lie in (0, 1]")

    @property
    def window_ratio(self) -> float:
        """ρ = W1 / W2 ∈ (0, 1)."""
        return self.window_small / self.window_large

    @property
    def probe_factor(self) -> float:
        """Fraction of the opposite state a probing tuple examines."""
        return self.join_selectivity if self.hash_probe else 1.0


@dataclass(frozen=True)
class CostEstimate:
    """State memory (KB) and CPU (comparisons per second) of one strategy."""

    strategy: str
    memory: float
    cpu: float
    memory_terms: tuple[float, ...] = ()
    cpu_terms: tuple[float, ...] = ()


def selection_pullup_cost(settings: TwoQuerySettings) -> CostEstimate:
    """Equation 1 — naive sharing with selection pull-up (Figure 3).

    One join with the large window W2 feeds a router that dispatches each
    joined result by timestamp and applies Q2's selection above the join.
    """
    lam = settings.arrival_rate
    w2 = settings.window_large
    mt = settings.tuple_size
    s1 = settings.join_selectivity

    memory_terms = (2 * lam * w2 * mt,)
    cpu_terms = (
        2 * lam * lam * w2 * settings.probe_factor,  # join probing
        2 * lam,                   # cross-purge
        2 * lam * lam * w2 * s1,   # routing (per joined result)
        2 * lam * lam * w2 * s1,   # selection above the join (per joined result)
    )
    return CostEstimate(
        strategy="selection-pullup",
        memory=sum(memory_terms),
        cpu=sum(cpu_terms),
        memory_terms=memory_terms,
        cpu_terms=cpu_terms,
    )


def selection_pushdown_cost(settings: TwoQuerySettings) -> CostEstimate:
    """Equation 2 — stream partition with selection push-down (Figure 4).

    Stream A is split by Q2's predicate; two joins (windows W1 and W2) run
    on the disjoint partitions; a router plus an order-preserving union
    reassemble the per-query answers.
    """
    lam = settings.arrival_rate
    w1 = settings.window_small
    w2 = settings.window_large
    mt = settings.tuple_size
    s_sigma = settings.filter_selectivity
    s1 = settings.join_selectivity

    memory_terms = (
        (2 - s_sigma) * lam * w1 * mt,   # state of join 1 (A tuples failing σ + B)
        (1 + s_sigma) * lam * w2 * mt,   # state of join 2 (A tuples passing σ + B)
    )
    probe_factor = settings.probe_factor
    cpu_terms = (
        lam,                                                  # splitting stream A
        2 * (1 - s_sigma) * lam * lam * w1 * probe_factor,    # probing in join 1
        2 * s_sigma * lam * lam * w2 * probe_factor,          # probing in join 2
        3 * lam,                               # cross-purge
        2 * s_sigma * lam * lam * w2 * s1,     # routing of join-2 results
        2 * lam * lam * w1 * s1,               # union of Q1 results
    )
    return CostEstimate(
        strategy="selection-pushdown",
        memory=sum(memory_terms),
        cpu=sum(cpu_terms),
        memory_terms=memory_terms,
        cpu_terms=cpu_terms,
    )


def state_slice_cost(settings: TwoQuerySettings) -> CostEstimate:
    """Equation 3 — the state-slice chain (Figure 10).

    A chain of two sliced joins [0, W1) and [W1, W2); Q2's selection is
    pushed between the slices (σA) and applied to slice-1 results (σ'A);
    no router is needed because the route is fixed by the plan shape.
    """
    lam = settings.arrival_rate
    w1 = settings.window_small
    w2 = settings.window_large
    mt = settings.tuple_size
    s_sigma = settings.filter_selectivity
    s1 = settings.join_selectivity

    memory_terms = (
        2 * lam * w1 * mt,                       # slice [0, W1): both streams
        (1 + s_sigma) * lam * (w2 - w1) * mt,    # slice [W1, W2): σ(A) + B
    )
    probe_factor = settings.probe_factor
    cpu_terms = (
        2 * lam * lam * w1 * probe_factor,                   # probing in slice 1
        lam,                                     # filter σA between the slices
        2 * lam * lam * s_sigma * (w2 - w1) * probe_factor,  # probing in slice 2
        4 * lam,                                 # cross-purge (two slices)
        2 * lam,                                 # union (punctuation-driven merge)
        2 * lam * lam * s1 * w1,                 # filter σ'A on slice-1 results for Q2
    )
    return CostEstimate(
        strategy="state-slice",
        memory=sum(memory_terms),
        cpu=sum(cpu_terms),
        memory_terms=memory_terms,
        cpu_terms=cpu_terms,
    )


@dataclass(frozen=True)
class Savings:
    """Relative savings of state-slicing (Equation 4)."""

    memory_vs_pullup: float
    memory_vs_pushdown: float
    cpu_vs_pullup: float
    cpu_vs_pushdown: float


def state_slice_savings(settings: TwoQuerySettings) -> Savings:
    """Equation 4 — closed-form savings ratios of state-slicing.

    The paper expresses the savings in terms of ρ = W1/W2, Sσ and S1 (λ is
    omitted because its effect is negligible for two queries); the closed
    forms below are the paper's, and they agree with recomputing the ratios
    from Equations 1-3 directly (a property test checks this).  The closed
    forms assume nested-loop probing; with ``hash_probe`` the ratios are
    recomputed numerically from the (probe-scaled) cost estimates instead.
    """
    if settings.hash_probe:
        pullup = selection_pullup_cost(settings)
        pushdown = selection_pushdown_cost(settings)
        sliced = state_slice_cost(settings)
        return Savings(
            memory_vs_pullup=(pullup.memory - sliced.memory) / pullup.memory,
            memory_vs_pushdown=(pushdown.memory - sliced.memory) / pushdown.memory,
            cpu_vs_pullup=(pullup.cpu - sliced.cpu) / pullup.cpu,
            cpu_vs_pushdown=(pushdown.cpu - sliced.cpu) / pushdown.cpu,
        )
    rho = settings.window_ratio
    s_sigma = settings.filter_selectivity
    s1 = settings.join_selectivity

    memory_vs_pullup = (1 - rho) * (1 - s_sigma) / 2
    memory_vs_pushdown = rho / (1 + 2 * rho + (1 - rho) * s_sigma)
    cpu_vs_pullup = ((1 - rho) * (1 - s_sigma) + (2 - rho) * s1) / (1 + 2 * s1)
    cpu_vs_pushdown = (s_sigma * s1) / (
        rho * (1 - s_sigma) + s_sigma + s_sigma * s1 + rho * s1
    )
    return Savings(
        memory_vs_pullup=memory_vs_pullup,
        memory_vs_pushdown=memory_vs_pushdown,
        cpu_vs_pullup=cpu_vs_pullup,
        cpu_vs_pushdown=cpu_vs_pushdown,
    )


def _grid_settings(
    rho: float,
    s_sigma: float,
    s1: float,
    arrival_rate: float,
    window_large: float,
) -> TwoQuerySettings:
    return TwoQuerySettings(
        arrival_rate=arrival_rate,
        window_small=rho * window_large,
        window_large=window_large,
        filter_selectivity=s_sigma,
        join_selectivity=s1,
    )


def savings_grid(
    rho_values: Iterable[float],
    s_sigma_values: Iterable[float],
    join_selectivity: float = 0.1,
    arrival_rate: float = 50.0,
    window_large: float = 60.0,
) -> list[dict[str, float]]:
    """Savings at every (ρ, Sσ) grid point — the data behind Figure 11.

    Returns one row per grid point with the four savings ratios expressed in
    percent, matching the figure's axes.
    """
    rows = []
    for rho in rho_values:
        for s_sigma in s_sigma_values:
            settings = _grid_settings(
                rho, s_sigma, join_selectivity, arrival_rate, window_large
            )
            savings = state_slice_savings(settings)
            rows.append(
                {
                    "rho": rho,
                    "filter_selectivity": s_sigma,
                    "join_selectivity": join_selectivity,
                    "memory_saving_vs_pullup_pct": 100 * savings.memory_vs_pullup,
                    "memory_saving_vs_pushdown_pct": 100 * savings.memory_vs_pushdown,
                    "cpu_saving_vs_pullup_pct": 100 * savings.cpu_vs_pullup,
                    "cpu_saving_vs_pushdown_pct": 100 * savings.cpu_vs_pushdown,
                }
            )
    return rows


def cpu_savings_vs_pullup_grid(
    rho_values: Iterable[float],
    s_sigma_values: Iterable[float],
    join_selectivities: Iterable[float] = (0.4, 0.1, 0.025),
) -> dict[float, list[dict[str, float]]]:
    """CPU savings vs selection pull-up for each S1 — Figure 11(b)."""
    return {
        s1: savings_grid(rho_values, s_sigma_values, join_selectivity=s1)
        for s1 in join_selectivities
    }


def cpu_savings_vs_pushdown_grid(
    rho_values: Iterable[float],
    s_sigma_values: Iterable[float],
    join_selectivities: Iterable[float] = (0.4, 0.1, 0.025),
) -> dict[float, list[dict[str, float]]]:
    """CPU savings vs selection push-down for each S1 — Figure 11(c)."""
    return {
        s1: savings_grid(rho_values, s_sigma_values, join_selectivity=s1)
        for s1 in join_selectivities
    }


def two_query_settings_from_statistics(
    statistics,
    window_small: float,
    window_large: float,
    tuple_size: float = 1.0,
    hash_probe: bool = False,
) -> TwoQuerySettings:
    """Instantiate the two-query model from a measured statistics plane.

    ``statistics`` is a :class:`repro.core.statistics.StreamStatistics`
    (duck-typed here to keep this module free of upward imports).  The model
    assumes λA = λB, so the two measured rates are averaged; the filter
    selectivity is the measured Sσ of the single filtered query when exactly
    one query carries a (left) selection, else the model default.
    """
    rates = [
        statistics.rate(stream, 0.0)
        for stream in (statistics.left_stream, statistics.right_stream)
    ]
    rates = [rate for rate in rates if rate > 0]
    if not rates:
        raise ConfigurationError(
            "two_query_settings_from_statistics needs at least one measured "
            "arrival rate"
        )
    measured_sigma = [
        pair[0]
        for pair in statistics.selection_selectivities.values()
        if pair[0] is not None
    ]
    kwargs: dict[str, float] = {}
    if len(measured_sigma) == 1:
        kwargs["filter_selectivity"] = measured_sigma[0]
    if statistics.join_selectivity is not None:
        kwargs["join_selectivity"] = statistics.join_selectivity
    return TwoQuerySettings(
        arrival_rate=sum(rates) / len(rates),
        window_small=window_small,
        window_large=window_large,
        tuple_size=tuple_size,
        hash_probe=hash_probe,
        **kwargs,
    )
