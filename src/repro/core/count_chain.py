"""Runtime chain of count-based sliced joins.

Mirror of :class:`repro.core.chain.SlicedJoinChain` for count-based sliding
windows (the extension the paper's Section 2 mentions): the chain boundaries
are tuple *counts* instead of time offsets, each slice stores the tuples of
one contiguous rank range per stream, and the union of the slice outputs
equals the regular count-based join with the largest count window.

The pipelined execution loop and the shared migration primitives (merge /
append / drop-tail) come from
:class:`~repro.core.chain_base.SlicedChainBase`; the one structural
difference lives here: rank boundaries cannot re-partition lazily.  A time
slice whose end window shrinks expels its now-too-old tuples on the next
cross-purge, because age is measured against the probing tuple.  A count
slice's membership is a *rank range*, and ranks only move on same-stream
insertions — a shrunk slice would keep probing tuples whose rank it no
longer covers.  The split migration therefore moves the out-of-range ranks
into the new slice eagerly (and the hash index, when enabled, is rebuilt by
``load_state``), which keeps every probe exact at all times.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.chain_base import SlicedChainBase
from repro.engine.errors import ChainError, MigrationError
from repro.operators.count_join import CountSlicedBinaryJoin
from repro.streams.tuples import JoinedTuple

__all__ = ["CountSlicedJoinChain"]


class CountSlicedJoinChain(SlicedChainBase):
    """A pipelined chain of count-based sliced binary joins.

    Parameters
    ----------
    boundaries:
        Rank boundaries of the chain, for example ``[0, 5, 20]`` for two
        slices holding the 5 most recent tuples and the following 15.
        The first boundary must be 0 and boundaries must strictly increase.
    condition:
        The join condition shared by every slice.
    """

    joins: list[CountSlicedBinaryJoin]

    # -- chain-base hooks -----------------------------------------------------
    def _coerce_boundaries(self, boundaries: Sequence[float]) -> list[int]:
        bounds = [int(b) for b in boundaries]
        if len(bounds) < 2:
            raise ChainError("a chain needs at least two boundaries (one slice)")
        if bounds[0] != 0:
            raise ChainError(f"the first boundary must be 0, got {bounds[0]}")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ChainError(f"boundaries must be strictly increasing, got {bounds}")
        return bounds

    def _coerce_boundary(self, boundary: float) -> int:
        return int(boundary)

    def _make_join(self, start: int, end: int) -> CountSlicedBinaryJoin:
        join = CountSlicedBinaryJoin(
            rank_start=start,
            rank_end=end,
            condition=self.condition,
            left_stream=self.left_stream,
            right_stream=self.right_stream,
            probe=self.probe,
            columnar=self.columnar,
            name=f"count-slice[{start},{end})",
        )
        join.bind_metrics(self.metrics)
        return join

    def _join_bounds(self, join: CountSlicedBinaryJoin) -> tuple[int, int]:
        return join.rank_start, join.rank_end

    def _set_join_end(self, join: CountSlicedBinaryJoin, end: int) -> None:
        join.rank_end = end

    # -- count-window specifics -----------------------------------------------
    def results_for_count(
        self, results: Sequence[tuple[int, JoinedTuple]], count: int
    ) -> list[JoinedTuple]:
        """Restrict chain results to those a query with count window ``count`` gets.

        Only prefix counts matching a chain boundary can be answered exactly
        (the Mem-Opt construction guarantees one boundary per registered
        query); other counts raise :class:`ChainError`.
        """
        boundaries = self.boundaries
        if count not in boundaries[1:]:
            raise ChainError(
                f"count {count} is not a chain boundary; boundaries: {boundaries}"
            )
        last_slice = boundaries[1:].index(count)
        return [joined for index, joined in results if index <= last_slice]

    def split_slice(self, index: int, boundary: int) -> None:
        """Split slice ``index`` at rank ``boundary`` into two adjacent slices.

        Unlike the time-based split, the out-of-range ranks are moved into
        the new slice eagerly (see the module docstring): each state keeps
        its newest ``boundary - rank_start`` tuples and hands the older
        remainder — exactly the ranks ``[boundary, rank_end)`` — to the new
        slice, so the membership invariant every probe relies on keeps
        holding.
        """
        if not 0 <= index < len(self.joins):
            raise MigrationError(f"no slice with index {index}")
        join = self.joins[index]
        boundary = int(boundary)
        if not join.rank_start < boundary < join.rank_end:
            raise MigrationError(
                f"split boundary {boundary} must lie strictly inside "
                f"[{join.rank_start}, {join.rank_end})"
            )
        new_join = self._make_join(boundary, join.rank_end)
        keep_capacity = boundary - join.rank_start
        for stream in (self.left_stream, self.right_stream):
            state = join.state_tuples(stream)  # oldest first
            overflow = len(state) - keep_capacity
            if overflow > 0:
                new_join.load_state(stream, state[:overflow])
                join.load_state(stream, state[overflow:])
        join.rank_end = boundary
        self.joins.insert(index + 1, new_join)
        self._on_slice_inserted(index + 1)
