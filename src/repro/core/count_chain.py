"""Runtime chain of count-based sliced joins.

Mirror of :class:`repro.core.chain.SlicedJoinChain` for count-based sliding
windows (the extension the paper's Section 2 mentions): the chain boundaries
are tuple *counts* instead of time offsets, each slice stores the tuples of
one contiguous rank range per stream, and the union of the slice outputs
equals the regular count-based join with the largest count window.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

from repro.engine.errors import ChainError
from repro.engine.metrics import MetricsCollector
from repro.operators.count_join import CountSlicedBinaryJoin
from repro.query.predicates import JoinCondition
from repro.streams.tuples import JoinedTuple, StreamTuple

__all__ = ["CountSlicedJoinChain"]


class CountSlicedJoinChain:
    """A pipelined chain of count-based sliced binary joins.

    Parameters
    ----------
    boundaries:
        Rank boundaries of the chain, for example ``[0, 5, 20]`` for two
        slices holding the 5 most recent tuples and the following 15.
        The first boundary must be 0 and boundaries must strictly increase.
    condition:
        The join condition shared by every slice.
    """

    def __init__(
        self,
        boundaries: Sequence[int],
        condition: JoinCondition,
        left_stream: str = "A",
        right_stream: str = "B",
        metrics: MetricsCollector | None = None,
    ) -> None:
        bounds = [int(b) for b in boundaries]
        if len(bounds) < 2:
            raise ChainError("a chain needs at least two boundaries (one slice)")
        if bounds[0] != 0:
            raise ChainError(f"the first boundary must be 0, got {bounds[0]}")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ChainError(f"boundaries must be strictly increasing, got {bounds}")
        self.condition = condition
        self.left_stream = left_stream
        self.right_stream = right_stream
        self.metrics = metrics if metrics is not None else MetricsCollector()
        self.joins: list[CountSlicedBinaryJoin] = []
        for start, end in zip(bounds, bounds[1:]):
            join = CountSlicedBinaryJoin(
                rank_start=start,
                rank_end=end,
                condition=condition,
                left_stream=left_stream,
                right_stream=right_stream,
                name=f"count-slice[{start},{end})",
            )
            join.bind_metrics(self.metrics)
            self.joins.append(join)

    # -- execution -----------------------------------------------------------------
    def process(self, tup: StreamTuple) -> list[tuple[int, JoinedTuple]]:
        """Feed one arriving tuple through the whole chain."""
        results: list[tuple[int, JoinedTuple]] = []
        port = "left" if tup.stream == self.left_stream else "right"
        pending: deque[tuple[int, tuple[str, object]]] = deque()
        for emission in self.joins[0].process(tup, port):
            pending.append((0, emission))
        while pending:
            index, (out_port, item) = pending.popleft()
            if out_port == "output":
                results.append((index, item))
            elif out_port == "next":
                next_index = index + 1
                if next_index < len(self.joins):
                    for emission in self.joins[next_index].process(item, "chain"):
                        pending.append((next_index, emission))
        return results

    def process_all(self, tuples: Sequence[StreamTuple]) -> list[tuple[int, JoinedTuple]]:
        results: list[tuple[int, JoinedTuple]] = []
        for tup in tuples:
            results.extend(self.process(tup))
        return results

    def results_for_count(
        self, results: Sequence[tuple[int, JoinedTuple]], count: int
    ) -> list[JoinedTuple]:
        """Restrict chain results to those a query with count window ``count`` gets.

        Only prefix counts matching a chain boundary can be answered exactly
        (the Mem-Opt construction guarantees one boundary per registered
        query); other counts raise :class:`ChainError`.
        """
        boundaries = self.boundaries
        if count not in boundaries[1:]:
            raise ChainError(
                f"count {count} is not a chain boundary; boundaries: {boundaries}"
            )
        last_slice = boundaries[1:].index(count)
        return [joined for index, joined in results if index <= last_slice]

    # -- introspection -------------------------------------------------------------
    @property
    def boundaries(self) -> list[int]:
        bounds = [self.joins[0].rank_start]
        bounds.extend(join.rank_end for join in self.joins)
        return bounds

    def state_size(self) -> int:
        return sum(join.state_size() for join in self.joins)

    def states_are_disjoint(self) -> bool:
        for stream in (self.left_stream, self.right_stream):
            seen: set[int] = set()
            for join in self.joins:
                for tup in join.state_tuples(stream):
                    if tup.seqno in seen:
                        return False
                    seen.add(tup.seqno)
        return True

    def describe(self) -> str:
        return " -> ".join(
            f"[{join.rank_start},{join.rank_end})" for join in self.joins
        )
