"""Runtime chain of count-based sliced joins.

Mirror of :class:`repro.core.chain.SlicedJoinChain` for count-based sliding
windows (the extension the paper's Section 2 mentions): the chain boundaries
are tuple *counts* instead of time offsets, each slice stores the tuples of
one contiguous rank range per stream, and the union of the slice outputs
equals the regular count-based join with the largest count window.

The chain supports the same online migration primitives as the time-based
chain (split / merge / append / drop-tail), with one structural difference:
rank boundaries cannot re-partition lazily.  A time slice whose end window
shrinks expels its now-too-old tuples on the next cross-purge, because age
is measured against the probing tuple.  A count slice's membership is a
*rank range*, and ranks only move on same-stream insertions — a shrunk
slice would keep probing tuples whose rank it no longer covers.  The split
migration therefore moves the out-of-range ranks into the new slice
eagerly (and the hash index, when enabled, is rebuilt by ``load_state``),
which keeps every probe exact at all times.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

from repro.engine.errors import ChainError, MigrationError
from repro.engine.metrics import MetricsCollector
from repro.operators.count_join import CountSlicedBinaryJoin
from repro.query.predicates import JoinCondition
from repro.streams.tuples import JoinedTuple, StreamTuple

__all__ = ["CountSlicedJoinChain"]


class CountSlicedJoinChain:
    """A pipelined chain of count-based sliced binary joins.

    Parameters
    ----------
    boundaries:
        Rank boundaries of the chain, for example ``[0, 5, 20]`` for two
        slices holding the 5 most recent tuples and the following 15.
        The first boundary must be 0 and boundaries must strictly increase.
    condition:
        The join condition shared by every slice.
    """

    def __init__(
        self,
        boundaries: Sequence[int],
        condition: JoinCondition,
        left_stream: str = "A",
        right_stream: str = "B",
        metrics: MetricsCollector | None = None,
        probe: str = "nested_loop",
    ) -> None:
        bounds = [int(b) for b in boundaries]
        if len(bounds) < 2:
            raise ChainError("a chain needs at least two boundaries (one slice)")
        if bounds[0] != 0:
            raise ChainError(f"the first boundary must be 0, got {bounds[0]}")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ChainError(f"boundaries must be strictly increasing, got {bounds}")
        self.condition = condition
        self.left_stream = left_stream
        self.right_stream = right_stream
        self.metrics = metrics if metrics is not None else MetricsCollector()
        self.probe = probe
        self.joins: list[CountSlicedBinaryJoin] = []
        for start, end in zip(bounds, bounds[1:]):
            self.joins.append(self._make_join(start, end))

    def _make_join(self, start: int, end: int) -> CountSlicedBinaryJoin:
        join = CountSlicedBinaryJoin(
            rank_start=start,
            rank_end=end,
            condition=self.condition,
            left_stream=self.left_stream,
            right_stream=self.right_stream,
            probe=self.probe,
            name=f"count-slice[{start},{end})",
        )
        join.bind_metrics(self.metrics)
        return join

    # -- execution -----------------------------------------------------------------
    def process(self, tup: StreamTuple) -> list[tuple[int, JoinedTuple]]:
        """Feed one arriving tuple through the whole chain."""
        results: list[tuple[int, JoinedTuple]] = []
        port = "left" if tup.stream == self.left_stream else "right"
        pending: deque[tuple[int, tuple[str, object]]] = deque()
        for emission in self.joins[0].process(tup, port):
            pending.append((0, emission))
        while pending:
            index, (out_port, item) = pending.popleft()
            if out_port == "output":
                results.append((index, item))
            elif out_port == "next":
                next_index = index + 1
                if next_index < len(self.joins):
                    for emission in self.joins[next_index].process(item, "chain"):
                        pending.append((next_index, emission))
        return results

    def process_batch(
        self, tuples: Sequence[StreamTuple]
    ) -> list[tuple[int, JoinedTuple]]:
        """Feed a FIFO batch of arrivals through the chain, slice by slice.

        Mirrors :meth:`repro.core.chain.SlicedJoinChain.process_batch`: the
        head join's raw ports are interchangeable, so the whole mixed-stream
        batch is delivered to it in one call; later joins consume the
        propagated references on their ``chain`` port.  The result *set* is
        identical to per-tuple processing.
        """
        batch: list[object] = list(tuples)
        results: list[tuple[int, JoinedTuple]] = []
        port = "left"
        for index, join in enumerate(self.joins):
            if not batch:
                break
            next_batch: list[object] = []
            for out_port, item in join.process_batch(batch, port):
                if out_port == "output":
                    results.append((index, item))
                elif out_port == "next":
                    next_batch.append(item)
            batch = next_batch
            port = "chain"
        return results

    def process_all(self, tuples: Sequence[StreamTuple]) -> list[tuple[int, JoinedTuple]]:
        results: list[tuple[int, JoinedTuple]] = []
        for tup in tuples:
            results.extend(self.process(tup))
        return results

    def results_for_count(
        self, results: Sequence[tuple[int, JoinedTuple]], count: int
    ) -> list[JoinedTuple]:
        """Restrict chain results to those a query with count window ``count`` gets.

        Only prefix counts matching a chain boundary can be answered exactly
        (the Mem-Opt construction guarantees one boundary per registered
        query); other counts raise :class:`ChainError`.
        """
        boundaries = self.boundaries
        if count not in boundaries[1:]:
            raise ChainError(
                f"count {count} is not a chain boundary; boundaries: {boundaries}"
            )
        last_slice = boundaries[1:].index(count)
        return [joined for index, joined in results if index <= last_slice]

    # -- introspection -------------------------------------------------------------
    @property
    def boundaries(self) -> list[int]:
        bounds = [self.joins[0].rank_start]
        bounds.extend(join.rank_end for join in self.joins)
        return bounds

    def state_size(self) -> int:
        return sum(join.state_size() for join in self.joins)

    def states_are_disjoint(self) -> bool:
        for stream in (self.left_stream, self.right_stream):
            seen: set[int] = set()
            for join in self.joins:
                for tup in join.state_tuples(stream):
                    if tup.seqno in seen:
                        return False
                    seen.add(tup.seqno)
        return True

    def state_tuples(self, stream: str) -> list[list[StreamTuple]]:
        """Per-slice state contents of one stream (oldest slice last)."""
        return [join.state_tuples(stream) for join in self.joins]

    def slice_count(self) -> int:
        return len(self.joins)

    # -- online migration (count-based analogue of Section 5.3) ---------------------
    def split_slice(self, index: int, boundary: int) -> None:
        """Split slice ``index`` at rank ``boundary`` into two adjacent slices.

        Unlike the time-based split, the out-of-range ranks are moved into
        the new slice eagerly (see the module docstring): each state keeps
        its newest ``boundary - rank_start`` tuples and hands the older
        remainder — exactly the ranks ``[boundary, rank_end)`` — to the new
        slice, so the membership invariant every probe relies on keeps
        holding.
        """
        if not 0 <= index < len(self.joins):
            raise MigrationError(f"no slice with index {index}")
        join = self.joins[index]
        boundary = int(boundary)
        if not join.rank_start < boundary < join.rank_end:
            raise MigrationError(
                f"split boundary {boundary} must lie strictly inside "
                f"[{join.rank_start}, {join.rank_end})"
            )
        new_join = self._make_join(boundary, join.rank_end)
        keep_capacity = boundary - join.rank_start
        for stream in (self.left_stream, self.right_stream):
            state = join.state_tuples(stream)  # oldest first
            overflow = len(state) - keep_capacity
            if overflow > 0:
                new_join.load_state(stream, state[:overflow])
                join.load_state(stream, state[overflow:])
        join.rank_end = boundary
        self.joins.insert(index + 1, new_join)

    def merge_slices(self, index: int) -> None:
        """Merge slice ``index`` with slice ``index + 1``.

        The states concatenate (the later slice holds the older ranks, so
        its tuples go first) and the surviving join's rank range extends.
        """
        if not 0 <= index < len(self.joins) - 1:
            raise MigrationError(
                f"cannot merge slice {index}: it has no successor in the chain"
            )
        keep = self.joins[index]
        absorb = self.joins[index + 1]
        for stream in (self.left_stream, self.right_stream):
            keep.load_state(
                stream, absorb.state_tuples(stream) + keep.state_tuples(stream)
            )
        keep.rank_end = absorb.rank_end
        del self.joins[index + 1]

    def append_slice(self, end: int) -> None:
        """Extend the chain with a new empty tail slice ``[old_end, end)``.

        Tuples evicted off the old tail (previously discarded) now flow into
        the new slice, so a larger count window registered at runtime fills
        naturally from this point on.
        """
        old_end = self.joins[-1].rank_end
        end = int(end)
        if end <= old_end:
            raise MigrationError(
                f"appended boundary {end} must exceed the chain end {old_end}"
            )
        self.joins.append(self._make_join(old_end, end))

    def drop_tail_slice(self) -> None:
        """Remove the last slice of the chain, discarding its state."""
        if len(self.joins) < 2:
            raise MigrationError("cannot drop the only slice of a chain")
        self.joins.pop()

    def slice_index_for_boundary(self, boundary: int) -> int | None:
        """Index of the slice whose *end* equals ``boundary``, if any."""
        for index, join in enumerate(self.joins):
            if join.rank_end == int(boundary):
                return index
        return None

    def slice_index_containing(self, boundary: int) -> int | None:
        """Index of the slice with ``rank_start < boundary < rank_end``, if any."""
        for index, join in enumerate(self.joins):
            if join.rank_start < int(boundary) < join.rank_end:
                return index
        return None

    def describe(self) -> str:
        return " -> ".join(
            f"[{join.rank_start},{join.rank_end})" for join in self.joins
        )
