"""CPU-optimal chain construction (Sections 5.2 and 6.2).

The CPU-Opt chain is found by a shortest-path computation over the merge
graph: node ``i`` is the window boundary ``w_i``, edge ``i → j`` is a merged
slice ``[w_i, w_j)`` whose length is its analytical CPU cost, and any path
from node 0 to node N is a valid chain.  Because edge costs are mutually
independent (Lemma 2), Dijkstra's algorithm yields the optimal chain in
O(N²) including edge-cost evaluation — the complexity the paper states.

A brute-force optimizer over all 2^(N-1) boundary subsets is also provided;
it is exponential and only used by tests to certify optimality.
"""

from __future__ import annotations

import heapq
from dataclasses import replace
from itertools import combinations
from typing import Sequence

from repro.core.merge_graph import ChainCostParameters, MergeGraph
from repro.core.slices import ChainSpec
from repro.core.statistics import StreamStatistics
from repro.engine.errors import ChainError
from repro.query.query import QueryWorkload

__all__ = [
    "shortest_path",
    "apply_statistics",
    "build_cpu_opt_chain",
    "brute_force_cpu_opt_chain",
    "enumerate_chains",
]


def apply_statistics(
    workload: QueryWorkload,
    params: ChainCostParameters | None,
    statistics: StreamStatistics | None,
) -> tuple[QueryWorkload, ChainCostParameters]:
    """Fold a statistics plane into a (workload, parameters) pair.

    Measured arrival rates and the measured join factor replace the
    corresponding parameter fields (hand-set overhead/tuple-size/probe kind
    are kept), and the workload's predicates are recalibrated to the
    measured selection selectivities.  With ``statistics=None`` this is the
    identity on the declared inputs — the static planning path.
    """
    if statistics is None:
        return workload, params or ChainCostParameters()
    workload = statistics.calibrated_workload(workload)
    if params is None:
        params = statistics.chain_parameters()
    else:
        params = replace(
            params,
            arrival_rate_left=statistics.rate(
                statistics.left_stream, params.arrival_rate_left
            ),
            arrival_rate_right=statistics.rate(
                statistics.right_stream, params.arrival_rate_right
            ),
            join_selectivity=(
                statistics.join_selectivity
                if statistics.join_selectivity is not None
                else params.join_selectivity
            ),
        )
    return workload, params


def shortest_path(graph: MergeGraph) -> list[int]:
    """Dijkstra's algorithm over the merge graph; returns the node path.

    The graph is a complete DAG over nodes ``0..N`` with edges only from
    lower to higher indices, so Dijkstra terminates after settling each node
    once; ties are broken toward fewer slices (shorter paths), then toward
    lexicographically smaller paths, to make the result deterministic.
    """
    n = graph.node_count
    target = n - 1
    # (cost, hops, path) priority queue.
    frontier: list[tuple[float, int, tuple[int, ...]]] = [(0.0, 0, (0,))]
    best: dict[int, float] = {}
    while frontier:
        cost, hops, path = heapq.heappop(frontier)
        node = path[-1]
        if node == target:
            return list(path)
        if node in best and best[node] <= cost:
            continue
        best[node] = cost
        for nxt in range(node + 1, n):
            edge = graph.edge_cost(node, nxt)
            heapq.heappush(frontier, (cost + edge, hops + 1, path + (nxt,)))
    raise ChainError("merge graph has no path from source to target")


def build_cpu_opt_chain(
    workload: QueryWorkload,
    params: ChainCostParameters | None = None,
    statistics: StreamStatistics | None = None,
) -> ChainSpec:
    """Build the CPU-optimal chain for a workload.

    ``params`` supplies the arrival rates and the system overhead factor
    ``Csys`` that drive the merge/no-merge trade-off; the defaults of
    :class:`ChainCostParameters` match the paper's moderate settings.
    ``statistics`` (a :class:`~repro.core.statistics.StreamStatistics`)
    overrides the declared rates/selectivities with measured ones — the
    path the adaptive runtime takes.
    """
    workload, params = apply_statistics(workload, params, statistics)
    graph = MergeGraph(workload, params)
    path = shortest_path(graph)
    return graph.chain_from_path(path)


def enumerate_chains(workload: QueryWorkload, params: ChainCostParameters) -> list[ChainSpec]:
    """Every valid chain for the workload (all subsets of interior boundaries).

    With N distinct windows there are 2^(N-1) chains; this is exponential and
    intended for tests and ablation studies on small N only.
    """
    graph = MergeGraph(workload, params)
    n = graph.node_count
    interior = list(range(1, n - 1))
    chains = []
    for size in range(len(interior) + 1):
        for kept in combinations(interior, size):
            path = [0, *kept, n - 1]
            chains.append(graph.chain_from_path(path))
    return chains


def brute_force_cpu_opt_chain(
    workload: QueryWorkload,
    params: ChainCostParameters | None = None,
    statistics: StreamStatistics | None = None,
) -> ChainSpec:
    """Exhaustive CPU-Opt search; certifies :func:`build_cpu_opt_chain` in tests."""
    workload, params = apply_statistics(workload, params, statistics)
    graph = MergeGraph(workload, params)
    n = graph.node_count
    interior = list(range(1, n - 1))
    best_path: Sequence[int] | None = None
    best_cost = float("inf")
    for size in range(len(interior) + 1):
        for kept in combinations(interior, size):
            path = [0, *kept, n - 1]
            cost = graph.path_cost(path)
            if cost < best_cost - 1e-12:
                best_cost = cost
                best_path = path
    if best_path is None:
        raise ChainError("no chain could be enumerated")
    return graph.chain_from_path(best_path)
