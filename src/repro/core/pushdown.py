"""Selection push-down into the chain (Section 6).

Two kinds of predicates appear in a shared state-slice plan with selections:

* the **pushed-down filter** ``σ'_i`` installed on the chain queue in front
  of slice ``i``: the disjunction of the selection predicates of every
  query whose window reaches that slice.  A tuple failing it can never
  contribute to any downstream answer, so it is dropped from the chain —
  this is what keeps the Mem-Opt chain memory-minimal (Theorem 4);

* the **residual filter** applied to the joined results a particular query
  taps from a particular slice: the query's own predicate, needed whenever
  it is stronger than the filter already pushed below that slice (for
  example Q2's σ'A over the results of the first slice in Figure 10).

Both are derived here from the workload and a chain specification.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.slices import ChainSpec, SliceSpec
from repro.query.predicates import Predicate, TruePredicate
from repro.query.query import ContinuousQuery, QueryWorkload

__all__ = [
    "pushed_filters",
    "residual_filters",
    "residual_predicate",
    "SliceFilters",
    "ResidualFilters",
]


@dataclass(frozen=True)
class SliceFilters:
    """Predicates pushed below one slice, per input side."""

    left: Predicate
    right: Predicate

    @property
    def is_trivial(self) -> bool:
        return isinstance(self.left, TruePredicate) and isinstance(
            self.right, TruePredicate
        )


@dataclass(frozen=True)
class ResidualFilters:
    """Residual predicates one query applies to one slice's results."""

    left: Predicate
    right: Predicate

    @property
    def is_trivial(self) -> bool:
        return isinstance(self.left, TruePredicate) and isinstance(
            self.right, TruePredicate
        )


def pushed_filters(workload: QueryWorkload, slice_spec: SliceSpec) -> SliceFilters:
    """The σ' predicates that may sit in front of ``slice_spec``.

    A tuple needs to enter the slice only if at least one query whose window
    exceeds the slice start would accept it, so the pushed filter is the
    disjunction of those queries' predicates (Section 6.1).
    """
    return SliceFilters(
        left=workload.slice_filter(slice_spec.start, side="left"),
        right=workload.slice_filter(slice_spec.start, side="right"),
    )


def residual_predicate(query_filter: Predicate, pushed: Predicate) -> Predicate:
    """The filter a query must still apply given what was already pushed down.

    When the pushed predicate is exactly the query's own predicate the
    residual is trivially true (no re-evaluation needed); otherwise the
    query's predicate is re-applied.  Structural equality is approximated by
    comparing the describe() forms, which is exact for predicates built from
    the same workload objects.  Shared by the static plan builder and the
    runtime engine's per-slice result routing.
    """
    if isinstance(query_filter, TruePredicate):
        return TruePredicate()
    if query_filter.describe() == pushed.describe():
        return TruePredicate()
    return query_filter


def residual_filters(
    workload: QueryWorkload,
    chain: ChainSpec,
    query: ContinuousQuery,
    slice_index: int,
) -> ResidualFilters:
    """Residual predicates ``query`` applies to results of slice ``slice_index``."""
    slice_spec = chain.slices[slice_index]
    pushed = pushed_filters(workload, slice_spec)
    return ResidualFilters(
        left=residual_predicate(query.left_filter, pushed.left),
        right=residual_predicate(query.right_filter, pushed.right),
    )
