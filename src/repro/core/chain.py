"""Runtime chain of sliced binary joins.

:class:`SlicedJoinChain` is a lightweight runtime harness that manages a
chain of :class:`~repro.operators.sliced_join.SlicedBinaryJoin` operators
directly — without building a full query plan.  It is the most convenient
entry point for:

* verifying the equivalence theorems (Theorems 1-3) against a regular
  window join,
* inspecting the per-slice states (disjointness, Lemma 1),
* exercising the online migration primitives of Section 5.3 — splitting a
  slice into two and merging two adjacent slices while the stream is
  running.

The chain also carries the *pushed-down selections* of Section 6: each link
(the queue in front of a slice, including the chain entry) can hold one
:class:`~repro.operators.selection.StreamFilter` per stream, installed via
:meth:`SlicedJoinChain.set_link_filters`.  A tuple failing the filter of a
link never enters the slices behind it, which is what keeps the shared
chain memory-minimal when queries carry selection predicates (Theorem 4).

For shared multi-query execution with selections, routers and unions over a
*static* workload, use :func:`repro.core.plan_builder.build_state_slice_plan`,
which assembles a full :class:`~repro.engine.plan.QueryPlan` from the same
building blocks; the chain-level filters exist for the runtime layer, where
the filter placement must be re-derived after every online migration.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

from repro.engine.errors import ChainError, MigrationError
from repro.engine.metrics import MetricsCollector
from repro.operators.selection import StreamFilter
from repro.operators.sliced_join import SlicedBinaryJoin
from repro.query.predicates import JoinCondition, Predicate, TruePredicate
from repro.streams.tuples import JoinedTuple, StreamTuple

__all__ = ["SlicedJoinChain", "SliceResult"]

#: One result produced by the chain: the slice index and the joined tuple.
SliceResult = tuple[int, JoinedTuple]


class SlicedJoinChain:
    """A pipelined chain of sliced binary window joins (Definition 2).

    Parameters
    ----------
    boundaries:
        The window boundaries of the chain, for example ``[0, 2, 4]`` for
        the two slices ``[0, 2)`` and ``[2, 4)``.  The first boundary must
        be 0 and boundaries must be strictly increasing.
    condition:
        The join condition shared by every slice.
    left_stream / right_stream:
        Names of the two input streams.
    metrics:
        Optional shared metrics collector for cost accounting.
    probe:
        Probe algorithm of every slice: ``"nested_loop"``, ``"hash"``
        (equi-joins only) or ``"auto"``.
    """

    def __init__(
        self,
        boundaries: Sequence[float],
        condition: JoinCondition,
        left_stream: str = "A",
        right_stream: str = "B",
        metrics: MetricsCollector | None = None,
        probe: str = "nested_loop",
    ) -> None:
        bounds = [float(b) for b in boundaries]
        if len(bounds) < 2:
            raise ChainError("a chain needs at least two boundaries (one slice)")
        if abs(bounds[0]) > 1e-12:
            raise ChainError(f"the first boundary must be 0, got {bounds[0]}")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ChainError(f"boundaries must be strictly increasing, got {bounds}")
        self.condition = condition
        self.left_stream = left_stream
        self.right_stream = right_stream
        self.metrics = metrics if metrics is not None else MetricsCollector()
        self.probe = probe
        self.joins: list[SlicedBinaryJoin] = []
        for start, end in zip(bounds, bounds[1:]):
            self.joins.append(self._make_join(start, end))
        #: Pushed-down selections per link: ``_filters[i]`` is the
        #: ``(left StreamFilter | None, right StreamFilter | None)`` pair in
        #: front of slice ``i`` (``i = 0`` filters the raw arrivals).
        self._filters: list[tuple[StreamFilter | None, StreamFilter | None]] = [
            (None, None) for _ in self.joins
        ]

    def _make_join(self, start: float, end: float) -> SlicedBinaryJoin:
        join = SlicedBinaryJoin(
            window_start=start,
            window_end=end,
            condition=self.condition,
            left_stream=self.left_stream,
            right_stream=self.right_stream,
            probe=self.probe,
            name=f"slice[{start:g},{end:g})",
        )
        join.bind_metrics(self.metrics)
        return join

    # -- pushed-down selections (Section 6) ---------------------------------------------
    def set_link_filters(
        self, predicates: Sequence[tuple[Predicate | None, Predicate | None]]
    ) -> None:
        """Install the pushed-down σ' predicates, one pair per link.

        ``predicates[i]`` is the ``(left, right)`` predicate pair guarding
        the queue in front of slice ``i``; ``None`` (or a
        :class:`~repro.query.predicates.TruePredicate`) removes the filter.
        The caller — typically :class:`repro.runtime.engine.StreamEngine` —
        recomputes the placement from its workload after every migration.
        """
        if len(predicates) != len(self.joins):
            raise ChainError(
                f"expected {len(self.joins)} filter pairs, got {len(predicates)}"
            )
        filters: list[tuple[StreamFilter | None, StreamFilter | None]] = []
        for index, (left, right) in enumerate(predicates):
            start = self.joins[index].slice.start
            pair = []
            for stream, predicate in (
                (self.left_stream, left),
                (self.right_stream, right),
            ):
                if predicate is None or isinstance(predicate, TruePredicate):
                    pair.append(None)
                    continue
                stream_filter = StreamFilter(
                    predicate, stream=stream, name=f"σ'[{stream}]@{start:g}"
                )
                stream_filter.bind_metrics(self.metrics)
                pair.append(stream_filter)
            filters.append((pair[0], pair[1]))
        self._filters = filters

    def link_filters(self) -> list[tuple[Predicate | None, Predicate | None]]:
        """The installed pushed-down predicates, one pair per link."""
        return [
            (
                left.predicate if left is not None else None,
                right.predicate if right is not None else None,
            )
            for left, right in self._filters
        ]

    def _through_link(self, index: int, items: list) -> list:
        """Run a FIFO run of items through link ``index``'s filters."""
        left, right = self._filters[index]
        for stream_filter in (left, right):
            if stream_filter is None or not items:
                continue
            items = [
                item for _port, item in stream_filter.process_batch(items, "in")
            ]
        return items

    # -- execution ------------------------------------------------------------------
    def process(self, tup: StreamTuple) -> list[SliceResult]:
        """Feed one arriving tuple through the whole chain.

        Returns every joined result produced, tagged with the index of the
        slice that produced it.  Tuples must be fed in global timestamp
        order.
        """
        results: list[SliceResult] = []
        port = "left" if tup.stream == self.left_stream else "right"
        pending: deque[tuple[int, object]] = deque()
        for entry in self._through_link(0, [tup]):
            for out_port, item in self.joins[0].process(entry, port):
                pending.append((0, (out_port, item)))
        while pending:
            index, (out_port, item) = pending.popleft()
            if out_port == "output":
                results.append((index, item))
            elif out_port == "next":
                next_index = index + 1
                if next_index < len(self.joins):
                    for passed in self._through_link(next_index, [item]):
                        emissions = self.joins[next_index].process(passed, "chain")
                        for nxt_port, nxt_item in emissions:
                            pending.append((next_index, (nxt_port, nxt_item)))
            # punctuations are dropped: the chain harness returns results
            # directly instead of routing them through a union operator.
        return results

    def process_batch(self, tuples: Sequence[StreamTuple]) -> list[SliceResult]:
        """Feed a FIFO batch of arrivals through the chain, slice by slice.

        The head join's raw ports are interchangeable (each arrival is
        captured as its male/female reference pair from the tuple's own
        stream), so the whole mixed-stream batch is delivered to it in one
        ``process_batch`` call; later joins consume the propagated
        references on their ``chain`` port.  Results are returned in
        slice-major order: all of slice 0's results for the batch, then
        slice 1's, and so on — the result *set* is identical to per-tuple
        processing, and within one slice results keep arrival order.
        """
        batch: list[object] = list(tuples)
        results: list[SliceResult] = []
        port = "left"
        for index, join in enumerate(self.joins):
            batch = self._through_link(index, batch)
            if not batch:
                break
            next_batch: list[object] = []
            for out_port, item in join.process_batch(batch, port):
                if out_port == "output":
                    results.append((index, item))
                elif out_port == "next":
                    next_batch.append(item)
            batch = next_batch
            port = "chain"
        return results

    def process_all(self, tuples: Sequence[StreamTuple]) -> list[SliceResult]:
        """Feed a whole (timestamp-ordered) sequence of tuples."""
        results: list[SliceResult] = []
        for tup in tuples:
            results.extend(self.process(tup))
        return results

    def results_for_window(
        self, results: Sequence[SliceResult], window: float
    ) -> list[JoinedTuple]:
        """Restrict chain results to those a query with ``window`` receives.

        For a Mem-Opt chain the answer of a query with window ``w_k`` is the
        union of the results of slices 1..k; for a chain with merged slices
        the results of the completing slice must additionally satisfy the
        query's window constraint (the router check).
        """
        answer = []
        for index, joined in results:
            join = self.joins[index]
            if join.slice.end <= window + 1e-12:
                answer.append(joined)
            elif join.slice.start < window:
                gap = abs(joined.left.timestamp - joined.right.timestamp)
                if gap < window:
                    answer.append(joined)
        return answer

    # -- introspection ------------------------------------------------------------------
    @property
    def boundaries(self) -> list[float]:
        return [self.joins[0].slice.start] + [join.slice.end for join in self.joins]

    def slice_count(self) -> int:
        return len(self.joins)

    def state_size(self) -> int:
        """Total number of tuples stored across all slices of the chain."""
        return sum(join.state_size() for join in self.joins)

    def state_sizes(self) -> list[int]:
        return [join.state_size() for join in self.joins]

    def state_tuples(self, stream: str) -> list[list[StreamTuple]]:
        """Per-slice state contents of one stream (oldest slice last)."""
        return [join.state_tuples(stream) for join in self.joins]

    def states_are_disjoint(self) -> bool:
        """Check the Lemma 1 property: per-stream slice states never overlap."""
        for stream in (self.left_stream, self.right_stream):
            seen: set[int] = set()
            for join in self.joins:
                for tup in join.state_tuples(stream):
                    if tup.seqno in seen:
                        return False
                    seen.add(tup.seqno)
        return True

    # -- online migration (Section 5.3) ---------------------------------------------------
    def split_slice(self, index: int, boundary: float) -> None:
        """Split slice ``index`` at ``boundary`` into two adjacent slices.

        Following Section 5.3, the existing join simply has its end window
        shrunk and an empty join is inserted after it; the next probe tuples
        will naturally purge the now-too-old tuples into the new slice, so
        no state needs to be moved and no results are lost.
        """
        if not 0 <= index < len(self.joins):
            raise MigrationError(f"no slice with index {index}")
        join = self.joins[index]
        if not (join.slice.start < boundary < join.slice.end):
            raise MigrationError(
                f"split boundary {boundary:g} must lie strictly inside "
                f"{join.slice.describe()}"
            )
        old_end = join.slice.end
        new_join = self._make_join(boundary, old_end)
        join.slice = type(join.slice)(join.slice.start, boundary)
        self.joins.insert(index + 1, new_join)
        # The new link starts unfiltered; the owner of the chain recomputes
        # the filter placement for the changed boundaries.
        self._filters.insert(index + 1, (None, None))

    def merge_slices(self, index: int) -> None:
        """Merge slice ``index`` with slice ``index + 1``.

        The states of the two slices are concatenated (the later slice holds
        the older tuples, so its state goes first) and the surviving join's
        end window is extended, mirroring the merge procedure of
        Section 5.3.  The queue between the two slices is always empty in
        this harness because every arrival is propagated fully.
        """
        if not 0 <= index < len(self.joins) - 1:
            raise MigrationError(
                f"cannot merge slice {index}: it has no successor in the chain"
            )
        keep = self.joins[index]
        absorb = self.joins[index + 1]
        for stream in (self.left_stream, self.right_stream):
            older = absorb.state_tuples(stream)
            newer = keep.state_tuples(stream)
            keep.load_state(stream, older + newer)
        keep.slice = type(keep.slice)(keep.slice.start, absorb.slice.end)
        del self.joins[index + 1]
        del self._filters[index + 1]

    def append_slice(self, end: float) -> None:
        """Extend the chain with a new empty tail slice ``[old_end, end)``.

        Used when a query with a window larger than the current chain end
        registers at runtime: tuples purged off the old tail (previously
        discarded) now flow into the new slice, so the larger window fills
        naturally from this point on — the new query sees exactly the
        results a fresh chain over the remaining stream suffix would see.
        """
        old_end = self.joins[-1].slice.end
        if end <= old_end + 1e-12:
            raise MigrationError(
                f"appended boundary {end:g} must exceed the chain end {old_end:g}"
            )
        self.joins.append(self._make_join(old_end, end))
        self._filters.append((None, None))

    def drop_tail_slice(self) -> None:
        """Remove the last slice of the chain, discarding its state.

        Used when the largest-window query deregisters: the tail slice holds
        only tuples too old for every remaining window, so its state can be
        dropped wholesale without touching the rest of the chain.
        """
        if len(self.joins) < 2:
            raise MigrationError("cannot drop the only slice of a chain")
        self.joins.pop()
        self._filters.pop()

    def slice_index_for_boundary(self, boundary: float) -> int | None:
        """Index of the slice whose *end* equals ``boundary``, if any."""
        for index, join in enumerate(self.joins):
            if abs(join.slice.end - boundary) <= 1e-9:
                return index
        return None

    def slice_index_containing(self, boundary: float) -> int | None:
        """Index of the slice with ``start < boundary < end``, if any."""
        for index, join in enumerate(self.joins):
            if join.slice.start + 1e-9 < boundary < join.slice.end - 1e-9:
                return index
        return None

    def describe(self) -> str:
        parts = [join.slice.describe() for join in self.joins]
        return " -> ".join(parts)
