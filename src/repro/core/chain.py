"""Runtime chain of sliced binary joins.

:class:`SlicedJoinChain` is a lightweight runtime harness that manages a
chain of :class:`~repro.operators.sliced_join.SlicedBinaryJoin` operators
directly — without building a full query plan.  It is the most convenient
entry point for:

* verifying the equivalence theorems (Theorems 1-3) against a regular
  window join,
* inspecting the per-slice states (disjointness, Lemma 1),
* exercising the online migration primitives of Section 5.3 — splitting a
  slice into two and merging two adjacent slices while the stream is
  running.

The execution loop and the migration primitives shared with the count-based
chain live in :class:`~repro.core.chain_base.SlicedChainBase`; this class
adds the time-slice specifics: lazy splits (a shrunk slice re-purges its
too-old tuples on the next probe) and the *pushed-down selections* of
Section 6.  Each link (the queue in front of a slice, including the chain
entry) can hold one :class:`~repro.operators.selection.StreamFilter` per
stream, installed via :meth:`SlicedJoinChain.set_link_filters`.  A tuple
failing the filter of a link never enters the slices behind it, which is
what keeps the shared chain memory-minimal when queries carry selection
predicates (Theorem 4).

For shared multi-query execution with selections, routers and unions over a
*static* workload, use :func:`repro.core.plan_builder.build_state_slice_plan`,
which assembles a full :class:`~repro.engine.plan.QueryPlan` from the same
building blocks; the chain-level filters exist for the runtime layer, where
the filter placement must be re-derived after every online migration.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.chain_base import SliceResult, SlicedChainBase
from repro.engine.errors import ChainError, MigrationError
from repro.operators.selection import StreamFilter
from repro.operators.sliced_join import SlicedBinaryJoin
from repro.query.predicates import Predicate, TruePredicate
from repro.streams.tuples import JoinedTuple

__all__ = ["SlicedJoinChain", "SliceResult"]


class SlicedJoinChain(SlicedChainBase):
    """A pipelined chain of sliced binary window joins (Definition 2).

    Parameters
    ----------
    boundaries:
        The window boundaries of the chain, for example ``[0, 2, 4]`` for
        the two slices ``[0, 2)`` and ``[2, 4)``.  The first boundary must
        be 0 and boundaries must be strictly increasing.
    condition:
        The join condition shared by every slice.
    left_stream / right_stream:
        Names of the two input streams.
    metrics:
        Optional shared metrics collector for cost accounting.
    probe:
        Probe algorithm of every slice: ``"nested_loop"``, ``"hash"``
        (equi-joins only) or ``"auto"``.
    """

    joins: list[SlicedBinaryJoin]

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: Pushed-down selections per link: ``_filters[i]`` is the
        #: ``(left StreamFilter | None, right StreamFilter | None)`` pair in
        #: front of slice ``i`` (``i = 0`` filters the raw arrivals).
        self._filters: list[tuple[StreamFilter | None, StreamFilter | None]] = [
            (None, None) for _ in self.joins
        ]

    # -- chain-base hooks -----------------------------------------------------
    def _coerce_boundaries(self, boundaries: Sequence[float]) -> list[float]:
        bounds = [float(b) for b in boundaries]
        if len(bounds) < 2:
            raise ChainError("a chain needs at least two boundaries (one slice)")
        if abs(bounds[0]) > 1e-12:
            raise ChainError(f"the first boundary must be 0, got {bounds[0]}")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ChainError(f"boundaries must be strictly increasing, got {bounds}")
        return bounds

    def _coerce_boundary(self, boundary: float) -> float:
        return float(boundary)

    def _make_join(self, start: float, end: float) -> SlicedBinaryJoin:
        join = SlicedBinaryJoin(
            window_start=start,
            window_end=end,
            condition=self.condition,
            left_stream=self.left_stream,
            right_stream=self.right_stream,
            probe=self.probe,
            columnar=self.columnar,
            name=f"slice[{start:g},{end:g})",
        )
        join.bind_metrics(self.metrics)
        return join

    def _join_bounds(self, join: SlicedBinaryJoin) -> tuple[float, float]:
        return join.slice.start, join.slice.end

    def _set_join_end(self, join: SlicedBinaryJoin, end: float) -> None:
        join.slice = type(join.slice)(join.slice.start, end)

    def _describe_join(self, join: SlicedBinaryJoin) -> str:
        return join.slice.describe()

    def _on_slice_inserted(self, index: int) -> None:
        # The new link starts unfiltered; the owner of the chain recomputes
        # the filter placement for the changed boundaries.
        self._filters.insert(index, (None, None))

    def _on_slice_removed(self, index: int) -> None:
        del self._filters[index]

    # -- pushed-down selections (Section 6) ---------------------------------------------
    def set_link_filters(
        self, predicates: Sequence[tuple[Predicate | None, Predicate | None]]
    ) -> None:
        """Install the pushed-down σ' predicates, one pair per link.

        ``predicates[i]`` is the ``(left, right)`` predicate pair guarding
        the queue in front of slice ``i``; ``None`` (or a
        :class:`~repro.query.predicates.TruePredicate`) removes the filter.
        The caller — typically :class:`repro.runtime.engine.StreamEngine` —
        recomputes the placement from its workload after every migration.
        """
        if len(predicates) != len(self.joins):
            raise ChainError(
                f"expected {len(self.joins)} filter pairs, got {len(predicates)}"
            )
        filters: list[tuple[StreamFilter | None, StreamFilter | None]] = []
        for index, (left, right) in enumerate(predicates):
            start = self.joins[index].slice.start
            pair = []
            for stream, predicate in (
                (self.left_stream, left),
                (self.right_stream, right),
            ):
                if predicate is None or isinstance(predicate, TruePredicate):
                    pair.append(None)
                    continue
                stream_filter = StreamFilter(
                    predicate, stream=stream, name=f"σ'[{stream}]@{start:g}"
                )
                stream_filter.bind_metrics(self.metrics)
                pair.append(stream_filter)
            filters.append((pair[0], pair[1]))
        self._filters = filters

    def link_filters(self) -> list[tuple[Predicate | None, Predicate | None]]:
        """The installed pushed-down predicates, one pair per link."""
        return [
            (
                left.predicate if left is not None else None,
                right.predicate if right is not None else None,
            )
            for left, right in self._filters
        ]

    def _through_link(self, index: int, items: list) -> list:
        """Run a FIFO run of items through link ``index``'s filters."""
        left, right = self._filters[index]
        for stream_filter in (left, right):
            if stream_filter is None or not items:
                continue
            items = [
                item for _port, item in stream_filter.process_batch(items, "in")
            ]
        return items

    # -- time-window specifics ------------------------------------------------
    def results_for_window(
        self, results: Sequence[SliceResult], window: float
    ) -> list[JoinedTuple]:
        """Restrict chain results to those a query with ``window`` receives.

        For a Mem-Opt chain the answer of a query with window ``w_k`` is the
        union of the results of slices 1..k; for a chain with merged slices
        the results of the completing slice must additionally satisfy the
        query's window constraint (the router check).
        """
        answer = []
        for index, joined in results:
            join = self.joins[index]
            if join.slice.end <= window + 1e-12:
                answer.append(joined)
            elif join.slice.start < window:
                gap = abs(joined.left.timestamp - joined.right.timestamp)
                if gap < window:
                    answer.append(joined)
        return answer

    def split_slice(self, index: int, boundary: float) -> None:
        """Split slice ``index`` at ``boundary`` into two adjacent slices.

        Following Section 5.3, the existing join simply has its end window
        shrunk and an empty join is inserted after it; the next probe tuples
        will naturally purge the now-too-old tuples into the new slice, so
        no state needs to be moved and no results are lost.
        """
        if not 0 <= index < len(self.joins):
            raise MigrationError(f"no slice with index {index}")
        join = self.joins[index]
        if not (join.slice.start < boundary < join.slice.end):
            raise MigrationError(
                f"split boundary {boundary:g} must lie strictly inside "
                f"{join.slice.describe()}"
            )
        old_end = join.slice.end
        new_join = self._make_join(boundary, old_end)
        join.slice = type(join.slice)(join.slice.start, boundary)
        self.joins.insert(index + 1, new_join)
        self._on_slice_inserted(index + 1)
