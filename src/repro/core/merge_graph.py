"""Analytical per-slice costs and the merge graph (Sections 5.2 and 6.2).

Merging adjacent slices of a Mem-Opt chain trades routing cost (the merged
slice must re-split its results by window) against purge cost and per-
operator system overhead (fewer operators).  With selections, merging also
pulls a selection up, inflating state memory and probe cost.

All possible merges form a directed acyclic graph: node ``i`` stands for
window boundary ``w_i`` (``w_0 = 0``), and edge ``i → j`` (i < j) stands for
one merged slice ``[w_i, w_j)`` serving queries ``i+1 .. j``.  Every path
from node 0 to node N is a valid chain; the CPU-Opt chain is the shortest
path under the per-edge CPU cost computed here (Lemma 2 makes the edge
costs independent, so the principle of optimality applies).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.engine.errors import ChainError
from repro.core.slices import ChainSpec, SliceSpec
from repro.query.predicates import TruePredicate
from repro.query.query import QueryWorkload

__all__ = [
    "DEFAULT_COLD_PROBE_PENALTY",
    "ChainCostParameters",
    "SliceCostBreakdown",
    "slice_cpu_cost",
    "slice_memory_cost",
    "chain_cpu_cost",
    "chain_memory_cost",
    "MergeGraph",
]

#: Default multiplier applied to the probe term of a slice whose state the
#: memory budget pushes to the disk tier: a cold probe decodes matching rows
#: from an mmap'd segment instead of walking resident objects.  Sessions
#: override it via :attr:`ChainCostParameters.cold_probe_penalty`.
DEFAULT_COLD_PROBE_PENALTY = 4.0


@dataclass(frozen=True)
class ChainCostParameters:
    """Workload constants needed to evaluate the analytical chain costs.

    Parameters
    ----------
    arrival_rate_left / arrival_rate_right:
        λA and λB in tuples per second.
    system_overhead:
        The paper's ``Csys`` factor: CPU cost charged per operator per input
        tuple (moving tuples through queues, scheduling context switches).
    tuple_size:
        Tuple size in KB (scales memory only).
    hash_probe:
        When True the probe term models the hash-indexed probe path of the
        sliced joins: a probing tuple examines only its equi-key bucket, an
        expected ``S1`` fraction of the sliced state, instead of the whole
        state (nested loops, the paper's default).
    join_selectivity:
        Optional measured join factor S1 overriding the join condition's
        declared estimate.  Populated by
        :meth:`repro.core.statistics.StreamStatistics.chain_parameters` so
        the CPU-Opt search prices plans from observed stream behaviour.
    memory_budget:
        Optional in-core state budget in KB (the unit of
        :func:`slice_memory_cost`).  Slices whose Mem-Opt prefix memory
        already exceeds the budget are priced as *cold*: their probe term
        is scaled by ``1 + cold_probe_penalty`` (disk-tier I/O).  ``None``
        prices everything as resident.
    cold_probe_penalty:
        Relative extra cost of probing a spilled slice versus a resident
        one (0 = disk probes are free).  Only used when ``memory_budget``
        is set.
    """

    arrival_rate_left: float = 50.0
    arrival_rate_right: float = 50.0
    system_overhead: float = 0.5
    tuple_size: float = 1.0
    hash_probe: bool = False
    join_selectivity: float | None = None
    memory_budget: float | None = None
    cold_probe_penalty: float = 0.0

    def __post_init__(self) -> None:
        if self.arrival_rate_left <= 0 or self.arrival_rate_right <= 0:
            raise ChainError("arrival rates must be positive")
        if self.system_overhead < 0:
            raise ChainError("system_overhead must be non-negative")
        if self.join_selectivity is not None and not 0.0 <= self.join_selectivity <= 1.0:
            raise ChainError(
                f"join_selectivity must lie in [0, 1], got {self.join_selectivity}"
            )
        if self.memory_budget is not None and self.memory_budget <= 0:
            raise ChainError(
                f"memory_budget must be positive (KB), got {self.memory_budget}"
            )
        if self.cold_probe_penalty < 0:
            raise ChainError(
                f"cold_probe_penalty must be non-negative, got {self.cold_probe_penalty}"
            )

    def effective_join_selectivity(self, workload: QueryWorkload) -> float:
        """The S1 the cost model should price with: measured, else declared."""
        if self.join_selectivity is not None:
            return self.join_selectivity
        return workload.join_condition.selectivity

    @property
    def combined_rate(self) -> float:
        return self.arrival_rate_left + self.arrival_rate_right


@dataclass(frozen=True)
class SliceCostBreakdown:
    """Per-component CPU cost of one (possibly merged) slice, per second."""

    probe: float
    purge: float
    filter: float
    route: float
    union: float
    overhead: float

    @property
    def total(self) -> float:
        return self.probe + self.purge + self.filter + self.route + self.union + self.overhead


def _slice_selectivities(
    workload: QueryWorkload, slice_spec: SliceSpec
) -> tuple[float, float]:
    """Selectivity of the predicates pushed below the slice (left, right).

    The selection that can sit below slice ``[start, end)`` is the
    disjunction of the filters of every query whose window exceeds ``start``
    (Section 6.1); its selectivity determines the effective input rate of
    the slice.
    """
    left = workload.slice_filter(slice_spec.start, side="left")
    right = workload.slice_filter(slice_spec.start, side="right")
    return left.selectivity, right.selectivity


def slice_memory_cost(
    workload: QueryWorkload,
    slice_spec: SliceSpec,
    params: ChainCostParameters,
) -> float:
    """Expected state memory (KB) of one slice.

    The slice holds, on each side, the tuples that entered it (after the
    pushed-down selection) during the last ``slice length`` seconds.
    """
    s_left, s_right = _slice_selectivities(workload, slice_spec)
    left_tuples = params.arrival_rate_left * s_left * slice_spec.length
    right_tuples = params.arrival_rate_right * s_right * slice_spec.length
    return (left_tuples + right_tuples) * params.tuple_size


def _prefix_memory(
    workload: QueryWorkload, start: float, params: ChainCostParameters
) -> float:
    """Expected state memory (KB) held by tuples *newer* than ``start``.

    Used to place the hot/cold tier boundary when ``params.memory_budget``
    is set: the runtime evicts slices oldest-first and never evicts the
    head, so a slice beginning at ``start`` is cold exactly when the state
    in front of it (ages ``[0, start)``) already fills the budget.  The
    prefix is always measured over the *Mem-Opt* slices of ``[0, start)``
    — a function of ``start`` and the workload alone, never of how the
    candidate chain happens to slice that prefix — so the merge graph's
    edge costs stay path-independent and Lemma 2 (the principle of
    optimality) continues to hold.
    """
    total = 0.0
    boundaries = [0.0] + workload.window_sizes()
    for a, b in zip(boundaries, boundaries[1:]):
        if b > start + 1e-12:
            break
        total += slice_memory_cost(
            workload, SliceSpec(start=a, end=b, covered_windows=(b,)), params
        )
    return total


def slice_cpu_cost(
    workload: QueryWorkload,
    slice_spec: SliceSpec,
    params: ChainCostParameters,
) -> SliceCostBreakdown:
    """Expected CPU cost (comparisons per second) of one slice.

    Components follow the decomposition of Equations 1-3 generalised to an
    arbitrary slice:

    * probe — each arriving (filtered) tuple probes the opposite sliced
      state with nested loops;
    * purge — one timestamp comparison per arriving tuple per slice;
    * filter — one predicate evaluation per left-stream tuple when a
      selection is pushed below the slice;
    * route — one window comparison per joined result per query window
      ending strictly inside the slice (merged slices only);
    * union — one comparison per input tuple reaching the slice, standing
      for the punctuation-driven merge work attributable to this slice;
    * overhead — ``Csys`` per tuple passing through the slice's operators.
    """
    s_left, s_right = _slice_selectivities(workload, slice_spec)
    join_selectivity = params.effective_join_selectivity(workload)
    rate_left = params.arrival_rate_left * s_left
    rate_right = params.arrival_rate_right * s_right
    length = slice_spec.length

    # Probing: left males probe the right state and vice versa.  Nested
    # loops examine the whole opposite state; the hash probe path examines
    # one equi-key bucket, an expected S1 fraction of it.
    probe = rate_left * rate_right * length + rate_right * rate_left * length
    if params.hash_probe:
        probe *= join_selectivity
    if (
        params.memory_budget is not None
        and params.cold_probe_penalty > 0.0
        and _prefix_memory(workload, slice_spec.start, params) >= params.memory_budget
    ):
        # The slice sits past the tier boundary: its probes read the disk
        # tier's segments rather than resident state.
        probe *= 1.0 + params.cold_probe_penalty
    # Cross-purging: one comparison per male per slice.
    purge = rate_left + rate_right
    # Pushed-down selections: one evaluation per original tuple that reaches
    # the slice boundary (charged only when the filter is non-trivial).
    left_filter = workload.slice_filter(slice_spec.start, side="left")
    right_filter = workload.slice_filter(slice_spec.start, side="right")
    filter_cost = 0.0
    if not isinstance(left_filter, TruePredicate):
        filter_cost += params.arrival_rate_left
    if not isinstance(right_filter, TruePredicate):
        filter_cost += params.arrival_rate_right
    # Routing: joined results of a merged slice are checked against every
    # window that ends strictly inside the slice.
    result_rate = 2 * rate_left * rate_right * length * join_selectivity
    route = result_rate * len(slice_spec.inner_windows())
    # Union: punctuation-driven merging charged per tuple reaching the slice.
    union = rate_left + rate_right
    # System overhead: Csys per tuple passing through the sliced join.  The
    # paper's merge analysis (Section 5.2) credits the overhead of the joins
    # that merging removes and treats the added router as negligible in
    # comparison, so only the join operator is charged here.
    overhead = params.system_overhead * (rate_left + rate_right)
    return SliceCostBreakdown(
        probe=probe,
        purge=purge,
        filter=filter_cost,
        route=route,
        union=union,
        overhead=overhead,
    )


def chain_cpu_cost(chain: ChainSpec, params: ChainCostParameters) -> float:
    """Total analytical CPU cost (comparisons per second) of a chain."""
    return sum(
        slice_cpu_cost(chain.workload, slice_spec, params).total
        for slice_spec in chain.slices
    )


def chain_memory_cost(chain: ChainSpec, params: ChainCostParameters) -> float:
    """Total analytical state memory (KB) of a chain."""
    return sum(
        slice_memory_cost(chain.workload, slice_spec, params)
        for slice_spec in chain.slices
    )


@dataclass
class MergeGraph:
    """The DAG of all possible slice merges for a workload.

    Node ``i`` represents boundary ``w_i`` (``w_0 = 0``); the edge
    ``i → j`` represents the merged slice ``[w_i, w_j)``.  Edge lengths are
    the analytical CPU cost of that merged slice.
    """

    workload: QueryWorkload
    params: ChainCostParameters
    boundaries: list[float] = field(init=False)

    def __post_init__(self) -> None:
        self.boundaries = [0.0] + self.workload.window_sizes()

    @property
    def node_count(self) -> int:
        return len(self.boundaries)

    def edge_slice(self, i: int, j: int) -> SliceSpec:
        """The merged slice represented by edge ``i → j``."""
        if not 0 <= i < j < self.node_count:
            raise ChainError(f"invalid merge edge {i} -> {j}")
        covered = tuple(self.boundaries[i + 1 : j + 1])
        return SliceSpec(
            start=self.boundaries[i], end=self.boundaries[j], covered_windows=covered
        )

    def edge_cost(self, i: int, j: int) -> float:
        """Analytical CPU cost of the merged slice ``i → j`` (edge length)."""
        return slice_cpu_cost(self.workload, self.edge_slice(i, j), self.params).total

    def chain_from_path(self, path: Sequence[int]) -> ChainSpec:
        """Build the chain spec corresponding to a node path ``0, ..., N``."""
        if len(path) < 2 or path[0] != 0 or path[-1] != self.node_count - 1:
            raise ChainError(
                f"a chain path must start at node 0 and end at node "
                f"{self.node_count - 1}; got {list(path)}"
            )
        slices = [self.edge_slice(path[k], path[k + 1]) for k in range(len(path) - 1)]
        return ChainSpec(self.workload, slices)

    def path_cost(self, path: Sequence[int]) -> float:
        return sum(self.edge_cost(path[k], path[k + 1]) for k in range(len(path) - 1))
