"""Naive sharing with selection pull-up (Section 3.1, Figure 3).

All queries share one sliding-window join whose window is the largest among
the group; every selection is pulled above the join.  A router dispatches
each joined result to the queries whose window constraint (and residual
filter) it satisfies.

The per-result routing cost and the unfiltered large-window state are the
two inefficiencies the paper quantifies in Equation 1.

With ``window_kind="count"`` the same strategy is built over a
:class:`~repro.operators.count_join.SharedCountJoin`: one join with the
largest registered count, dispatching each joined pair in-operator (a
pair's rank distance is not derivable downstream, so the "router" must live
where the probe depth is known).
"""

from __future__ import annotations

from repro.engine.errors import ConfigurationError
from repro.engine.plan import QueryPlan
from repro.operators.count_join import CountTap, SharedCountJoin
from repro.operators.join import SlidingWindowJoin
from repro.operators.router import Route, Router
from repro.query.query import QueryWorkload
from repro.query.windows import as_count

__all__ = ["build_pullup_plan"]

_EPSILON = 1e-9


def _build_count_pullup_plan(
    workload: QueryWorkload, algorithm: str, plan_name: str
) -> QueryPlan:
    if algorithm != "nested_loop":
        raise ConfigurationError(
            f"count-window baselines support nested-loop probing only, got {algorithm!r}"
        )
    plan = QueryPlan(plan_name)
    taps = [
        CountTap(
            port=query.name,
            count=as_count(query.window, context=f"window of query {query.name!r}"),
            left_filter=query.left_filter,
            right_filter=query.right_filter,
        )
        for query in workload
    ]
    join = SharedCountJoin(taps, workload.join_condition, name="shared_join")
    plan.add_operator(join)
    plan.add_entry(workload.left_stream, join, "left")
    plan.add_entry(workload.right_stream, join, "right")
    for query in workload:
        plan.add_output(query.name, join, query.name)
    plan.validate()
    return plan


def build_pullup_plan(
    workload: QueryWorkload,
    algorithm: str = "nested_loop",
    plan_name: str = "selection-pullup",
    window_kind: str = "time",
) -> QueryPlan:
    """Build the selection pull-up shared plan for a workload.

    The router applies each query's own selection to the joined results
    ("Filtered PullUp" in [10]): the join itself runs without any filtering,
    exactly as the naive strategy prescribes.
    """
    if window_kind == "count":
        return _build_count_pullup_plan(workload, algorithm, plan_name)
    if window_kind != "time":
        raise ConfigurationError(
            f"window_kind must be 'time' or 'count', got {window_kind!r}"
        )
    plan = QueryPlan(plan_name)
    max_window = workload.max_window
    join = SlidingWindowJoin(
        window_left=max_window,
        window_right=max_window,
        condition=workload.join_condition,
        algorithm=algorithm,
        name="shared_join",
    )
    plan.add_operator(join)
    plan.add_entry(workload.left_stream, join, "left")
    plan.add_entry(workload.right_stream, join, "right")

    routes = []
    for query in workload:
        needs_window_check = query.window < max_window - _EPSILON
        routes.append(
            Route(
                port=query.name,
                window=query.window if needs_window_check else None,
                left_filter=query.left_filter,
                right_filter=query.right_filter,
            )
        )
    router = Router(routes, name="router")
    plan.add_operator(router)
    plan.connect(join, "output", router, "in")
    for query in workload:
        plan.add_output(query.name, router, query.name)
    plan.validate()
    return plan
