"""No-sharing baseline: one independent plan per query.

Each query gets its own selection (pushed below its own join, the best
single-query plan) and its own sliding-window join.  Nothing is shared, so
both state memory and probing cost grow linearly with the number of
queries — the baseline every sharing strategy is compared against in the
paper's Figure 2.
"""

from __future__ import annotations

from repro.engine.plan import QueryPlan
from repro.operators.join import SlidingWindowJoin
from repro.operators.selection import Selection
from repro.query.predicates import TruePredicate
from repro.query.query import QueryWorkload

__all__ = ["build_unshared_plan"]


def build_unshared_plan(
    workload: QueryWorkload,
    algorithm: str = "nested_loop",
    plan_name: str = "unshared",
) -> QueryPlan:
    """Build one plan containing an independent operator pipeline per query."""
    plan = QueryPlan(plan_name)
    for query in workload:
        join = SlidingWindowJoin(
            window_left=query.window,
            window_right=query.window,
            condition=query.join_condition,
            algorithm=algorithm,
            name=f"join_{query.name}",
        )
        plan.add_operator(join)

        if isinstance(query.left_filter, TruePredicate):
            plan.add_entry(query.left_stream, join, "left")
        else:
            selection = Selection(query.left_filter, name=f"select_left_{query.name}")
            plan.add_operator(selection)
            plan.add_entry(query.left_stream, selection, "in")
            plan.connect(selection, "out", join, "left")

        if isinstance(query.right_filter, TruePredicate):
            plan.add_entry(query.right_stream, join, "right")
        else:
            selection = Selection(query.right_filter, name=f"select_right_{query.name}")
            plan.add_operator(selection)
            plan.add_entry(query.right_stream, selection, "in")
            plan.connect(selection, "out", join, "right")

        plan.add_output(query.name, join, "output")
    plan.validate()
    return plan
