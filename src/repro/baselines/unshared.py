"""No-sharing baseline: one independent plan per query.

Each query gets its own selection (pushed below its own join, the best
single-query plan) and its own sliding-window join.  Nothing is shared, so
both state memory and probing cost grow linearly with the number of
queries — the baseline every sharing strategy is compared against in the
paper's Figure 2.

With ``window_kind="count"`` each query gets its own
:class:`~repro.operators.count_join.CountWindowJoin` instead.  Count
windows range over the *raw* arrivals of each stream (filtering the input
would redefine which tuples occupy the most recent N ranks), so selections
are applied to each query's joined results — the same semantics the runtime
layer's :class:`~repro.runtime.engine.CountStreamEngine` defines.
"""

from __future__ import annotations

from repro.engine.errors import ConfigurationError
from repro.engine.plan import QueryPlan
from repro.operators.count_join import CountWindowJoin
from repro.operators.join import SlidingWindowJoin
from repro.operators.selection import JoinedFilter, Selection
from repro.query.predicates import TruePredicate
from repro.query.query import QueryWorkload
from repro.query.windows import as_count

__all__ = ["build_unshared_plan"]


def _build_count_unshared_plan(
    workload: QueryWorkload, algorithm: str, plan_name: str
) -> QueryPlan:
    if algorithm != "nested_loop":
        raise ConfigurationError(
            f"count-window baselines support nested-loop probing only, got {algorithm!r}"
        )
    plan = QueryPlan(plan_name)
    for query in workload:
        count = as_count(query.window, context=f"window of query {query.name!r}")
        join = CountWindowJoin(
            count_left=count,
            count_right=count,
            condition=query.join_condition,
            name=f"join_{query.name}",
        )
        plan.add_operator(join)
        plan.add_entry(query.left_stream, join, "left")
        plan.add_entry(query.right_stream, join, "right")
        if query.has_selection:
            residual = JoinedFilter(
                query.left_filter, query.right_filter, name=f"select_{query.name}"
            )
            plan.add_operator(residual)
            plan.connect(join, "output", residual, "in")
            plan.add_output(query.name, residual, "out")
        else:
            plan.add_output(query.name, join, "output")
    plan.validate()
    return plan


def build_unshared_plan(
    workload: QueryWorkload,
    algorithm: str = "nested_loop",
    plan_name: str = "unshared",
    window_kind: str = "time",
) -> QueryPlan:
    """Build one plan containing an independent operator pipeline per query."""
    if window_kind == "count":
        return _build_count_unshared_plan(workload, algorithm, plan_name)
    if window_kind != "time":
        raise ConfigurationError(
            f"window_kind must be 'time' or 'count', got {window_kind!r}"
        )
    plan = QueryPlan(plan_name)
    for query in workload:
        join = SlidingWindowJoin(
            window_left=query.window,
            window_right=query.window,
            condition=query.join_condition,
            algorithm=algorithm,
            name=f"join_{query.name}",
        )
        plan.add_operator(join)

        if isinstance(query.left_filter, TruePredicate):
            plan.add_entry(query.left_stream, join, "left")
        else:
            selection = Selection(query.left_filter, name=f"select_left_{query.name}")
            plan.add_operator(selection)
            plan.add_entry(query.left_stream, selection, "in")
            plan.connect(selection, "out", join, "left")

        if isinstance(query.right_filter, TruePredicate):
            plan.add_entry(query.right_stream, join, "right")
        else:
            selection = Selection(query.right_filter, name=f"select_right_{query.name}")
            plan.add_operator(selection)
            plan.add_entry(query.right_stream, selection, "in")
            plan.connect(selection, "out", join, "right")

        plan.add_output(query.name, join, "output")
    plan.validate()
    return plan
