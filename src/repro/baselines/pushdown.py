"""Stream partition with selection push-down (Section 3.2, Figure 4).

The input stream carrying selections is split by the selection predicate so
that each partial join only processes the tuples it needs:

* tuples failing the predicate can only contribute to the queries without a
  selection, so they feed a join whose window is the largest *unfiltered*
  window;
* tuples passing the predicate are needed by every query, so they feed a
  join whose window is the overall largest window.

The partial joins' results are routed and merged (order-preserving union)
into the per-query answers.  This avoids the unnecessary probings of the
pull-up strategy but pays an extra state-memory price because the partial
joins' windows move asynchronously, and it keeps the per-result routing
cost (Equation 2).

The builder supports the workload shape used throughout the paper's
analysis and experiments: selections on the left stream only, and a single
distinct selection predicate across the filtered queries.  Other shapes
raise :class:`~repro.engine.errors.ConfigurationError` (the paper notes the
strategy needs ``m·n`` joins in general, which it never evaluates).
"""

from __future__ import annotations

from repro.engine.errors import ConfigurationError
from repro.engine.plan import QueryPlan
from repro.operators.join import SlidingWindowJoin
from repro.operators.router import Route, Router
from repro.operators.split import Split
from repro.operators.union import BagUnion
from repro.query.predicates import TruePredicate
from repro.query.query import ContinuousQuery, QueryWorkload

__all__ = ["build_pushdown_plan"]

_EPSILON = 1e-9


def _classify_queries(
    workload: QueryWorkload,
) -> tuple[list[ContinuousQuery], list[ContinuousQuery]]:
    """Split the workload into unfiltered and filtered queries, validating shape."""
    unfiltered: list[ContinuousQuery] = []
    filtered: list[ContinuousQuery] = []
    predicate_description: str | None = None
    for query in workload:
        if not isinstance(query.right_filter, TruePredicate):
            raise ConfigurationError(
                "the stream-partition baseline supports selections on the left "
                f"stream only; query {query.name!r} filters the right stream"
            )
        if isinstance(query.left_filter, TruePredicate):
            unfiltered.append(query)
            continue
        description = query.left_filter.describe()
        if predicate_description is None:
            predicate_description = description
        elif description != predicate_description:
            raise ConfigurationError(
                "the stream-partition baseline supports a single distinct selection "
                f"predicate; found both {predicate_description!r} and {description!r}"
            )
        filtered.append(query)
    return unfiltered, filtered


def build_pushdown_plan(
    workload: QueryWorkload,
    algorithm: str = "nested_loop",
    plan_name: str = "selection-pushdown",
    window_kind: str = "time",
) -> QueryPlan:
    """Build the stream-partition (selection push-down) shared plan.

    With ``window_kind="count"`` the strategy degenerates to the shared
    count join of the pull-up plan: partitioning a stream by a predicate
    redefines which tuples occupy the most recent N ranks, so stream
    partition cannot preserve count-window semantics (count windows range
    over raw arrivals; selections filter answers only — the convention
    shared with :class:`~repro.runtime.engine.CountStreamEngine`).
    """
    if window_kind == "count":
        from repro.baselines.pullup import build_pullup_plan

        return build_pullup_plan(
            workload, algorithm=algorithm, plan_name=plan_name, window_kind="count"
        )
    if window_kind != "time":
        raise ConfigurationError(
            f"window_kind must be 'time' or 'count', got {window_kind!r}"
        )
    unfiltered, filtered = _classify_queries(workload)
    plan = QueryPlan(plan_name)

    if not filtered:
        # No selections anywhere: stream partitioning degenerates to the
        # single shared join with a router, identical to selection pull-up.
        from repro.baselines.pullup import build_pullup_plan

        return build_pullup_plan(workload, algorithm=algorithm, plan_name=plan_name)

    predicate = filtered[0].left_filter
    split = Split(predicate, name="split")
    plan.add_operator(split)
    plan.add_entry(workload.left_stream, split, "in")

    max_window = workload.max_window
    # Join fed by the tuples passing the selection: needed by every query.
    join_match = SlidingWindowJoin(
        window_left=max_window,
        window_right=max_window,
        condition=workload.join_condition,
        algorithm=algorithm,
        name="join_match",
    )
    plan.add_operator(join_match)
    plan.connect(split, "match", join_match, "left")
    plan.add_entry(workload.right_stream, join_match, "right")

    join_rest = None
    if unfiltered:
        # Join fed by the tuples failing the selection: only the unfiltered
        # queries need them, so its window is the largest unfiltered window.
        rest_window = max(query.window for query in unfiltered)
        join_rest = SlidingWindowJoin(
            window_left=rest_window,
            window_right=rest_window,
            condition=workload.join_condition,
            algorithm=algorithm,
            name="join_rest",
        )
        plan.add_operator(join_rest)
        plan.connect(split, "rest", join_rest, "left")
        plan.add_entry(workload.right_stream, join_rest, "right")

    # Route the match-join results to every query (filtered and unfiltered).
    match_routes = []
    for query in workload:
        needs_window_check = query.window < max_window - _EPSILON
        match_routes.append(
            Route(
                port=query.name,
                window=query.window if needs_window_check else None,
            )
        )
    match_router = Router(match_routes, name="router_match")
    plan.add_operator(match_router)
    plan.connect(join_match, "output", match_router, "in")

    rest_router = None
    if join_rest is not None and unfiltered:
        rest_window = max(query.window for query in unfiltered)
        rest_routes = []
        for query in unfiltered:
            needs_window_check = query.window < rest_window - _EPSILON
            rest_routes.append(
                Route(
                    port=query.name,
                    window=query.window if needs_window_check else None,
                )
            )
        rest_router = Router(rest_routes, name="router_rest")
        plan.add_operator(rest_router)
        plan.connect(join_rest, "output", rest_router, "in")

    for query in workload:
        if query in unfiltered and rest_router is not None:
            # The paper uses an order-preserving union here; a bag union is
            # used instead because the partial joins emit no punctuations, and
            # only the result multiset and per-item merge cost matter for the
            # reproduced measurements.
            union = BagUnion(name=f"union_{query.name}")
            plan.add_operator(union)
            plan.connect(match_router, query.name, union, "in")
            plan.connect(rest_router, query.name, union, "in")
            plan.add_output(query.name, union, "out")
        else:
            plan.add_output(query.name, match_router, query.name)
    plan.validate()
    return plan
