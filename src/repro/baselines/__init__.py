"""Sharing strategies from the literature used as baselines (Section 3)."""

from repro.baselines.pullup import build_pullup_plan
from repro.baselines.pushdown import build_pushdown_plan
from repro.baselines.unshared import build_unshared_plan

__all__ = ["build_pullup_plan", "build_pushdown_plan", "build_unshared_plan"]
