"""Workload generation for the paper's performance study.

Section 7 of the paper evaluates the sharing strategies on query sets whose
window sizes follow a handful of named distributions:

* Table 3 (three queries): ``Mostly-Small`` (5, 10, 30 s), ``Uniform``
  (10, 20, 30 s) and ``Mostly-Large`` (20, 25, 30 s);
* Table 4 (twelve queries): ``Uniform`` (2.5 .. 30 s step 2.5),
  ``Mostly-Small`` (1..10, 20, 30 s) and ``Small-Large`` (1..6, 25..30 s).

This module encodes those distributions, scales them to other query counts
(the paper runs 12, 24 and 36 queries with the "window distributions for
other numbers of queries set accordingly") and builds
:class:`~repro.query.query.QueryWorkload` objects with the requested join
and filter selectivities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.engine.errors import ConfigurationError
from repro.query.predicates import (
    Predicate,
    TruePredicate,
    selectivity_filter,
    selectivity_join,
)
from repro.query.query import ContinuousQuery, QueryWorkload

__all__ = [
    "WindowDistribution",
    "THREE_QUERY_DISTRIBUTIONS",
    "TWELVE_QUERY_DISTRIBUTIONS",
    "window_distribution",
    "scale_distribution",
    "build_workload",
    "three_query_workload",
    "multi_query_workload",
]


@dataclass(frozen=True)
class WindowDistribution:
    """A named list of window sizes (seconds)."""

    name: str
    windows: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.windows:
            raise ConfigurationError(f"distribution {self.name!r} has no windows")
        if any(w <= 0 for w in self.windows):
            raise ConfigurationError(
                f"distribution {self.name!r} contains non-positive windows"
            )

    @property
    def count(self) -> int:
        return len(self.windows)

    @property
    def max_window(self) -> float:
        return max(self.windows)


#: Table 3 of the paper — window distributions for the three-query study.
THREE_QUERY_DISTRIBUTIONS: dict[str, WindowDistribution] = {
    "mostly-small": WindowDistribution("mostly-small", (5.0, 10.0, 30.0)),
    "uniform": WindowDistribution("uniform", (10.0, 20.0, 30.0)),
    "mostly-large": WindowDistribution("mostly-large", (20.0, 25.0, 30.0)),
}

#: Table 4 of the paper — window distributions for the twelve-query study.
TWELVE_QUERY_DISTRIBUTIONS: dict[str, WindowDistribution] = {
    "uniform": WindowDistribution(
        "uniform",
        (2.5, 5.0, 7.5, 10.0, 12.5, 15.0, 17.5, 20.0, 22.5, 25.0, 27.5, 30.0),
    ),
    "mostly-small": WindowDistribution(
        "mostly-small",
        (1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 20.0, 30.0),
    ),
    "small-large": WindowDistribution(
        "small-large",
        (1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 25.0, 26.0, 27.0, 28.0, 29.0, 30.0),
    ),
}


def window_distribution(name: str, query_count: int = 3) -> WindowDistribution:
    """Look up a named distribution for the given query count.

    Three-query names come from Table 3; 12-or-more-query names from
    Table 4, scaled with :func:`scale_distribution` when ``query_count``
    differs from 12 (the paper's 24- and 36-query settings).
    """
    key = name.lower()
    if query_count <= 3:
        table = THREE_QUERY_DISTRIBUTIONS
        if key not in table:
            raise ConfigurationError(
                f"unknown 3-query distribution {name!r}; expected one of {sorted(table)}"
            )
        return table[key]
    table = TWELVE_QUERY_DISTRIBUTIONS
    if key not in table:
        raise ConfigurationError(
            f"unknown multi-query distribution {name!r}; expected one of {sorted(table)}"
        )
    base = table[key]
    if query_count == base.count:
        return base
    return scale_distribution(base, query_count)


def scale_distribution(base: WindowDistribution, query_count: int) -> WindowDistribution:
    """Scale a base distribution to a different number of queries.

    The paper sets window distributions for 24 and 36 queries "accordingly";
    we interpret this as subdividing each base window interval evenly while
    preserving the overall range and shape.  For a multiple ``k`` of the
    base count, every base window ``w_i`` is replaced by ``k`` windows
    interpolated between ``w_{i-1}`` and ``w_i``.
    """
    if query_count <= 0:
        raise ConfigurationError(f"query_count must be positive, got {query_count}")
    if query_count % base.count != 0:
        raise ConfigurationError(
            f"query_count {query_count} must be a multiple of the base distribution "
            f"size {base.count}"
        )
    factor = query_count // base.count
    if factor == 1:
        return base
    windows: list[float] = []
    previous = 0.0
    for upper in base.windows:
        step = (upper - previous) / factor
        for i in range(1, factor + 1):
            windows.append(round(previous + step * i, 6))
        previous = upper
    return WindowDistribution(f"{base.name}-x{factor}", tuple(windows))


def build_workload(
    windows: Sequence[float],
    join_selectivity: float = 0.1,
    filter_selectivities: Sequence[float] | None = None,
    filter_on_left: bool = True,
    left_stream: str = "A",
    right_stream: str = "B",
    name_prefix: str = "Q",
    join_condition=None,
) -> QueryWorkload:
    """Build a workload with the given windows and selectivities.

    ``filter_selectivities`` gives the selectivity Sσ of the selection on the
    left stream for each query; ``None`` or a value of 1.0 means the query
    has no selection.  Filters are placed on the left stream only, matching
    the paper's experiments (σ(A) ⋈ B).  ``join_condition`` overrides the
    default modular-match condition (e.g. an equi-join for hash probing —
    the experiment harness approximates the requested S1 with the key-domain
    size there).
    """
    if join_condition is None:
        join_condition = selectivity_join(join_selectivity)
    count = len(windows)
    if filter_selectivities is None:
        filter_selectivities = [1.0] * count
    if len(filter_selectivities) != count:
        raise ConfigurationError(
            "filter_selectivities must be as long as windows "
            f"({len(filter_selectivities)} != {count})"
        )
    queries = []
    for index, window in enumerate(windows):
        selectivity = filter_selectivities[index]
        predicate: Predicate = (
            selectivity_filter(selectivity) if selectivity < 1.0 else TruePredicate()
        )
        left_filter = predicate if filter_on_left else TruePredicate()
        right_filter = TruePredicate() if filter_on_left else predicate
        queries.append(
            ContinuousQuery(
                name=f"{name_prefix}{index + 1}",
                window=float(window),
                join_condition=join_condition,
                left_filter=left_filter,
                right_filter=right_filter,
                left_stream=left_stream,
                right_stream=right_stream,
            )
        )
    return QueryWorkload(queries)


def three_query_workload(
    distribution: str = "uniform",
    join_selectivity: float = 0.1,
    filter_selectivity: float = 0.5,
) -> QueryWorkload:
    """The three-query workload of Section 7.2.

    Q1 has no selection; Q2 and Q3 carry a selection σ(A) with selectivity
    ``filter_selectivity`` — exactly the paper's Q1 (A ⋈ B), Q2 (σ(A) ⋈ B),
    Q3 (σ(A) ⋈ B) with windows from the chosen Table 3 distribution.
    """
    dist = window_distribution(distribution, query_count=3)
    selectivities = [1.0, filter_selectivity, filter_selectivity]
    return build_workload(
        dist.windows,
        join_selectivity=join_selectivity,
        filter_selectivities=selectivities,
    )


def multi_query_workload(
    distribution: str = "uniform",
    query_count: int = 12,
    join_selectivity: float = 0.025,
) -> QueryWorkload:
    """The N-query workload of Section 7.3 (no selections)."""
    dist = window_distribution(distribution, query_count=query_count)
    return build_workload(dist.windows, join_selectivity=join_selectivity)
