"""Continuous query model.

A :class:`ContinuousQuery` is the unit registered with the multi-query
optimizer: a sliding-window join between two streams with optional
selections on either input, mirroring the paper's running example

.. code-block:: sql

    SELECT A.* FROM Temperature A, Humidity B
    WHERE A.LocationId = B.LocationId AND A.Value > Threshold
    WINDOW 60 min

A :class:`QueryWorkload` is a set of such queries over the *same* pair of
streams with the *same* join condition — the precondition for state-slice
sharing.  The workload knows the distinct window sizes, per-slice predicate
disjunctions and everything else the chain builders need.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator, Sequence

from repro.engine.errors import QueryError
from repro.query.predicates import (
    JoinCondition,
    Predicate,
    TruePredicate,
    disjunction,
)
from repro.query.windows import TimeWindow

__all__ = ["ContinuousQuery", "QueryWorkload"]


@dataclass(frozen=True)
class ContinuousQuery:
    """A window-join continuous query.

    Parameters
    ----------
    name:
        Unique query identifier (for example ``"Q1"``).
    window:
        Sliding-window size in seconds, applied to both inputs as in the
        paper's ``WINDOW`` clause.
    join_condition:
        The pairwise join condition shared by all queries in a workload.
    left_filter / right_filter:
        Selections applied to the left / right input stream before the join
        (``TruePredicate`` when the query has no selection).
    left_stream / right_stream:
        Names of the input streams.
    """

    name: str
    window: float
    join_condition: JoinCondition
    left_filter: Predicate = field(default_factory=TruePredicate)
    right_filter: Predicate = field(default_factory=TruePredicate)
    left_stream: str = "A"
    right_stream: str = "B"

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise QueryError(
                f"query {self.name!r} has non-positive window {self.window}"
            )

    @property
    def time_window(self) -> TimeWindow:
        return TimeWindow(self.window)

    @property
    def has_selection(self) -> bool:
        return not isinstance(self.left_filter, TruePredicate) or not isinstance(
            self.right_filter, TruePredicate
        )

    def with_window(self, window: float) -> "ContinuousQuery":
        return replace(self, window=window)

    def describe(self) -> str:
        parts = [
            f"{self.name}: {self.left_stream}[{self.window:g}s] JOIN "
            f"{self.right_stream}[{self.window:g}s] ON {self.join_condition.describe()}"
        ]
        if not isinstance(self.left_filter, TruePredicate):
            parts.append(f"WHERE {self.left_stream}.{self.left_filter.describe()}")
        if not isinstance(self.right_filter, TruePredicate):
            parts.append(f"WHERE {self.right_stream}.{self.right_filter.describe()}")
        return " ".join(parts)


class QueryWorkload:
    """An ordered collection of shareable continuous queries.

    The workload validates the sharing preconditions: all queries must join
    the same pair of streams with the same join condition (the paper's
    setting throughout Sections 4-6).  Queries are kept sorted by window
    size ascending, which is the order in which the chain builders consume
    them.
    """

    def __init__(self, queries: Iterable[ContinuousQuery]) -> None:
        query_list = list(queries)
        if not query_list:
            raise QueryError("a workload requires at least one query")
        names = [query.name for query in query_list]
        if len(names) != len(set(names)):
            raise QueryError(f"duplicate query names in workload: {names}")
        reference = query_list[0]
        for query in query_list[1:]:
            if (query.left_stream, query.right_stream) != (
                reference.left_stream,
                reference.right_stream,
            ):
                raise QueryError(
                    "all queries in a workload must join the same streams; "
                    f"{query.name!r} joins {query.left_stream}/{query.right_stream} "
                    f"but {reference.name!r} joins "
                    f"{reference.left_stream}/{reference.right_stream}"
                )
            if query.join_condition.describe() != reference.join_condition.describe():
                raise QueryError(
                    "all queries in a workload must share the join condition; "
                    f"{query.name!r} uses {query.join_condition.describe()!r} but "
                    f"{reference.name!r} uses {reference.join_condition.describe()!r}"
                )
        self.queries = sorted(query_list, key=lambda q: (q.window, q.name))

    # -- container protocol -----------------------------------------------------
    def __iter__(self) -> Iterator[ContinuousQuery]:
        return iter(self.queries)

    def __len__(self) -> int:
        return len(self.queries)

    def __getitem__(self, index: int) -> ContinuousQuery:
        return self.queries[index]

    def query(self, name: str) -> ContinuousQuery:
        for query in self.queries:
            if query.name == name:
                return query
        raise QueryError(f"workload has no query named {name!r}")

    # -- shared properties --------------------------------------------------------
    @property
    def left_stream(self) -> str:
        return self.queries[0].left_stream

    @property
    def right_stream(self) -> str:
        return self.queries[0].right_stream

    @property
    def join_condition(self) -> JoinCondition:
        return self.queries[0].join_condition

    @property
    def max_window(self) -> float:
        return max(query.window for query in self.queries)

    def window_sizes(self) -> list[float]:
        """Distinct window sizes, ascending."""
        return sorted(set(query.window for query in self.queries))

    def names(self) -> list[str]:
        return [query.name for query in self.queries]

    def has_selections(self) -> bool:
        return any(query.has_selection for query in self.queries)

    def queries_with_window_at_least(self, window: float) -> list[ContinuousQuery]:
        """Queries whose window is >= ``window`` (they consume that slice)."""
        return [query for query in self.queries if query.window >= window]

    def slice_filter(self, slice_start: float, side: str = "left") -> Predicate:
        """Disjunction of the filters of all queries needing slices >= ``slice_start``.

        This is the predicate ``σ'_i = cond_i OR ... OR cond_N`` installed in
        front of slice ``i`` by the selection push-down of Section 6.1: a
        tuple only needs to enter slice ``i`` if at least one query with a
        window large enough to reach that slice would accept it.
        """
        relevant = self.queries_with_window_at_least(slice_start + 1e-12)
        if not relevant:
            relevant = [self.queries[-1]]
        if side == "left":
            predicates = [query.left_filter for query in relevant]
        elif side == "right":
            predicates = [query.right_filter for query in relevant]
        else:
            raise QueryError(f"side must be 'left' or 'right', got {side!r}")
        return disjunction(predicates)

    def describe(self) -> str:
        return "\n".join(query.describe() for query in self.queries)


def workload_from_windows(
    windows: Sequence[float],
    join_condition: JoinCondition,
    left_filters: Sequence[Predicate] | None = None,
    right_filters: Sequence[Predicate] | None = None,
    left_stream: str = "A",
    right_stream: str = "B",
    name_prefix: str = "Q",
) -> QueryWorkload:
    """Build a workload from parallel lists of windows and filters."""
    count = len(windows)
    lefts = list(left_filters) if left_filters is not None else [TruePredicate()] * count
    rights = list(right_filters) if right_filters is not None else [TruePredicate()] * count
    if len(lefts) != count or len(rights) != count:
        raise QueryError(
            "left_filters and right_filters must have the same length as windows"
        )
    queries = [
        ContinuousQuery(
            name=f"{name_prefix}{i + 1}",
            window=float(windows[i]),
            join_condition=join_condition,
            left_filter=lefts[i],
            right_filter=rights[i],
            left_stream=left_stream,
            right_stream=right_stream,
        )
        for i in range(count)
    ]
    return QueryWorkload(queries)


__all__.append("workload_from_windows")
