"""Predicates and join conditions.

Two families of conditions are used by the paper and reproduced here:

* **Selection predicates** — boolean functions over a single tuple, such as
  ``A.value > Threshold`` in query Q2 of the motivating example.  Predicates
  compose with AND/OR/NOT; a disjunction of per-query predicates is what the
  selection push-down of Section 6 installs in front of each slice.

* **Join conditions** — boolean functions over a pair of tuples.  The paper
  presents equi-joins but notes the technique applies to any condition; we
  provide the equi-join plus a "modular match" condition whose selectivity
  can be dialled exactly, which the experiment harness uses to reproduce the
  S1 settings of Tables 1 and 3.

Every condition knows its *estimated selectivity* so the analytical cost
model and the CPU-Opt chain builder can reason about plans without running
them.
"""

from __future__ import annotations

import operator as _operator
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from repro.engine.columns import FLOAT_EXACT_MAX, INT_EXACT_MAX, key_level
from repro.engine.errors import QueryError
from repro.streams.generators import JOIN_KEY_DOMAIN
from repro.streams.tuples import StreamTuple

__all__ = [
    "Predicate",
    "ComparisonPredicate",
    "TruePredicate",
    "FalsePredicate",
    "AndPredicate",
    "OrPredicate",
    "NotPredicate",
    "FunctionPredicate",
    "attribute_gt",
    "attribute_ge",
    "attribute_lt",
    "attribute_le",
    "attribute_eq",
    "selectivity_filter",
    "disjunction",
    "conjunction",
    "JoinCondition",
    "EquiJoinCondition",
    "ModularMatchCondition",
    "CrossProductCondition",
    "ThetaJoinCondition",
    "selectivity_join",
]

_COMPARATORS: dict[str, Callable[[Any, Any], bool]] = {
    ">": _operator.gt,
    ">=": _operator.ge,
    "<": _operator.lt,
    "<=": _operator.le,
    "==": _operator.eq,
    "!=": _operator.ne,
}


# ---------------------------------------------------------------------------
# Selection predicates
# ---------------------------------------------------------------------------
class Predicate:
    """Boolean condition over a single stream tuple."""

    #: Estimated fraction of tuples satisfying the predicate (the paper's Sσ).
    selectivity: float = 1.0

    def matches(self, tup: StreamTuple) -> bool:
        raise NotImplementedError

    def __call__(self, tup: StreamTuple) -> bool:
        return self.matches(tup)

    def match_mask(self, values: Sequence[float]) -> Any:
        """Vectorized :meth:`matches` over a column of attribute values.

        ``values`` must contain only exact ``float`` objects (the caller
        checks this while building the column).  Returns a boolean ndarray
        elementwise-identical to ``matches``, or ``None`` when this
        predicate has no columnar form and the caller must fall back to
        per-tuple evaluation.
        """
        return None

    # -- composition -------------------------------------------------------
    def __and__(self, other: "Predicate") -> "Predicate":
        return AndPredicate((self, other))

    def __or__(self, other: "Predicate") -> "Predicate":
        return OrPredicate((self, other))

    def __invert__(self) -> "Predicate":
        return NotPredicate(self)

    def describe(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class TruePredicate(Predicate):
    """Always true; selectivity 1 (a query without a selection)."""

    selectivity: float = 1.0

    def matches(self, tup: StreamTuple) -> bool:
        return True

    def describe(self) -> str:
        return "true"


@dataclass(frozen=True)
class FalsePredicate(Predicate):
    """Always false; selectivity 0."""

    selectivity: float = 0.0

    def matches(self, tup: StreamTuple) -> bool:
        return False

    def describe(self) -> str:
        return "false"


@dataclass(frozen=True)
class ComparisonPredicate(Predicate):
    """``tuple.attribute <op> constant`` with a known selectivity estimate."""

    attribute: str
    op: str
    constant: Any
    selectivity: float = 0.5

    def __post_init__(self) -> None:
        if self.op not in _COMPARATORS:
            raise QueryError(
                f"unknown comparison operator {self.op!r}; expected one of "
                f"{sorted(_COMPARATORS)}"
            )
        if not 0.0 <= self.selectivity <= 1.0:
            raise QueryError(
                f"selectivity must lie in [0, 1], got {self.selectivity}"
            )

    def matches(self, tup: StreamTuple) -> bool:
        return _COMPARATORS[self.op](tup[self.attribute], self.constant)

    def match_mask(self, values: Sequence[float]) -> Any:
        constant = self.constant
        kind = type(constant)
        if kind is not float:
            # Ints (and bools) compare exactly against a float column only
            # while they are exactly representable in a double.
            if kind is not int and kind is not bool:
                return None
            if not -FLOAT_EXACT_MAX <= constant <= FLOAT_EXACT_MAX:
                return None
            constant = float(constant)
        return _COMPARATORS[self.op](np.asarray(values, dtype=np.float64), constant)

    def describe(self) -> str:
        return f"{self.attribute} {self.op} {self.constant!r}"


@dataclass(frozen=True)
class FunctionPredicate(Predicate):
    """Wraps an arbitrary callable; used by tests and advanced callers."""

    function: Callable[[StreamTuple], bool]
    selectivity: float = 0.5
    label: str = "fn"

    def matches(self, tup: StreamTuple) -> bool:
        return bool(self.function(tup))

    def describe(self) -> str:
        return self.label


class AndPredicate(Predicate):
    """Conjunction of child predicates (independence-based selectivity)."""

    def __init__(self, children: Sequence[Predicate]) -> None:
        self.children = tuple(children)
        if not self.children:
            raise QueryError("AndPredicate requires at least one child")
        selectivity = 1.0
        for child in self.children:
            selectivity *= child.selectivity
        self.selectivity = selectivity

    def matches(self, tup: StreamTuple) -> bool:
        return all(child.matches(tup) for child in self.children)

    def describe(self) -> str:
        return "(" + " AND ".join(child.describe() for child in self.children) + ")"


class OrPredicate(Predicate):
    """Disjunction of child predicates.

    The selectivity estimate assumes independence:
    ``1 - prod(1 - s_i)``.  For the nested disjunctions built by the
    selection push-down of Section 6 this matches the paper's intuition that
    a tuple "survives until the k-th slice" when any of the later queries'
    predicates accept it.
    """

    def __init__(self, children: Sequence[Predicate]) -> None:
        self.children = tuple(children)
        if not self.children:
            raise QueryError("OrPredicate requires at least one child")
        miss = 1.0
        for child in self.children:
            miss *= 1.0 - child.selectivity
        self.selectivity = 1.0 - miss

    def matches(self, tup: StreamTuple) -> bool:
        return any(child.matches(tup) for child in self.children)

    def describe(self) -> str:
        return "(" + " OR ".join(child.describe() for child in self.children) + ")"


class NotPredicate(Predicate):
    """Negation of a child predicate."""

    def __init__(self, child: Predicate) -> None:
        self.child = child
        self.selectivity = 1.0 - child.selectivity

    def matches(self, tup: StreamTuple) -> bool:
        return not self.child.matches(tup)

    def describe(self) -> str:
        return f"NOT {self.child.describe()}"


# -- convenience constructors -------------------------------------------------
def attribute_gt(attribute: str, constant: Any, selectivity: float = 0.5) -> Predicate:
    return ComparisonPredicate(attribute, ">", constant, selectivity)


def attribute_ge(attribute: str, constant: Any, selectivity: float = 0.5) -> Predicate:
    return ComparisonPredicate(attribute, ">=", constant, selectivity)


def attribute_lt(attribute: str, constant: Any, selectivity: float = 0.5) -> Predicate:
    return ComparisonPredicate(attribute, "<", constant, selectivity)


def attribute_le(attribute: str, constant: Any, selectivity: float = 0.5) -> Predicate:
    return ComparisonPredicate(attribute, "<=", constant, selectivity)


def attribute_eq(attribute: str, constant: Any, selectivity: float = 0.1) -> Predicate:
    return ComparisonPredicate(attribute, "==", constant, selectivity)


def selectivity_filter(selectivity: float, attribute: str = "value") -> Predicate:
    """A filter with selectivity exactly ``selectivity`` on uniform [0, 1) data.

    The synthetic generator draws ``value`` uniformly from [0, 1); the
    predicate ``value > 1 - Sσ`` therefore passes a fraction Sσ of tuples.
    A selectivity of 1 returns :class:`TruePredicate` (no selection at all),
    matching the paper's "base case" of queries without filters.
    """
    if not 0.0 <= selectivity <= 1.0:
        raise QueryError(f"selectivity must lie in [0, 1], got {selectivity}")
    if selectivity >= 1.0:
        return TruePredicate()
    if selectivity <= 0.0:
        return FalsePredicate()
    return ComparisonPredicate(attribute, ">", 1.0 - selectivity, selectivity)


def _dedupe(predicates: list[Predicate]) -> list[Predicate]:
    """Drop structurally identical predicates (compared by describe())."""
    seen: set[str] = set()
    unique = []
    for predicate in predicates:
        key = predicate.describe()
        if key not in seen:
            seen.add(key)
            unique.append(predicate)
    return unique


def disjunction(predicates: Iterable[Predicate]) -> Predicate:
    """OR-combine predicates, simplifying trivial cases and duplicates.

    Duplicate elimination matters for the selection push-down of Section 6:
    when several queries share the same predicate, the per-slice disjunction
    collapses back to that predicate, so no residual re-evaluation is needed
    on their results.
    """
    children = _dedupe(list(predicates))
    if not children:
        return TruePredicate()
    if any(isinstance(p, TruePredicate) for p in children):
        return TruePredicate()
    children = [p for p in children if not isinstance(p, FalsePredicate)]
    if not children:
        return FalsePredicate()
    if len(children) == 1:
        return children[0]
    return OrPredicate(children)


def conjunction(predicates: Iterable[Predicate]) -> Predicate:
    """AND-combine predicates, simplifying trivial cases and duplicates."""
    children = _dedupe(list(predicates))
    if not children:
        return TruePredicate()
    if any(isinstance(p, FalsePredicate) for p in children):
        return FalsePredicate()
    children = [p for p in children if not isinstance(p, TruePredicate)]
    if not children:
        return TruePredicate()
    if len(children) == 1:
        return children[0]
    return AndPredicate(children)


# ---------------------------------------------------------------------------
# Join conditions
# ---------------------------------------------------------------------------
def _always_true(tup: StreamTuple) -> bool:
    return True


class JoinCondition:
    """Boolean condition over a pair of tuples (one per stream)."""

    #: Estimated join selectivity: output / Cartesian-product size (paper's S1).
    selectivity: float = 1.0

    #: ``(left_attribute, right_attribute)`` a columnar state should keep as
    #: its key column for vectorized probing, or ``None`` when the condition
    #: has no columnar form (probing falls back to the bound per-tuple check).
    columnar_attributes: tuple[str, str] | None = None
    #: True when every candidate matches regardless of keys (cross product),
    #: so the columnar probe can skip mask evaluation entirely.
    columnar_all_match: bool = False

    def match_mask(self, probe_key: Any, keys: Any, int_keys: bool) -> Any:
        """Vectorized probe: a boolean mask over a candidate key column.

        ``keys`` is the float64 key column of the resident candidates (built
        on the *opposite* side's attribute of :attr:`columnar_attributes`)
        and ``int_keys`` reports whether every resident key is an
        arithmetic-safe integer.  The mask must agree elementwise with the
        bound per-tuple check; return ``None`` whenever exactness cannot be
        guaranteed for this ``probe_key`` and the caller falls back.
        """
        return None

    def matches(self, left: StreamTuple, right: StreamTuple) -> bool:
        raise NotImplementedError

    def __call__(self, left: StreamTuple, right: StreamTuple) -> bool:
        return self.matches(left, right)

    def bind_left(self, left: StreamTuple) -> Callable[[StreamTuple], bool]:
        """Pre-bound probe predicate: ``check(right) == matches(left, right)``.

        A nested-loop probe evaluates one fixed tuple against every resident
        candidate; pre-binding lets subclasses hoist the fixed side's
        attribute lookups (and any derived constants) out of the inner loop,
        which is where per-probe method-resolution and dict-lookup overhead
        dominates.  The returned callable must be semantically identical to
        ``matches`` — the differential suites hold operators to that.
        """
        matches = self.matches

        def check(right: StreamTuple) -> bool:
            return matches(left, right)

        return check

    def bind_right(self, right: StreamTuple) -> Callable[[StreamTuple], bool]:
        """Pre-bound probe predicate: ``check(left) == matches(left, right)``."""
        matches = self.matches

        def check(left: StreamTuple) -> bool:
            return matches(left, right)

        return check

    def describe(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class CrossProductCondition(JoinCondition):
    """Every pair matches (Cartesian product); selectivity 1.

    The chain execution trace of Table 2 in the paper uses this semantics
    ("every a tuple will match every b tuple").
    """

    selectivity: float = 1.0

    columnar_all_match = True

    def matches(self, left: StreamTuple, right: StreamTuple) -> bool:
        return True

    def bind_left(self, left: StreamTuple) -> Callable[[StreamTuple], bool]:
        return _always_true

    def bind_right(self, right: StreamTuple) -> Callable[[StreamTuple], bool]:
        return _always_true

    def describe(self) -> str:
        return "true (cross product)"


@dataclass(frozen=True)
class EquiJoinCondition(JoinCondition):
    """``left.attribute == right.attribute`` equi-join.

    ``key_domain`` is the size of the key domain used to estimate the join
    selectivity (1 / domain for uniform keys).
    """

    left_attribute: str
    right_attribute: str
    key_domain: int = JOIN_KEY_DOMAIN

    def __post_init__(self) -> None:
        if self.key_domain <= 0:
            raise QueryError(f"key_domain must be positive, got {self.key_domain}")

    @property
    def selectivity(self) -> float:  # type: ignore[override]
        return 1.0 / self.key_domain

    @property
    def columnar_attributes(self) -> tuple[str, str]:  # type: ignore[override]
        return (self.left_attribute, self.right_attribute)

    def match_mask(self, probe_key: Any, keys: Any, int_keys: bool) -> Any:
        if key_level(probe_key) >= 2:
            return None
        return keys == probe_key

    def matches(self, left: StreamTuple, right: StreamTuple) -> bool:
        return left[self.left_attribute] == right[self.right_attribute]

    def bind_left(self, left: StreamTuple) -> Callable[[StreamTuple], bool]:
        # Hoists the probing side's key lookup out of the candidate loop;
        # the candidate side reads its payload dict directly.
        key = left[self.left_attribute]
        attribute = self.right_attribute

        def check(right: StreamTuple) -> bool:
            return right.values[attribute] == key

        return check

    def bind_right(self, right: StreamTuple) -> Callable[[StreamTuple], bool]:
        key = right[self.right_attribute]
        attribute = self.left_attribute

        def check(left: StreamTuple) -> bool:
            return left.values[attribute] == key

        return check

    def describe(self) -> str:
        return f"{self.left_attribute} == {self.right_attribute}"


@dataclass(frozen=True)
class ModularMatchCondition(JoinCondition):
    """Value-based join condition with exactly controllable selectivity.

    A pair matches when ``(left.key + right.key) mod domain < threshold``.
    With keys uniform on ``[0, domain)`` the sum modulo ``domain`` is also
    uniform, so the selectivity is exactly ``threshold / domain``.  The
    experiment harness uses this to hit the paper's S1 values (0.025, 0.1,
    0.4) precisely.
    """

    threshold: int
    domain: int = JOIN_KEY_DOMAIN
    attribute: str = "join_key"

    def __post_init__(self) -> None:
        if self.domain <= 0:
            raise QueryError(f"domain must be positive, got {self.domain}")
        if not 0 <= self.threshold <= self.domain:
            raise QueryError(
                f"threshold must lie in [0, domain]; got {self.threshold} for "
                f"domain {self.domain}"
            )

    @property
    def selectivity(self) -> float:  # type: ignore[override]
        return self.threshold / self.domain

    @property
    def columnar_attributes(self) -> tuple[str, str]:  # type: ignore[override]
        return (self.attribute, self.attribute)

    def match_mask(self, probe_key: Any, keys: Any, int_keys: bool) -> Any:
        kind = type(probe_key)
        if kind is not int and kind is not bool:
            return None
        if not int_keys or not -INT_EXACT_MAX <= probe_key <= INT_EXACT_MAX:
            # Modular arithmetic is only exact in float64 for small integers
            # on *both* sides; anything else takes the per-tuple check.
            return None
        return (keys + float(probe_key)) % self.domain < self.threshold

    def matches(self, left: StreamTuple, right: StreamTuple) -> bool:
        return (left[self.attribute] + right[self.attribute]) % self.domain < self.threshold

    def _bind(self, bound: StreamTuple) -> Callable[[StreamTuple], bool]:
        # The condition is symmetric in its two sides, so one binding
        # serves both: hoist the fixed side's key and the dataclass field
        # reads out of the candidate loop.
        base = bound[self.attribute]
        attribute = self.attribute
        domain = self.domain
        threshold = self.threshold

        def check(other: StreamTuple) -> bool:
            return (base + other.values[attribute]) % domain < threshold

        return check

    bind_left = _bind
    bind_right = _bind

    def describe(self) -> str:
        return f"(l.{self.attribute} + r.{self.attribute}) % {self.domain} < {self.threshold}"


@dataclass(frozen=True)
class ThetaJoinCondition(JoinCondition):
    """General theta-join wrapping an arbitrary pairwise callable."""

    function: Callable[[StreamTuple, StreamTuple], bool]
    selectivity: float = 0.5
    label: str = "theta"

    def matches(self, left: StreamTuple, right: StreamTuple) -> bool:
        return bool(self.function(left, right))

    def describe(self) -> str:
        return self.label


def selectivity_join(selectivity: float, domain: int = JOIN_KEY_DOMAIN) -> JoinCondition:
    """Return a join condition with selectivity ``selectivity`` (exact).

    Selectivity 1 returns the cross-product condition used by the Table 2
    trace; other values use :class:`ModularMatchCondition`.
    """
    if not 0.0 < selectivity <= 1.0:
        raise QueryError(f"join selectivity must lie in (0, 1], got {selectivity}")
    if selectivity >= 1.0:
        return CrossProductCondition()
    threshold = round(selectivity * domain)
    if threshold == 0:
        raise QueryError(
            f"selectivity {selectivity} is too small for domain {domain}; "
            f"increase the domain"
        )
    return ModularMatchCondition(threshold=threshold, domain=domain)
