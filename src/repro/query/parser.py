"""Parser for the paper's SQL-like continuous query syntax.

The motivating example of the paper writes queries in an SQL dialect with a
``WINDOW`` clause:

.. code-block:: sql

    SELECT A.* FROM Temperature A, Humidity B
    WHERE A.LocationId = B.LocationId AND A.Value > 10.0
    WINDOW 60 min

:func:`parse_query` turns such text into a
:class:`~repro.query.query.ContinuousQuery`.  The dialect is deliberately
small — two relations with aliases, an equi-join predicate between the two
aliases, optional AND-ed comparison filters on either alias, and a window
clause in seconds, minutes or hours.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.engine.errors import ParseError
from repro.query.predicates import (
    ComparisonPredicate,
    EquiJoinCondition,
    JoinCondition,
    Predicate,
    TruePredicate,
    conjunction,
)
from repro.query.query import ContinuousQuery

__all__ = ["parse_query", "parse_workload_text", "ParsedClauses"]

_WINDOW_UNITS = {
    "s": 1.0,
    "sec": 1.0,
    "secs": 1.0,
    "second": 1.0,
    "seconds": 1.0,
    "min": 60.0,
    "mins": 60.0,
    "minute": 60.0,
    "minutes": 60.0,
    "h": 3600.0,
    "hour": 3600.0,
    "hours": 3600.0,
}

_QUERY_RE = re.compile(
    r"SELECT\s+(?P<select>.+?)\s+"
    r"FROM\s+(?P<from>.+?)\s+"
    r"WHERE\s+(?P<where>.+?)\s+"
    r"WINDOW\s+(?P<window>.+?)\s*$",
    re.IGNORECASE | re.DOTALL,
)

_RELATION_RE = re.compile(r"^\s*(?P<stream>\w+)\s+(?P<alias>\w+)\s*$")

_JOIN_RE = re.compile(
    r"^\s*(?P<lalias>\w+)\.(?P<lattr>\w+)\s*=\s*(?P<ralias>\w+)\.(?P<rattr>\w+)\s*$"
)

_FILTER_RE = re.compile(
    r"^\s*(?P<alias>\w+)\.(?P<attr>\w+)\s*(?P<op>>=|<=|!=|=|>|<)\s*(?P<value>[-+]?\d+(?:\.\d+)?)\s*$"
)

_WINDOW_RE = re.compile(r"^\s*(?P<amount>\d+(?:\.\d+)?)\s*(?P<unit>\w+)?\s*$")


@dataclass
class ParsedClauses:
    """Intermediate representation of the four clauses of a parsed query."""

    select: str
    relations: list[tuple[str, str]]
    conditions: list[str]
    window_seconds: float


def _split_conditions(where: str) -> list[str]:
    return [part.strip() for part in re.split(r"\s+AND\s+", where, flags=re.IGNORECASE)]


def _parse_window(text: str) -> float:
    match = _WINDOW_RE.match(text.strip())
    if not match:
        raise ParseError(f"cannot parse WINDOW clause {text!r}")
    amount = float(match.group("amount"))
    unit = (match.group("unit") or "sec").lower()
    if unit not in _WINDOW_UNITS:
        raise ParseError(
            f"unknown window unit {unit!r}; expected one of {sorted(set(_WINDOW_UNITS))}"
        )
    return amount * _WINDOW_UNITS[unit]


def _parse_clauses(text: str) -> ParsedClauses:
    normalized = " ".join(text.strip().split())
    match = _QUERY_RE.match(normalized)
    if not match:
        raise ParseError(
            "query must have the form 'SELECT ... FROM ... WHERE ... WINDOW ...'; "
            f"got {text!r}"
        )
    relations = []
    for part in match.group("from").split(","):
        relation_match = _RELATION_RE.match(part)
        if not relation_match:
            raise ParseError(f"cannot parse FROM item {part!r}; expected 'Stream Alias'")
        relations.append((relation_match.group("stream"), relation_match.group("alias")))
    if len(relations) != 2:
        raise ParseError(
            f"exactly two relations are supported (a binary window join); got {len(relations)}"
        )
    return ParsedClauses(
        select=match.group("select").strip(),
        relations=relations,
        conditions=_split_conditions(match.group("where")),
        window_seconds=_parse_window(match.group("window")),
    )


def _comparison_selectivity(op: str) -> float:
    """Default selectivity estimate when the caller provides none."""
    return 0.1 if op in ("=", "==") else 0.5


def parse_query(
    text: str,
    name: str = "Q",
    filter_selectivity: float | None = None,
    key_domain: int = 1000,
) -> ContinuousQuery:
    """Parse one SQL-like continuous query into a :class:`ContinuousQuery`.

    Parameters
    ----------
    text:
        The query text.
    name:
        Name assigned to the resulting query.
    filter_selectivity:
        Optional selectivity estimate attached to every parsed filter
        predicate (the parser cannot know data statistics).
    key_domain:
        Domain-size estimate for the equi-join key, used for the join
        selectivity estimate.
    """
    clauses = _parse_clauses(text)
    (left_stream, left_alias), (right_stream, right_alias) = clauses.relations
    join_condition: JoinCondition | None = None
    left_filters: list[Predicate] = []
    right_filters: list[Predicate] = []

    for condition in clauses.conditions:
        join_match = _JOIN_RE.match(condition)
        if join_match:
            aliases = {join_match.group("lalias"), join_match.group("ralias")}
            if aliases == {left_alias, right_alias}:
                if join_condition is not None:
                    raise ParseError(
                        f"multiple join predicates are not supported: {condition!r}"
                    )
                if join_match.group("lalias") == left_alias:
                    left_attr, right_attr = join_match.group("lattr"), join_match.group("rattr")
                else:
                    left_attr, right_attr = join_match.group("rattr"), join_match.group("lattr")
                join_condition = EquiJoinCondition(
                    left_attribute=left_attr,
                    right_attribute=right_attr,
                    key_domain=key_domain,
                )
                continue
        filter_match = _FILTER_RE.match(condition)
        if not filter_match:
            raise ParseError(f"cannot parse WHERE condition {condition!r}")
        op = filter_match.group("op")
        op = "==" if op == "=" else op
        selectivity = (
            filter_selectivity
            if filter_selectivity is not None
            else _comparison_selectivity(op)
        )
        predicate = ComparisonPredicate(
            attribute=filter_match.group("attr"),
            op=op,
            constant=float(filter_match.group("value")),
            selectivity=selectivity,
        )
        alias = filter_match.group("alias")
        if alias == left_alias:
            left_filters.append(predicate)
        elif alias == right_alias:
            right_filters.append(predicate)
        else:
            raise ParseError(
                f"condition {condition!r} references unknown alias {alias!r}; "
                f"known aliases: {left_alias!r}, {right_alias!r}"
            )

    if join_condition is None:
        raise ParseError("query has no join predicate between the two relations")

    return ContinuousQuery(
        name=name,
        window=clauses.window_seconds,
        join_condition=join_condition,
        left_filter=conjunction(left_filters) if left_filters else TruePredicate(),
        right_filter=conjunction(right_filters) if right_filters else TruePredicate(),
        left_stream=left_stream,
        right_stream=right_stream,
    )


def parse_workload_text(
    text: str,
    filter_selectivity: float | None = None,
    key_domain: int = 1000,
) -> list[ContinuousQuery]:
    """Parse several queries separated by semicolons or blank lines."""
    chunks = [chunk.strip() for chunk in re.split(r";|\n\s*\n", text) if chunk.strip()]
    if not chunks:
        raise ParseError("no queries found in workload text")
    return [
        parse_query(
            chunk,
            name=f"Q{i + 1}",
            filter_selectivity=filter_selectivity,
            key_domain=key_domain,
        )
        for i, chunk in enumerate(chunks)
    ]
