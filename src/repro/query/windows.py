"""Sliding-window specifications.

The paper presents its techniques with time-based sliding windows and notes
that count-based windows are handled identically.  Both are modelled here.

A :class:`TimeWindow` of size ``W`` keeps a tuple ``a`` alive while a newer
tuple ``b`` from the opposite stream satisfies ``Tb - Ta < W``.  A
:class:`CountWindow` of size ``N`` keeps the last ``N`` tuples.

A :class:`WindowSlice` is the half-open interval ``[start, end)`` of
timestamp offsets assigned to one sliced window join (Definition 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.engine.errors import QueryError

__all__ = ["TimeWindow", "CountWindow", "WindowSlice", "slice_boundaries", "as_count"]


def as_count(window: float, context: str = "window") -> int:
    """Coerce a window size to a positive integer tuple count.

    Count-based plan builders accept the same :class:`ContinuousQuery`
    objects as the time-based ones (``window`` is a float there); this
    validates that every window is usable as a rank boundary.
    """
    count = int(window)
    if count != window or count <= 0:
        raise QueryError(
            f"{context} must be a positive integer tuple count, got {window!r}"
        )
    return count


@dataclass(frozen=True, slots=True, order=True)
class TimeWindow:
    """A time-based sliding window of ``size`` seconds."""

    size: float

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise QueryError(f"window size must be positive, got {self.size}")

    def contains(self, older_timestamp: float, newer_timestamp: float) -> bool:
        """True when the older tuple is still inside the window of the newer."""
        return (newer_timestamp - older_timestamp) < self.size

    def describe(self) -> str:
        return f"WINDOW {self.size:g} sec"


@dataclass(frozen=True, slots=True, order=True)
class CountWindow:
    """A count-based sliding window holding the most recent ``size`` tuples."""

    size: int

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise QueryError(f"window size must be positive, got {self.size}")

    def describe(self) -> str:
        return f"WINDOW {self.size} rows"


@dataclass(frozen=True, slots=True, order=True)
class WindowSlice:
    """Half-open window range ``[start, end)`` of one sliced join.

    ``start`` and ``end`` are offsets (seconds for time-based windows, ranks
    for count-based windows) relative to the probing tuple's timestamp.
    The slice of the first join in a chain always starts at 0
    (Definition 2).
    """

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.start < 0:
            raise QueryError(f"slice start must be non-negative, got {self.start}")
        if self.end <= self.start:
            raise QueryError(
                f"slice end must exceed start, got [{self.start}, {self.end})"
            )

    @property
    def length(self) -> float:
        return self.end - self.start

    def contains_offset(self, offset: float) -> bool:
        """True when ``offset = T_probe - T_state`` falls inside the slice."""
        return self.start <= offset < self.end

    def describe(self) -> str:
        return f"[{self.start:g}, {self.end:g})"


def slice_boundaries(window_sizes: Sequence[float]) -> list[WindowSlice]:
    """Build the Mem-Opt slice list for a set of query window sizes.

    The returned slices are ``[0, w1), [w1, w2), ..., [w_{N-1}, w_N)`` for the
    distinct window sizes sorted ascending — one slice per distinct window,
    exactly the Mem-Opt chain of Section 5.1.
    """
    if not window_sizes:
        raise QueryError("at least one window size is required")
    distinct = sorted(set(float(w) for w in window_sizes))
    if distinct[0] <= 0:
        raise QueryError(f"window sizes must be positive, got {distinct[0]}")
    slices = []
    previous = 0.0
    for size in distinct:
        slices.append(WindowSlice(previous, size))
        previous = size
    return slices
