"""repro — reproduction of "State-Slice: New Paradigm of Multi-query
Optimization of Window-based Stream Queries" (Wang et al., VLDB 2006).

The package is organised in layers:

* :mod:`repro.streams` — tuple model, schemas and synthetic stream
  generators;
* :mod:`repro.engine` — the DSMS micro-kernel (operators, plans, executors,
  cost accounting);
* :mod:`repro.operators` — stream operators, including the sliced window
  joins that are the paper's core construct;
* :mod:`repro.query` — continuous queries, predicates, windows, parsing and
  workload generation;
* :mod:`repro.core` — the state-slice sharing paradigm: chain
  specifications, the Mem-Opt and CPU-Opt chain builders, selection
  push-down, online migration and the analytical cost model;
* :mod:`repro.baselines` — the sharing strategies of the literature that
  the paper compares against;
* :mod:`repro.runtime` — the live session layer: a :class:`StreamEngine`
  owns a shared chain and admits/removes queries while the stream runs,
  migrating slice boundaries online (Section 5.3);
* :mod:`repro.experiments` — the harness regenerating every figure and
  table of the paper's evaluation.

Quick start::

    from repro import three_query_workload, build_state_slice_plan, execute_plan
    from repro import generate_join_workload

    queries = three_query_workload("uniform", join_selectivity=0.1,
                                   filter_selectivity=0.5)
    plan = build_state_slice_plan(queries)
    data = generate_join_workload(rate_a=40, rate_b=40, duration=10, seed=7)
    report = execute_plan(plan, data.tuples, strategy="state-slice")
    print(report.summary())
"""

from repro.baselines import build_pullup_plan, build_pushdown_plan, build_unshared_plan
from repro.core import (
    ChainCostParameters,
    ChainSpec,
    SlicedJoinChain,
    SliceSpec,
    StreamStatistics,
    TwoQuerySettings,
    build_cpu_opt_chain,
    build_mem_opt_chain,
    build_state_slice_plan,
    selection_pullup_cost,
    selection_pushdown_cost,
    state_slice_cost,
    state_slice_savings,
)
from repro.engine import (
    ImmediateExecutor,
    MetricsCollector,
    QueryPlan,
    RunReport,
    ScheduledExecutor,
    execute_plan,
)
from repro.query import (
    ContinuousQuery,
    QueryWorkload,
    build_workload,
    multi_query_workload,
    parse_query,
    selectivity_filter,
    selectivity_join,
    three_query_workload,
)
from repro.runtime import (
    AdaptivePolicy,
    CountStreamEngine,
    RegisteredQuery,
    ReshardDecision,
    ReshardEvent,
    ShardedStreamEngine,
    ShardPlanner,
    StreamEngine,
    shard_for_key,
)
from repro.streams import StreamTuple, generate_join_workload, make_tuple

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "build_pullup_plan",
    "build_pushdown_plan",
    "build_unshared_plan",
    "AdaptivePolicy",
    "ChainCostParameters",
    "ChainSpec",
    "SliceSpec",
    "SlicedJoinChain",
    "StreamStatistics",
    "TwoQuerySettings",
    "build_cpu_opt_chain",
    "build_mem_opt_chain",
    "build_state_slice_plan",
    "selection_pullup_cost",
    "selection_pushdown_cost",
    "state_slice_cost",
    "state_slice_savings",
    "ImmediateExecutor",
    "ScheduledExecutor",
    "MetricsCollector",
    "QueryPlan",
    "RunReport",
    "execute_plan",
    "ContinuousQuery",
    "QueryWorkload",
    "CountStreamEngine",
    "RegisteredQuery",
    "ReshardDecision",
    "ReshardEvent",
    "ShardPlanner",
    "ShardedStreamEngine",
    "StreamEngine",
    "shard_for_key",
    "build_workload",
    "multi_query_workload",
    "three_query_workload",
    "parse_query",
    "selectivity_filter",
    "selectivity_join",
    "StreamTuple",
    "make_tuple",
    "generate_join_workload",
]
