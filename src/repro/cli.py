"""Command-line interface for the State-Slice reproduction.

Exposes the most common tasks without writing Python:

.. code-block:: bash

    python -m repro compare  --rate 40 --windows uniform --s1 0.1 --ssigma 0.5
    python -m repro figure   17 --panels b e --rates 20 40
    python -m repro figure   11
    python -m repro table    2
    python -m repro optimize --queries 12 --windows small-large --probe hash
    python -m repro chains   --queries 12 --windows small-large --rate 60
    python -m repro cost     --rho 0.25 --ssigma 0.2 --s1 0.1
    python -m repro runtime  --adaptive --stats

``compare`` runs every sharing strategy on one configuration; ``figure`` and
``table`` regenerate the paper's figures/tables; ``optimize`` runs the chain
optimizers — hash-probe-aware when asked — and prices the candidates under
the analytical cost model (``chains`` is its older, cost-silent sibling);
``cost`` evaluates the analytical two-query cost model; ``runtime`` demos a
live session, optionally with the adaptive rebalance policy attached.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.core.cost_model import (
    TwoQuerySettings,
    selection_pullup_cost,
    selection_pushdown_cost,
    state_slice_cost,
    state_slice_savings,
)
from repro.core.cpu_opt import build_cpu_opt_chain
from repro.core.mem_opt import build_mem_opt_chain
from repro.core.merge_graph import ChainCostParameters
from repro.experiments.analytical import figure_11a, figure_11b, figure_11c
from repro.experiments.chain_study import run_panel as chain_panel
from repro.experiments.config import ExperimentConfig
from repro.experiments.cpu_study import run_panel as cpu_panel
from repro.experiments.harness import compare_strategies, make_workload
from repro.experiments.memory_study import run_panel as memory_panel
from repro.experiments.report import (
    format_chain_points,
    format_memory_points,
    format_service_rate_points,
    format_table,
    format_trace,
)
from repro.experiments.traces import table_2_trace

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'State-Slice' (VLDB 2006): run experiments "
        "and inspect the shared-plan optimizers from the command line.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    compare = subparsers.add_parser(
        "compare", help="run every sharing strategy on one configuration"
    )
    compare.add_argument("--rate", type=float, default=40.0, help="tuples/s per stream")
    compare.add_argument("--windows", default="uniform", help="window distribution name")
    compare.add_argument("--queries", type=int, default=3, help="number of queries")
    compare.add_argument("--s1", type=float, default=0.1, help="join selectivity S1")
    compare.add_argument("--ssigma", type=float, default=0.5, help="filter selectivity Sσ")
    compare.add_argument("--time-scale", type=float, default=0.1, help="time scaling factor")
    compare.add_argument("--seed", type=int, default=7)
    compare.add_argument(
        "--batch-size",
        type=int,
        default=1,
        help="executor arrival batch size (1 = per-tuple execution)",
    )
    compare.add_argument(
        "--probe",
        choices=("nested_loop", "hash", "auto"),
        default="nested_loop",
        help="join probe algorithm; hash/auto build an equi-join workload "
        "whose key domain approximates --s1 and optimize with the "
        "hash-probe cost model",
    )

    figure = subparsers.add_parser("figure", help="regenerate a figure (11, 17, 18, 19)")
    figure.add_argument("number", type=int, choices=(11, 17, 18, 19))
    figure.add_argument("--panels", nargs="*", default=None, help="panel letters")
    figure.add_argument("--rates", nargs="*", type=float, default=None)
    figure.add_argument("--time-scale", type=float, default=None)

    table = subparsers.add_parser("table", help="regenerate a table (2)")
    table.add_argument("number", type=int, choices=(2,))

    chains = subparsers.add_parser(
        "chains", help="show the Mem-Opt and CPU-Opt chains for a workload"
    )
    chains.add_argument("--queries", type=int, default=12)
    chains.add_argument("--windows", default="small-large")
    chains.add_argument("--rate", type=float, default=40.0)
    chains.add_argument("--s1", type=float, default=0.025)
    chains.add_argument("--ssigma", type=float, default=1.0)
    chains.add_argument("--csys", type=float, default=0.25, help="per-operator overhead")
    chains.add_argument("--time-scale", type=float, default=1.0)

    optimize = subparsers.add_parser(
        "optimize",
        help="run the Mem-Opt and CPU-Opt chain searches and price the "
        "candidates under the analytical cost model",
    )
    optimize.add_argument("--queries", type=int, default=12)
    optimize.add_argument("--windows", default="small-large")
    optimize.add_argument("--rate", type=float, default=40.0)
    optimize.add_argument("--s1", type=float, default=0.025)
    optimize.add_argument("--ssigma", type=float, default=1.0)
    optimize.add_argument("--csys", type=float, default=0.25, help="per-operator overhead")
    optimize.add_argument("--time-scale", type=float, default=1.0)
    optimize.add_argument(
        "--probe",
        choices=("nested_loop", "hash", "auto"),
        default="nested_loop",
        help="probe algorithm the session will execute with; hash/auto "
        "switch the workload to an equi-join and the optimizer to the "
        "hash-probe cost model (probe term scaled by S1)",
    )

    cost = subparsers.add_parser("cost", help="evaluate the two-query analytical cost model")
    cost.add_argument("--rate", type=float, default=50.0)
    cost.add_argument("--w2", type=float, default=60.0, help="large window (seconds)")
    cost.add_argument("--rho", type=float, default=0.25, help="window ratio W1/W2")
    cost.add_argument("--ssigma", type=float, default=0.5)
    cost.add_argument("--s1", type=float, default=0.1)

    runtime = subparsers.add_parser(
        "runtime",
        help="demo the StreamEngine: online query admission over a live stream",
    )
    runtime.add_argument("--rate", type=float, default=20.0, help="tuples/s per stream")
    runtime.add_argument("--duration", type=float, default=30.0, help="stream seconds")
    runtime.add_argument("--s1", type=float, default=0.2, help="join selectivity S1")
    runtime.add_argument("--batch-size", type=int, default=32)
    runtime.add_argument("--seed", type=int, default=3)
    runtime.add_argument(
        "--windows",
        nargs="*",
        type=float,
        default=[4.0, 2.0, 6.0],
        help="windows of the queries, admitted at evenly spaced points "
        "starting from the first arrival (seconds, or tuple counts with "
        "--window-kind count)",
    )
    runtime.add_argument(
        "--window-kind",
        choices=("time", "count"),
        default="time",
        help="time-based sliding windows (default) or count-based "
        "most-recent-N windows",
    )
    runtime.add_argument(
        "--probe",
        choices=("nested_loop", "hash", "auto"),
        default="nested_loop",
        help="slice probe algorithm; hash/auto switch the session to an "
        "equi-join condition and index every slice on the join key",
    )
    runtime.add_argument(
        "--ssigma",
        type=float,
        default=1.0,
        help="selection selectivity Sσ: every second admitted query carries "
        "a left-stream predicate with this selectivity (1.0 = no selections)",
    )
    runtime.add_argument(
        "--shards",
        type=int,
        default=1,
        help="key-partition the session across N StreamEngine shards "
        "(equi-join time-window workloads; the demo switches to an "
        "equi-join condition approximating --s1, as --probe hash does)",
    )
    runtime.add_argument(
        "--shard-mode",
        choices=("serial", "process"),
        default="serial",
        help="serial runs the shards round-robin in-process (algorithmic "
        "probe win); process starts one worker per shard fed pickled "
        "batches",
    )
    runtime.add_argument(
        "--reshard",
        default=None,
        metavar="auto|N",
        help="change the shard count of the running session: an integer "
        "reshards once mid-stream to exactly N shards; 'auto' attaches a "
        "ShardPlanner that reshards whenever the measured load drifts "
        "(implies the sharded equi-join session, even with --shards 1)",
    )
    runtime.add_argument(
        "--memory-budget",
        default=None,
        metavar="BYTES",
        help="in-core state budget: cold slices spill to mmap'd disk "
        "segments once the resident estimate exceeds it (results are "
        "unchanged).  Accepts K/M/G suffixes, e.g. 64K or 2M; sharded "
        "sessions split the budget across the live shards",
    )
    runtime.add_argument(
        "--stats",
        action="store_true",
        help="print the session's EngineStats, migration history and "
        "metrics snapshot after the run",
    )
    runtime.add_argument(
        "--adaptive",
        action="store_true",
        help="attach an AdaptivePolicy: the session estimates its own "
        "arrival rates/selectivities and re-optimizes the chain on drift",
    )
    runtime.add_argument(
        "--drift-threshold",
        type=float,
        default=0.25,
        help="relative statistics change that counts as drift (adaptive)",
    )
    runtime.add_argument(
        "--policy-window",
        type=float,
        default=2.0,
        help="estimation window in stream-seconds (adaptive)",
    )
    runtime.add_argument(
        "--cooldown",
        type=float,
        default=6.0,
        help="minimum stream-seconds between rebalances (adaptive)",
    )
    return parser


# ---------------------------------------------------------------------------
# Sub-command implementations
# ---------------------------------------------------------------------------
def _cmd_compare(args: argparse.Namespace) -> str:
    config = ExperimentConfig(
        rate=args.rate,
        window_distribution=args.windows,
        query_count=args.queries,
        join_selectivity=args.s1,
        filter_selectivity=args.ssigma,
        time_scale=args.time_scale,
        seed=args.seed,
        batch_size=args.batch_size,
        probe=args.probe,
    )
    strategies = (
        "unshared",
        "selection-pullup",
        "selection-pushdown",
        "state-slice",
        "state-slice-cpu-opt",
    )
    results = compare_strategies(config, strategies)
    rows = []
    for name in strategies:
        result = results[name]
        rows.append(
            [
                name,
                f"{result.memory:.1f}",
                f"{result.cpu_cost:.0f}",
                f"{result.service_rate:.5f}",
                result.output_count,
            ]
        )
    header = f"configuration: {config.label()}\n"
    return header + format_table(
        ["strategy", "state (tuples)", "CPU (cmp)", "service rate", "outputs"], rows
    )


def _cmd_figure(args: argparse.Namespace) -> str:
    if args.number == 11:
        sections = []
        surfaces = figure_11a(steps=9)
        rows = [
            [name, f"{max(p.value_pct for p in pts):.1f}"]
            for name, pts in surfaces.items()
        ]
        sections.append("Figure 11(a) peak memory savings (%):\n" + format_table(
            ["surface", "max %"], rows))
        for label, fig in (("11(b) vs pull-up", figure_11b), ("11(c) vs push-down", figure_11c)):
            rows = [
                [f"S1={s1:g}", f"{max(p.value_pct for p in pts):.1f}"]
                for s1, pts in sorted(fig(steps=9).items())
            ]
            sections.append(f"Figure {label} peak CPU savings (%):\n" + format_table(
                ["surface", "max %"], rows))
        return "\n\n".join(sections)

    panels = args.panels
    rates = tuple(args.rates) if args.rates else (20, 40, 60, 80)
    if args.number == 17:
        panels = panels or ["b"]
        scale = args.time_scale or 0.1
        parts = []
        for panel in panels:
            points = memory_panel(panel, rates=rates, time_scale=scale)
            parts.append(f"Figure 17({panel}):\n" + format_memory_points(points, panel))
        return "\n\n".join(parts)
    if args.number == 18:
        panels = panels or ["b"]
        scale = args.time_scale or 0.1
        parts = []
        for panel in panels:
            points = cpu_panel(panel, rates=rates, time_scale=scale)
            parts.append(
                f"Figure 18({panel}):\n" + format_service_rate_points(points, panel)
            )
        return "\n\n".join(parts)
    panels = panels or ["c"]
    scale = args.time_scale or 0.04
    parts = []
    for panel in panels:
        points = chain_panel(panel, rates=rates, time_scale=scale)
        parts.append(f"Figure 19({panel}):\n" + format_chain_points(points, panel))
    return "\n\n".join(parts)


def _cmd_table(args: argparse.Namespace) -> str:
    return "Table 2 (regenerated trace):\n" + format_trace(table_2_trace())


def _cmd_chains(args: argparse.Namespace) -> str:
    config = ExperimentConfig(
        rate=args.rate,
        window_distribution=args.windows,
        query_count=args.queries,
        join_selectivity=args.s1,
        filter_selectivity=args.ssigma,
        time_scale=args.time_scale,
        system_overhead=args.csys,
    )
    workload = make_workload(config)
    params = ChainCostParameters(
        arrival_rate_left=config.rate,
        arrival_rate_right=config.rate,
        system_overhead=config.system_overhead,
    )
    mem_opt = build_mem_opt_chain(workload)
    cpu_opt = build_cpu_opt_chain(workload, params)
    return (
        f"workload: {config.label()}\n\n"
        f"Mem-Opt chain ({len(mem_opt)} slices):\n{mem_opt.describe()}\n\n"
        f"CPU-Opt chain ({len(cpu_opt)} slices, Csys={args.csys:g}):\n{cpu_opt.describe()}"
    )


def _cmd_optimize(args: argparse.Namespace) -> str:
    from repro.core.merge_graph import chain_cpu_cost, chain_memory_cost
    from repro.experiments.harness import chain_parameters

    config = ExperimentConfig(
        rate=args.rate,
        window_distribution=args.windows,
        query_count=args.queries,
        join_selectivity=args.s1,
        filter_selectivity=args.ssigma,
        time_scale=args.time_scale,
        system_overhead=args.csys,
        probe=args.probe,
    )
    workload = make_workload(config)
    params = chain_parameters(workload, config)
    mem_opt = build_mem_opt_chain(workload)
    cpu_opt = build_cpu_opt_chain(workload, params)
    rows = [
        [
            name,
            str(len(chain)),
            f"{chain_cpu_cost(chain, params):.0f}",
            f"{chain_memory_cost(chain, params):.1f}",
        ]
        for name, chain in (("Mem-Opt", mem_opt), ("CPU-Opt", cpu_opt))
    ]
    probe_note = (
        f"hash (probe term scaled by S1={params.effective_join_selectivity(workload):g})"
        if params.hash_probe
        else "nested loops (the paper's model)"
    )
    return (
        f"workload: {config.label()}\n"
        f"cost model: Csys={args.csys:g}, probe model: {probe_note}\n\n"
        + format_table(["chain", "slices", "CPU (cmp/s)", "state (KB)"], rows)
        + f"\n\nMem-Opt chain:\n{mem_opt.describe()}"
        + f"\n\nCPU-Opt chain:\n{cpu_opt.describe()}"
    )


def _cmd_cost(args: argparse.Namespace) -> str:
    settings = TwoQuerySettings(
        arrival_rate=args.rate,
        window_small=args.rho * args.w2,
        window_large=args.w2,
        filter_selectivity=args.ssigma,
        join_selectivity=args.s1,
    )
    estimates = [
        selection_pullup_cost(settings),
        selection_pushdown_cost(settings),
        state_slice_cost(settings),
    ]
    savings = state_slice_savings(settings)
    rows = [
        [e.strategy, f"{e.memory:.0f}", f"{e.cpu:.0f}"] for e in estimates
    ]
    table = format_table(["strategy", "memory (KB)", "CPU (cmp/s)"], rows)
    return (
        table
        + "\n\nstate-slice savings (Equation 4):"
        + f"\n  memory vs pull-up   : {100 * savings.memory_vs_pullup:.1f}%"
        + f"\n  memory vs push-down : {100 * savings.memory_vs_pushdown:.1f}%"
        + f"\n  CPU vs pull-up      : {100 * savings.cpu_vs_pullup:.1f}%"
        + f"\n  CPU vs push-down    : {100 * savings.cpu_vs_pushdown:.1f}%"
    )


def _cmd_runtime(args: argparse.Namespace) -> str:
    from repro.query.predicates import (
        EquiJoinCondition,
        selectivity_filter,
        selectivity_join,
    )
    from repro.runtime import (
        AdaptivePolicy,
        ShardedStreamEngine,
        ShardPlanner,
        StreamEngine,
    )
    from repro.streams.generators import (
        equi_key_domain,
        equi_value_generator,
        generate_join_workload,
    )

    reshard_target: int | None = None
    reshard_auto = False
    if args.reshard is not None:
        if args.reshard == "auto":
            reshard_auto = True
        else:
            try:
                reshard_target = int(args.reshard)
            except ValueError:
                raise SystemExit(
                    f"error: --reshard takes 'auto' or a shard count, got "
                    f"{args.reshard!r}"
                ) from None
            if reshard_target < 1:
                raise SystemExit("error: --reshard N must be at least 1")
    resharding = reshard_auto or reshard_target is not None
    sharded = args.shards > 1 or resharding
    if sharded and args.window_kind == "count":
        raise SystemExit(
            "error: --shards > 1 / --reshard needs time windows (a count "
            "window ranks tuples over the whole stream, not a shard's "
            "subsequence)"
        )
    if sharded and args.adaptive:
        raise SystemExit(
            "error: --adaptive is per-engine; for sharded sessions use the "
            "ShardPlanner (shown under --stats) instead"
        )
    from repro.engine.spill import parse_memory_budget

    try:
        memory_budget = parse_memory_budget(args.memory_budget)
    except ValueError as exc:
        raise SystemExit(f"error: --memory-budget: {exc}") from None
    value_generator = None
    if sharded or args.probe in ("hash", "auto"):
        # Hash probing and sharding both need an equi-key; approximate the
        # requested S1 with the key-domain size (uniform keys match with
        # probability 1/domain) and draw the synthetic keys from that same
        # domain.
        domain = equi_key_domain(args.s1)
        condition = EquiJoinCondition("join_key", "join_key", key_domain=domain)
        value_generator = equi_value_generator(domain)
    else:
        condition = selectivity_join(args.s1)
    data = generate_join_workload(
        rate_a=args.rate,
        rate_b=args.rate,
        duration=args.duration,
        seed=args.seed,
        value_generator=value_generator,
    )
    policy = None
    if args.adaptive:
        policy = AdaptivePolicy(
            window=args.policy_window,
            drift_threshold=args.drift_threshold,
            cooldown=args.cooldown,
        )
    if sharded:
        engine = ShardedStreamEngine(
            condition,
            shards=args.shards,
            shard_mode=args.shard_mode,
            batch_size=args.batch_size,
            probe=args.probe,
            collect_statistics=args.stats,
            memory_budget_bytes=memory_budget,
        )
    else:
        engine = StreamEngine(
            condition,
            batch_size=args.batch_size,
            window_kind=args.window_kind,
            probe=args.probe,
            policy=policy,
            collect_statistics=args.stats,
            memory_budget_bytes=memory_budget,
        )
    unit = "s" if args.window_kind == "time" else " rows"
    tuples = data.tuples
    windows = args.windows or [4.0]
    if args.window_kind == "count":
        windows = [max(1, int(window)) for window in windows]
    step = max(1, len(tuples) // (len(windows) + 1))
    admissions = {index * step: window for index, window in enumerate(windows)}
    shard_note = (
        f", {args.shards} {args.shard_mode} shard(s)" if sharded else ""
    )
    lines = [
        f"StreamEngine demo: {len(tuples)} arrivals, batch size "
        f"{args.batch_size}, {args.window_kind} windows, {args.probe} probing"
        f"{shard_note}",
        "",
    ]
    reshard_at = len(tuples) // 2 if reshard_target is not None else None
    reshard_planner = None
    if reshard_auto:
        # Tuned so the constant-rate demo drifts past one shard's target and
        # the planner visibly resizes the session mid-stream.
        reshard_planner = ShardPlanner(
            max_shards=8,
            target_rate_per_shard=max(args.rate / 2.0, 1.0),
            window=max(args.duration / 8.0, 0.5),
            cooldown=max(args.duration / 4.0, 1.0),
        )
    for index, tup in enumerate(tuples):
        if index in admissions:
            window = admissions[index]
            ordinal = len(engine.queries()) + 1
            name = f"Q{ordinal}"
            # Every second query carries a selection so the demo exercises
            # the shared push-down recomputation (no-op when Sσ = 1).
            left_filter = (
                selectivity_filter(args.ssigma) if ordinal % 2 == 0 else None
            )
            engine.add_query(name, window, left_filter=left_filter)
            tag = "σ " if left_filter is not None else ""
            lines.append(
                f"t={tup.timestamp:7.2f}s  +{name} ({tag}window {window:g}{unit})  "
                f"boundaries={list(engine.boundaries)}"
            )
        if index == reshard_at:
            event = engine.reshard(
                reshard_target, reason="operator request (--reshard)"
            )
            lines.append(f"t={tup.timestamp:7.2f}s  {event.describe()}")
        engine.process(tup)
        if reshard_planner is not None and index % 64 == 63:
            event = reshard_planner.maybe_reshard(engine)
            if event is not None:
                lines.append(f"t={tup.timestamp:7.2f}s  {event.describe()}")
    engine.flush()
    lines.append("")
    for query in engine.queries():
        tag = "σ, " if query.has_selection else ""
        lines.append(
            f"{query.name}: {tag}window {query.window:g}{unit}, admitted at arrival "
            f"{query.registered_at}, results {len(engine.results(query.name))}"
        )
    lines.append("")
    lines.append(f"final chain: {engine.describe()}")
    lines.append(
        f"state {engine.state_size()} tuples in {engine.slice_count()} slices; "
        f"migrations: {[event.kind for event in engine.stats.migrations]}"
    )
    if memory_budget is not None:
        spill_snap = engine.merged_snapshot() if sharded else engine.metrics.snapshot()
        lines.append(
            f"spill: budget {memory_budget} B"
            f"{f' ({engine.per_shard_memory_budget} B/shard)' if sharded else ''}, "
            f"{spill_snap.get('observations.spill.segments', 0):g} segments written, "
            f"{spill_snap.get('observations.spill.evictions', 0):g} slice evictions, "
            f"{spill_snap.get('observations.spill.cold_reads', 0):g} cold rows read; "
            f"resident {spill_snap.get('memory.resident_bytes', 0):g} B, "
            f"spilled {spill_snap.get('memory.spilled_bytes', 0):g} B"
        )
    if policy is not None:
        lines.append("")
        lines.append(policy.describe())
        for event in policy.events:
            if event.kind in ("rebalance", "calibrate", "recalibrate"):
                lines.append(
                    f"  t={event.timestamp:7.2f}s  {event.kind} "
                    f"(drift {event.drift:.0%}) "
                    f"boundaries={list(event.boundaries)}"
                )
    if args.stats:
        lines.append("")
        lines.append("engine stats:")
        stats = engine.stats
        lines.append(
            f"  arrivals {stats.arrivals}, batches {stats.batches}, "
            f"results delivered {stats.results_delivered}"
        )
        lines.append("  migration history:")
        for event in stats.migrations:
            lines.append(
                f"    arrival {event.arrival_count:>6}: {event.kind:<9} "
                f"@ {event.boundary:g} -> "
                f"boundaries {[round(b, 6) for b in event.boundaries_after]}"
            )
        if sharded and engine.reshard_events:
            lines.append("  reshard history:")
            for event in engine.reshard_events:
                lines.append(f"    {event.describe()}")
        shard_snaps = engine.shard_snapshots() if sharded else None
        snapshot = (
            engine.merged_snapshot(shard_snaps)
            if sharded
            else engine.metrics.snapshot()
        )
        lines.append(
            "  metrics snapshot (aggregated across shards):"
            if sharded
            else "  metrics snapshot:"
        )
        for key in (
            "comparisons.probe",
            "comparisons.purge",
            "comparisons.select",
            "comparisons.route",
            "comparisons.total",
            "invocations.total",
            "emitted.total",
            "ingested.total",
            "cpu_cost",
            "service_rate",
            "memory.average",
            "memory.max",
            "memory.resident_bytes",
            "memory.spilled_bytes",
            "memory.max_resident_bytes",
        ):
            lines.append(f"    {key:<20} {snapshot.get(key, 0.0):g}")
        if sharded:
            # The per-shard counters restart at every reshard, so the skew
            # shares are only meaningful together with the modulus they were
            # measured under.
            lines.append(
                f"  per-shard arrivals (measured under modulus {engine.shards}, "
                f"since the last reshard): {engine.shard_ingest_totals(shard_snaps)}"
            )
            lines.append(f"  {engine.merged_statistics(shard_snaps).describe()}")
            plan = ShardPlanner(
                max_shards=max(8, engine.shards),
                target_rate_per_shard=max(2 * args.rate / max(engine.shards, 1), 1.0),
            ).plan(engine)
            lines.append(f"  {plan.describe()} — {plan.reason}")
        else:
            lines.append(f"  {engine.estimated_statistics().describe()}")
    if sharded:
        engine.close()
    return "\n".join(lines)


_COMMANDS = {
    "compare": _cmd_compare,
    "figure": _cmd_figure,
    "table": _cmd_table,
    "chains": _cmd_chains,
    "optimize": _cmd_optimize,
    "cost": _cmd_cost,
    "runtime": _cmd_runtime,
}


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    output = _COMMANDS[args.command](args)
    print(output)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
