"""Figure 17 — state memory comparison of the sharing strategies.

The paper's Figure 17 plots, for the three-query workload of Section 7.2,
the number of tuples resident in join states against the stream input rate
(20-80 tuples/s) for:

* selection pull-up,
* the state-slice chain (Mem-Opt),
* selection push-down,

over six parameter settings:

=====  ================  =====  =======
panel  window dist.       S1     Sσ
=====  ================  =====  =======
(a)    mostly-small      0.1    0.5
(b)    uniform           0.1    0.5
(c)    mostly-large      0.1    0.5
(d)    uniform           0.025  0.2
(e)    uniform           0.025  0.5
(f)    uniform           0.025  0.8
=====  ================  =====  =======
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.config import STREAM_RATES, ExperimentConfig, default_three_query_config
from repro.experiments.harness import compare_strategies

__all__ = ["FIGURE_17_PANELS", "MemoryPoint", "run_panel", "figure_17"]

#: Panel name -> (window distribution, join selectivity, filter selectivity).
FIGURE_17_PANELS: dict[str, tuple[str, float, float]] = {
    "a": ("mostly-small", 0.1, 0.5),
    "b": ("uniform", 0.1, 0.5),
    "c": ("mostly-large", 0.1, 0.5),
    "d": ("uniform", 0.025, 0.2),
    "e": ("uniform", 0.025, 0.5),
    "f": ("uniform", 0.025, 0.8),
}

#: Strategies plotted by Figure 17, in the paper's legend order.
FIGURE_17_STRATEGIES = ("selection-pullup", "state-slice", "selection-pushdown")


@dataclass(frozen=True)
class MemoryPoint:
    """One point of a Figure 17 curve: tuples in state at a given rate."""

    panel: str
    strategy: str
    rate: float
    memory_tuples: float


def panel_config(panel: str, time_scale: float = 0.1) -> ExperimentConfig:
    windows, join_selectivity, filter_selectivity = FIGURE_17_PANELS[panel]
    return default_three_query_config(
        window_distribution=windows,
        join_selectivity=join_selectivity,
        filter_selectivity=filter_selectivity,
        time_scale=time_scale,
    )


def run_panel(
    panel: str,
    rates: tuple[float, ...] = STREAM_RATES,
    time_scale: float = 0.1,
) -> list[MemoryPoint]:
    """Regenerate one panel of Figure 17."""
    base = panel_config(panel, time_scale=time_scale)
    points = []
    for rate in rates:
        results = compare_strategies(base.with_rate(rate), FIGURE_17_STRATEGIES)
        for strategy, result in results.items():
            points.append(
                MemoryPoint(
                    panel=panel,
                    strategy=strategy,
                    rate=rate,
                    memory_tuples=result.memory,
                )
            )
    return points


def figure_17(
    panels: tuple[str, ...] = tuple(FIGURE_17_PANELS),
    rates: tuple[float, ...] = STREAM_RATES,
    time_scale: float = 0.1,
) -> list[MemoryPoint]:
    """Regenerate every requested panel of Figure 17."""
    points: list[MemoryPoint] = []
    for panel in panels:
        points.extend(run_panel(panel, rates=rates, time_scale=time_scale))
    return points
