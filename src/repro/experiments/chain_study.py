"""Figure 19 — Mem-Opt vs CPU-Opt chains.

Section 7.3 compares the service rate of the Mem-Opt chain against the
CPU-Opt chain (built by merging slices with the Section 5.2 shortest-path
algorithm) for query sets without selections:

=====  ================  =========
panel  window dist.      queries
=====  ================  =========
(a)    uniform           12
(b)    mostly-small      12
(c)    small-large       12
(d)    small-large       24
(e)    small-large       36
=====  ================  =========

Join selectivity is 0.025 and the stream rate sweeps 20-80 tuples/s.  For
uniform windows the CPU-Opt chain equals the Mem-Opt chain; the more skewed
the windows, and the more queries, the more slices CPU-Opt merges and the
larger its advantage — those are the reproduced properties.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cpu_opt import build_cpu_opt_chain
from repro.core.mem_opt import build_mem_opt_chain
from repro.core.merge_graph import ChainCostParameters
from repro.experiments.config import STREAM_RATES, ExperimentConfig, default_multi_query_config
from repro.experiments.harness import compare_strategies, make_workload

__all__ = ["FIGURE_19_PANELS", "ChainPoint", "run_panel", "figure_19", "chain_shapes"]

#: Panel name -> (window distribution, query count).
FIGURE_19_PANELS: dict[str, tuple[str, int]] = {
    "a": ("uniform", 12),
    "b": ("mostly-small", 12),
    "c": ("small-large", 12),
    "d": ("small-large", 24),
    "e": ("small-large", 36),
}

FIGURE_19_STRATEGIES = ("state-slice-mem-opt", "state-slice-cpu-opt")


@dataclass(frozen=True)
class ChainPoint:
    """One point of a Figure 19 curve."""

    panel: str
    strategy: str
    rate: float
    service_rate: float
    cpu_comparisons: float
    slice_count: int


def panel_config(panel: str, time_scale: float = 0.05) -> ExperimentConfig:
    windows, query_count = FIGURE_19_PANELS[panel]
    return default_multi_query_config(
        window_distribution=windows, query_count=query_count, time_scale=time_scale
    )


def chain_shapes(panel: str, rate: float = 40.0, time_scale: float = 0.05) -> dict[str, int]:
    """Number of slices of the Mem-Opt and CPU-Opt chains for a panel."""
    config = panel_config(panel, time_scale=time_scale).with_rate(rate)
    workload = make_workload(config)
    params = ChainCostParameters(
        arrival_rate_left=config.rate,
        arrival_rate_right=config.rate,
        system_overhead=config.system_overhead,
    )
    return {
        "mem_opt_slices": len(build_mem_opt_chain(workload)),
        "cpu_opt_slices": len(build_cpu_opt_chain(workload, params)),
    }


def run_panel(
    panel: str,
    rates: tuple[float, ...] = STREAM_RATES,
    time_scale: float = 0.05,
) -> list[ChainPoint]:
    """Regenerate one panel of Figure 19."""
    base = panel_config(panel, time_scale=time_scale)
    points = []
    for rate in rates:
        config = base.with_rate(rate)
        shapes = chain_shapes(panel, rate=rate, time_scale=time_scale)
        results = compare_strategies(config, FIGURE_19_STRATEGIES)
        for strategy, result in results.items():
            slice_count = (
                shapes["mem_opt_slices"]
                if strategy == "state-slice-mem-opt"
                else shapes["cpu_opt_slices"]
            )
            points.append(
                ChainPoint(
                    panel=panel,
                    strategy=strategy,
                    rate=rate,
                    service_rate=result.service_rate,
                    cpu_comparisons=result.cpu_cost,
                    slice_count=slice_count,
                )
            )
    return points


def figure_19(
    panels: tuple[str, ...] = tuple(FIGURE_19_PANELS),
    rates: tuple[float, ...] = STREAM_RATES,
    time_scale: float = 0.05,
) -> list[ChainPoint]:
    """Regenerate every requested panel of Figure 19."""
    points: list[ChainPoint] = []
    for panel in panels:
        points.extend(run_panel(panel, rates=rates, time_scale=time_scale))
    return points
