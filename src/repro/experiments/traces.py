"""Table 2 — step-by-step execution trace of a one-way sliced-join chain.

The paper illustrates the chain semantics with a hand-run trace: a chain of
two one-way sliced joins J1 = A[0,2) s⋉ B and J2 = A[2,4) s⋉ B under
Cartesian-product matching, fed one tuple per second (a1, a2, a3, b1, b2,
then two idle seconds, a4, two more idle seconds), with one operator run per
second.  Table 2 lists, after every step, the contents of J1's state, the
queue between the joins, J2's state and the produced outputs.

:func:`table_2_trace` replays exactly that scenario and returns the rows, so
tests and the benchmark harness can diff them against the paper's table.

Boundary convention
-------------------
This library uses the half-open slice ``[Wstart, Wend)`` of the paper's
Definition 1 consistently: a tuple whose age reaches exactly ``Wend`` is
purged into the next slice.  The paper's hand-run illustration instead keeps
such a tuple one step longer (its Figure 6 purges only when the age is
*strictly greater* than ``Wend``), so a pair whose timestamp gap equals a
slice boundary is attributed to the earlier slice in the paper's table and
to the later slice here.  The union of the chain's results — the property
Theorem 1 is about — is identical under both conventions;
:func:`table_2_full_outputs` exposes it for verification.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.operators.sliced_join import SlicedOneWayJoin
from repro.query.predicates import CrossProductCondition
from repro.streams.tuples import JoinedTuple, StreamTuple, make_tuple

__all__ = ["TraceRow", "table_2_trace", "table_2_full_outputs", "PAPER_TABLE_2"]


@dataclass(frozen=True)
class TraceRow:
    """One row of the Table 2 trace."""

    time: int
    arrival: str
    operator: str
    state_j1: tuple[str, ...]
    queue: tuple[str, ...]
    state_j2: tuple[str, ...]
    output: tuple[str, ...]


#: The rows printed in the paper's Table 2 (T, arrival, operator run, J1
#: state, queue, J2 state, output).  State and queue contents are listed
#: newest-first, exactly as the paper prints them.
PAPER_TABLE_2: tuple[TraceRow, ...] = (
    TraceRow(1, "a1", "J1", ("a1",), (), (), ()),
    TraceRow(2, "a2", "J1", ("a2", "a1"), (), (), ()),
    TraceRow(3, "a3", "J1", ("a3", "a2", "a1"), (), (), ()),
    TraceRow(4, "b1", "J1", ("a3", "a2"), ("b1", "a1"), (), ("(a2,b1)", "(a3,b1)")),
    TraceRow(5, "b2", "J1", ("a3",), ("b2", "a2", "b1", "a1"), (), ("(a3,b2)",)),
    TraceRow(6, "", "J2", ("a3",), ("b2", "a2", "b1"), ("a1",), ()),
    TraceRow(7, "", "J2", ("a3",), ("b2", "a2"), ("a1",), ("(a1,b1)",)),
    TraceRow(8, "a4", "J1", ("a4", "a3"), ("b2", "a2"), ("a1",), ()),
    TraceRow(9, "", "J2", ("a4",), ("a3", "b2"), ("a2", "a1"), ()),
    TraceRow(10, "", "J2", ("a4",), ("a3",), ("a2", "a1"), ("(a1,b2)", "(a2,b2)")),
)


def _label(tup: StreamTuple) -> str:
    return str(tup.values["label"])


def _joined_label(joined: JoinedTuple) -> str:
    return f"({_label(joined.left)},{_label(joined.right)})"


def table_2_trace() -> list[TraceRow]:
    """Replay the Table 2 scenario and return one row per executed step.

    The scheduling follows the paper exactly: at each second one operator is
    selected to run and processes one input tuple.  J1 runs whenever a new
    stream tuple arrives (and additionally at second 8); J2 runs on the
    other seconds, consuming one item from the inter-join queue.
    """
    condition = CrossProductCondition()
    j1 = SlicedOneWayJoin(0.0, 2.0, condition, name="J1")
    j2 = SlicedOneWayJoin(2.0, 4.0, condition, name="J2")
    queue: deque = deque()

    arrivals: dict[int, StreamTuple] = {
        1: make_tuple("A", 1.0, label="a1"),
        2: make_tuple("A", 2.0, label="a2"),
        3: make_tuple("A", 3.0, label="a3"),
        4: make_tuple("B", 4.0, label="b1"),
        5: make_tuple("B", 5.0, label="b2"),
        8: make_tuple("A", 8.0, label="a4"),
    }
    schedule: dict[int, str] = {
        1: "J1",
        2: "J1",
        3: "J1",
        4: "J1",
        5: "J1",
        6: "J2",
        7: "J2",
        8: "J1",
        9: "J2",
        10: "J2",
    }

    rows: list[TraceRow] = []
    for second in range(1, 11):
        operator = schedule[second]
        outputs: list[str] = []
        if operator == "J1":
            tup = arrivals[second]
            port = "left" if tup.stream == "A" else "right"
            for out_port, item in j1.process(tup, port):
                if out_port == "output":
                    outputs.append(_joined_label(item))
                elif out_port in ("purged", "propagated"):
                    queue.append(item)
        else:
            if queue:
                item = queue.popleft()
                port = "left" if item.stream == "A" else "right"
                for out_port, result in j2.process(item, port):
                    if out_port == "output":
                        outputs.append(_joined_label(result))
        rows.append(
            TraceRow(
                time=second,
                arrival=_label(arrivals[second]) if second in arrivals else "",
                operator=operator,
                state_j1=tuple(reversed([_label(t) for t in j1.state_tuples()])),
                queue=tuple(reversed([_label(t) for t in queue])),
                state_j2=tuple(reversed([_label(t) for t in j2.state_tuples()])),
                output=tuple(outputs),
            )
        )
    return rows


def table_2_full_outputs() -> set[str]:
    """All joined pairs the Table 2 chain produces once the queue is drained.

    This is the quantity Theorem 1 speaks about: it must equal the output of
    the regular one-way join ``A[4] ⋉ B`` over the same arrivals, namely
    ``{(a1,b1), (a2,b1), (a3,b1), (a2,b2), (a3,b2)}``.
    """
    condition = CrossProductCondition()
    j1 = SlicedOneWayJoin(0.0, 2.0, condition, name="J1")
    j2 = SlicedOneWayJoin(2.0, 4.0, condition, name="J2")
    arrivals = [
        make_tuple("A", 1.0, label="a1"),
        make_tuple("A", 2.0, label="a2"),
        make_tuple("A", 3.0, label="a3"),
        make_tuple("B", 4.0, label="b1"),
        make_tuple("B", 5.0, label="b2"),
        make_tuple("A", 8.0, label="a4"),
    ]
    outputs: set[str] = set()
    for tup in arrivals:
        port = "left" if tup.stream == "A" else "right"
        pending = deque(j1.process(tup, port))
        while pending:
            out_port, item = pending.popleft()
            if out_port == "output":
                outputs.add(_joined_label(item))
            elif out_port in ("purged", "propagated"):
                next_port = "left" if item.stream == "A" else "right"
                for nxt in j2.process(item, next_port):
                    if nxt[0] == "output":
                        outputs.add(_joined_label(nxt[1]))
    return outputs
