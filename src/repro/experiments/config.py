"""Experiment configurations.

The constants of the paper's evaluation (Tables 1, 3 and 4) and the
configuration dataclasses consumed by the experiment harness.

Scaling note
------------
The paper runs each experiment for 90 wall-clock seconds with windows of up
to 30 seconds at stream rates of 20-80 tuples/s on a 2.8 GHz JVM.  A
pure-Python nested-loop reproduction of the largest settings would need
minutes per data point, so the default configurations scale *time* down by
a common factor (``time_scale``, default 0.1): every window size and the
run duration are multiplied by it while the stream rates, selectivities and
query counts stay exactly as in the paper.  Scaling time uniformly scales
the expected state occupancy (λ·W) and the probing work (λ²·W) of every
strategy by the same factor, so the ratios between strategies — the shape
of every figure — are preserved, only the absolute tuple counts shrink.
``paper_scale()`` returns the unscaled settings for anyone willing to wait.

The run duration defaults to ``duration_windows`` times the largest
(scaled) window so that every window fills and the steady-state tail is
long enough to average over.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence

from repro.engine.errors import ConfigurationError
from repro.query.workload import window_distribution

__all__ = [
    "STREAM_RATES",
    "FILTER_SELECTIVITIES",
    "JOIN_SELECTIVITIES",
    "THREE_QUERY_WINDOW_NAMES",
    "MULTI_QUERY_WINDOW_NAMES",
    "ExperimentConfig",
    "SweepConfig",
    "default_three_query_config",
    "default_multi_query_config",
    "paper_scale",
]

#: Stream input rates (tuples/second) swept by Figures 17, 18 and 19.
STREAM_RATES: tuple[int, ...] = (20, 40, 60, 80)

#: Selection selectivities Sσ of Table 3 (Low / Middle / High).
FILTER_SELECTIVITIES: tuple[float, ...] = (0.2, 0.5, 0.8)

#: Join selectivities S1 of Table 3 (Low / Middle / High).
JOIN_SELECTIVITIES: tuple[float, ...] = (0.025, 0.1, 0.4)

#: Window distribution names of Table 3 (three-query study).
THREE_QUERY_WINDOW_NAMES: tuple[str, ...] = ("mostly-small", "uniform", "mostly-large")

#: Window distribution names of Table 4 (multi-query study).
MULTI_QUERY_WINDOW_NAMES: tuple[str, ...] = ("uniform", "mostly-small", "small-large")


@dataclass(frozen=True)
class ExperimentConfig:
    """One experiment data point.

    Attributes mirror the knobs of Section 7: the stream rate λ (same for
    both streams), the window distribution, the query count, the two
    selectivities, the time scale (see the module docstring), the run
    duration in simulated seconds (``None`` derives it from the largest
    scaled window) and the random seed.
    """

    rate: float = 40.0
    window_distribution: str = "uniform"
    query_count: int = 3
    join_selectivity: float = 0.1
    filter_selectivity: float = 0.5
    time_scale: float = 0.1
    duration: float | None = None
    duration_windows: float = 4.0
    seed: int = 7
    system_overhead: float = 0.25
    memory_sample_interval: int = 4
    #: Arrival batch size for the executor (1 = per-tuple execution).
    batch_size: int = 1
    #: Probe algorithm of every join: "nested_loop" (the paper's cost
    #: model), "hash" (builds an equi-join workload whose key-domain size
    #: approximates the requested S1) or "auto".
    probe: str = "nested_loop"

    def __post_init__(self) -> None:
        if self.probe not in ("nested_loop", "hash", "auto"):
            raise ConfigurationError(
                f"probe must be 'nested_loop', 'hash' or 'auto', got {self.probe!r}"
            )
        if self.rate <= 0:
            raise ConfigurationError("rate must be positive")
        if self.time_scale <= 0:
            raise ConfigurationError("time_scale must be positive")
        if self.duration is not None and self.duration <= 0:
            raise ConfigurationError("duration must be positive")
        if self.duration_windows <= 1:
            raise ConfigurationError("duration_windows must exceed 1")
        if self.query_count < 1:
            raise ConfigurationError("query_count must be at least 1")
        if self.batch_size < 1:
            raise ConfigurationError("batch_size must be at least 1")

    # -- derived settings ---------------------------------------------------
    def windows(self) -> tuple[float, ...]:
        """The query window sizes, scaled by ``time_scale``."""
        distribution = window_distribution(self.window_distribution, self.query_count)
        return tuple(round(w * self.time_scale, 9) for w in distribution.windows)

    @property
    def max_window(self) -> float:
        return max(self.windows())

    def effective_duration(self) -> float:
        """The run duration: explicit, or ``duration_windows`` × largest window."""
        if self.duration is not None:
            return self.duration
        return self.duration_windows * self.max_window

    # -- variations ------------------------------------------------------------
    def with_rate(self, rate: float) -> "ExperimentConfig":
        return replace(self, rate=rate)

    def scaled(self, time_scale: float, duration: float | None = None) -> "ExperimentConfig":
        return replace(self, time_scale=time_scale, duration=duration)

    def label(self) -> str:
        label = (
            f"{self.window_distribution}, {self.query_count} queries, "
            f"S1={self.join_selectivity:g}, Ssigma={self.filter_selectivity:g}, "
            f"rate={self.rate:g}/s, time_scale={self.time_scale:g}"
        )
        if self.probe != "nested_loop":
            label += f", probe={self.probe}"
        return label


@dataclass(frozen=True)
class SweepConfig:
    """A sweep over stream rates for a fixed base configuration."""

    base: ExperimentConfig
    rates: Sequence[float] = field(default=STREAM_RATES)

    def configs(self) -> list[ExperimentConfig]:
        return [self.base.with_rate(rate) for rate in self.rates]


def default_three_query_config(
    window_distribution: str = "uniform",
    join_selectivity: float = 0.1,
    filter_selectivity: float = 0.5,
    time_scale: float = 0.1,
) -> ExperimentConfig:
    """Scaled-down defaults for the three-query study (Figures 17 and 18)."""
    return ExperimentConfig(
        window_distribution=window_distribution,
        query_count=3,
        join_selectivity=join_selectivity,
        filter_selectivity=filter_selectivity,
        time_scale=time_scale,
    )


def default_multi_query_config(
    window_distribution: str = "small-large",
    query_count: int = 12,
    time_scale: float = 0.05,
) -> ExperimentConfig:
    """Scaled-down defaults for the multi-query study (Figure 19)."""
    return ExperimentConfig(
        window_distribution=window_distribution,
        query_count=query_count,
        join_selectivity=0.025,
        filter_selectivity=1.0,
        time_scale=time_scale,
    )


def paper_scale(config: ExperimentConfig) -> ExperimentConfig:
    """Return the configuration at the paper's true windows and 90 s duration."""
    return config.scaled(time_scale=1.0, duration=90.0)
