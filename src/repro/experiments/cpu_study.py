"""Figure 18 — service rate comparison of the sharing strategies.

The paper's Figure 18 plots the service rate (throughput per unit of
processing) of the three-query workload against the stream input rate for
the same three strategies as Figure 17, over six parameter settings:

=====  ================  =====  =======
panel  window dist.       S1     Sσ
=====  ================  =====  =======
(a)    mostly-small      0.1    0.5
(b)    uniform           0.1    0.5
(c)    mostly-large      0.1    0.5
(d)    uniform           0.025  0.8
(e)    uniform           0.1    0.8
(f)    uniform           0.4    0.8
=====  ================  =====  =======

Service rate here is output tuples per simulated CPU cost unit (see
:meth:`repro.engine.metrics.MetricsCollector.service_rate`); the relative
ordering and the growth of the gap with the input rate are the reproduced
properties.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.config import STREAM_RATES, ExperimentConfig, default_three_query_config
from repro.experiments.harness import compare_strategies

__all__ = ["FIGURE_18_PANELS", "ServiceRatePoint", "run_panel", "figure_18"]

#: Panel name -> (window distribution, join selectivity, filter selectivity).
FIGURE_18_PANELS: dict[str, tuple[str, float, float]] = {
    "a": ("mostly-small", 0.1, 0.5),
    "b": ("uniform", 0.1, 0.5),
    "c": ("mostly-large", 0.1, 0.5),
    "d": ("uniform", 0.025, 0.8),
    "e": ("uniform", 0.1, 0.8),
    "f": ("uniform", 0.4, 0.8),
}

FIGURE_18_STRATEGIES = ("selection-pullup", "state-slice", "selection-pushdown")


@dataclass(frozen=True)
class ServiceRatePoint:
    """One point of a Figure 18 curve."""

    panel: str
    strategy: str
    rate: float
    service_rate: float
    cpu_comparisons: float
    outputs: int


def panel_config(panel: str, time_scale: float = 0.1) -> ExperimentConfig:
    windows, join_selectivity, filter_selectivity = FIGURE_18_PANELS[panel]
    return default_three_query_config(
        window_distribution=windows,
        join_selectivity=join_selectivity,
        filter_selectivity=filter_selectivity,
        time_scale=time_scale,
    )


def run_panel(
    panel: str,
    rates: tuple[float, ...] = STREAM_RATES,
    time_scale: float = 0.1,
) -> list[ServiceRatePoint]:
    """Regenerate one panel of Figure 18."""
    base = panel_config(panel, time_scale=time_scale)
    points = []
    for rate in rates:
        results = compare_strategies(base.with_rate(rate), FIGURE_18_STRATEGIES)
        for strategy, result in results.items():
            points.append(
                ServiceRatePoint(
                    panel=panel,
                    strategy=strategy,
                    rate=rate,
                    service_rate=result.service_rate,
                    cpu_comparisons=result.cpu_cost,
                    outputs=result.output_count,
                )
            )
    return points


def figure_18(
    panels: tuple[str, ...] = tuple(FIGURE_18_PANELS),
    rates: tuple[float, ...] = STREAM_RATES,
    time_scale: float = 0.1,
) -> list[ServiceRatePoint]:
    """Regenerate every requested panel of Figure 18."""
    points: list[ServiceRatePoint] = []
    for panel in panels:
        points.extend(run_panel(panel, rates=rates, time_scale=time_scale))
    return points
