"""Experiment harness: run a workload under every sharing strategy.

:func:`run_strategy` executes one (strategy, configuration) pair and returns
the :class:`~repro.engine.metrics.RunReport`; :func:`compare_strategies`
runs several strategies over the *same* generated stream data so the
comparisons of Figures 17-19 are apples-to-apples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.baselines.pullup import build_pullup_plan
from repro.baselines.pushdown import build_pushdown_plan
from repro.baselines.unshared import build_unshared_plan
from repro.core.cpu_opt import build_cpu_opt_chain
from repro.core.mem_opt import build_mem_opt_chain
from repro.core.merge_graph import ChainCostParameters
from repro.core.plan_builder import build_state_slice_plan
from repro.engine.errors import ConfigurationError
from repro.engine.executor import execute_plan
from repro.engine.metrics import RunReport
from repro.engine.plan import QueryPlan
from repro.experiments.config import ExperimentConfig
from repro.query.query import QueryWorkload
from repro.query.workload import build_workload
from repro.streams.generators import TwoStreamWorkload, generate_join_workload

__all__ = [
    "STRATEGIES",
    "StrategyResult",
    "make_workload",
    "make_stream_data",
    "build_plan",
    "run_strategy",
    "compare_strategies",
]


def _state_slice_mem_opt(workload: QueryWorkload, config: ExperimentConfig) -> QueryPlan:
    chain = build_mem_opt_chain(workload)
    return build_state_slice_plan(workload, chain=chain, plan_name="state-slice-mem-opt")


def _state_slice_cpu_opt(workload: QueryWorkload, config: ExperimentConfig) -> QueryPlan:
    params = ChainCostParameters(
        arrival_rate_left=config.rate,
        arrival_rate_right=config.rate,
        system_overhead=config.system_overhead,
    )
    chain = build_cpu_opt_chain(workload, params)
    return build_state_slice_plan(workload, chain=chain, plan_name="state-slice-cpu-opt")


def _pullup(workload: QueryWorkload, config: ExperimentConfig) -> QueryPlan:
    return build_pullup_plan(workload)


def _pushdown(workload: QueryWorkload, config: ExperimentConfig) -> QueryPlan:
    return build_pushdown_plan(workload)


def _unshared(workload: QueryWorkload, config: ExperimentConfig) -> QueryPlan:
    return build_unshared_plan(workload)


#: Registry of named strategies usable by the harness and benchmarks.
STRATEGIES: dict[str, Callable[[QueryWorkload, ExperimentConfig], QueryPlan]] = {
    "state-slice": _state_slice_mem_opt,
    "state-slice-mem-opt": _state_slice_mem_opt,
    "state-slice-cpu-opt": _state_slice_cpu_opt,
    "selection-pullup": _pullup,
    "selection-pushdown": _pushdown,
    "unshared": _unshared,
}


@dataclass
class StrategyResult:
    """Per-strategy measurements for one experiment configuration."""

    strategy: str
    config: ExperimentConfig
    report: RunReport

    @property
    def memory(self) -> float:
        return self.report.steady_state_memory

    @property
    def cpu_cost(self) -> float:
        return self.report.cpu_cost

    @property
    def service_rate(self) -> float:
        return self.report.service_rate

    @property
    def output_count(self) -> int:
        return self.report.metrics.total_emitted

    def row(self) -> dict[str, float | str]:
        return {
            "strategy": self.strategy,
            "rate": self.config.rate,
            "windows": self.config.window_distribution,
            "queries": self.config.query_count,
            "S1": self.config.join_selectivity,
            "Ssigma": self.config.filter_selectivity,
            "memory_tuples": round(self.memory, 1),
            "cpu_comparisons": round(self.cpu_cost, 1),
            "service_rate": round(self.service_rate, 6),
            "outputs": self.output_count,
        }


def make_workload(config: ExperimentConfig) -> QueryWorkload:
    """Build the query workload described by an experiment configuration.

    Matches Section 7.2: the smallest-window query carries no selection, the
    remaining queries carry the σ(A) selection with the configured
    selectivity.  When ``filter_selectivity`` is 1 no query has a selection
    (the Section 7.3 setting).  Window sizes come pre-scaled from the
    configuration (see :mod:`repro.experiments.config`).
    """
    windows = config.windows()
    selectivities = [1.0] + [config.filter_selectivity] * (len(windows) - 1)
    return build_workload(
        windows,
        join_selectivity=config.join_selectivity,
        filter_selectivities=selectivities,
    )


def make_stream_data(config: ExperimentConfig) -> TwoStreamWorkload:
    """Generate the synthetic two-stream input for a configuration."""
    return generate_join_workload(
        rate_a=config.rate,
        rate_b=config.rate,
        duration=config.effective_duration(),
        seed=config.seed,
    )


def build_plan(strategy: str, workload: QueryWorkload, config: ExperimentConfig) -> QueryPlan:
    if strategy not in STRATEGIES:
        raise ConfigurationError(
            f"unknown strategy {strategy!r}; expected one of {sorted(STRATEGIES)}"
        )
    return STRATEGIES[strategy](workload, config)


def run_strategy(
    strategy: str,
    config: ExperimentConfig,
    data: TwoStreamWorkload | None = None,
    retain_results: bool = False,
) -> StrategyResult:
    """Run one strategy for one configuration and return its measurements."""
    workload = make_workload(config)
    data = data or make_stream_data(config)
    plan = build_plan(strategy, workload, config)
    report = execute_plan(
        plan,
        data.tuples,
        strategy=strategy,
        system_overhead=config.system_overhead,
        memory_sample_interval=config.memory_sample_interval,
        retain_results=retain_results,
        batch_size=config.batch_size,
    )
    return StrategyResult(strategy=strategy, config=config, report=report)


def compare_strategies(
    config: ExperimentConfig,
    strategies: Sequence[str] = ("selection-pullup", "state-slice", "selection-pushdown"),
    retain_results: bool = False,
) -> dict[str, StrategyResult]:
    """Run several strategies over the same generated stream data."""
    data = make_stream_data(config)
    results = {}
    for strategy in strategies:
        results[strategy] = run_strategy(
            strategy, config, data=data, retain_results=retain_results
        )
    return results


def sweep_rates(
    base: ExperimentConfig,
    rates: Iterable[float],
    strategies: Sequence[str] = ("selection-pullup", "state-slice", "selection-pushdown"),
) -> list[dict[str, StrategyResult]]:
    """Run a rate sweep (the x-axis of Figures 17-19)."""
    return [compare_strategies(base.with_rate(rate), strategies) for rate in rates]


__all__.append("sweep_rates")
