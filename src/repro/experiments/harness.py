"""Experiment harness: run a workload under every sharing strategy.

:func:`run_strategy` executes one (strategy, configuration) pair and returns
the :class:`~repro.engine.metrics.RunReport`; :func:`compare_strategies`
runs several strategies over the *same* generated stream data so the
comparisons of Figures 17-19 are apples-to-apples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.baselines.pullup import build_pullup_plan
from repro.baselines.pushdown import build_pushdown_plan
from repro.baselines.unshared import build_unshared_plan
from repro.core.cpu_opt import build_cpu_opt_chain
from repro.core.mem_opt import build_mem_opt_chain
from repro.core.merge_graph import ChainCostParameters
from repro.core.plan_builder import build_state_slice_plan
from repro.engine.errors import ConfigurationError
from repro.engine.executor import execute_plan
from repro.engine.metrics import RunReport
from repro.engine.plan import QueryPlan
from repro.experiments.config import ExperimentConfig
from repro.operators.sliced_join import resolve_probe
from repro.query.predicates import EquiJoinCondition
from repro.query.query import QueryWorkload
from repro.query.workload import build_workload
from repro.streams.generators import (
    TwoStreamWorkload,
    equi_key_domain,
    equi_value_generator,
    generate_join_workload,
)

__all__ = [
    "STRATEGIES",
    "StrategyResult",
    "chain_parameters",
    "make_workload",
    "make_stream_data",
    "build_plan",
    "run_strategy",
    "compare_strategies",
]


def _uses_hash(workload: QueryWorkload, config: ExperimentConfig) -> bool:
    return resolve_probe(config.probe, workload.join_condition) == "hash"


def _join_algorithm(workload: QueryWorkload, config: ExperimentConfig) -> str:
    return "hash" if _uses_hash(workload, config) else "nested_loop"


def chain_parameters(
    workload: QueryWorkload, config: ExperimentConfig
) -> ChainCostParameters:
    """The chain cost-model parameters implied by an experiment config.

    This is the declared statistics plane of the harness: configured arrival
    rates, the configured ``Csys``, and a probe term matching how the built
    plans will actually probe (``hash_probe`` whenever the configuration
    resolves to hash probing), so the CPU-Opt search prices the same
    execution the run performs.
    """
    return ChainCostParameters(
        arrival_rate_left=config.rate,
        arrival_rate_right=config.rate,
        system_overhead=config.system_overhead,
        hash_probe=_uses_hash(workload, config),
    )


def _state_slice_mem_opt(workload: QueryWorkload, config: ExperimentConfig) -> QueryPlan:
    chain = build_mem_opt_chain(workload)
    return build_state_slice_plan(
        workload, chain=chain, plan_name="state-slice-mem-opt", probe=config.probe
    )


def _state_slice_cpu_opt(workload: QueryWorkload, config: ExperimentConfig) -> QueryPlan:
    chain = build_cpu_opt_chain(workload, chain_parameters(workload, config))
    return build_state_slice_plan(
        workload, chain=chain, plan_name="state-slice-cpu-opt", probe=config.probe
    )


def _pullup(workload: QueryWorkload, config: ExperimentConfig) -> QueryPlan:
    return build_pullup_plan(workload, algorithm=_join_algorithm(workload, config))


def _pushdown(workload: QueryWorkload, config: ExperimentConfig) -> QueryPlan:
    return build_pushdown_plan(workload, algorithm=_join_algorithm(workload, config))


def _unshared(workload: QueryWorkload, config: ExperimentConfig) -> QueryPlan:
    return build_unshared_plan(workload, algorithm=_join_algorithm(workload, config))


#: Registry of named strategies usable by the harness and benchmarks.
STRATEGIES: dict[str, Callable[[QueryWorkload, ExperimentConfig], QueryPlan]] = {
    "state-slice": _state_slice_mem_opt,
    "state-slice-mem-opt": _state_slice_mem_opt,
    "state-slice-cpu-opt": _state_slice_cpu_opt,
    "selection-pullup": _pullup,
    "selection-pushdown": _pushdown,
    "unshared": _unshared,
}


@dataclass
class StrategyResult:
    """Per-strategy measurements for one experiment configuration."""

    strategy: str
    config: ExperimentConfig
    report: RunReport

    @property
    def memory(self) -> float:
        return self.report.steady_state_memory

    @property
    def cpu_cost(self) -> float:
        return self.report.cpu_cost

    @property
    def service_rate(self) -> float:
        return self.report.service_rate

    @property
    def output_count(self) -> int:
        return self.report.metrics.total_emitted

    def row(self) -> dict[str, float | str]:
        return {
            "strategy": self.strategy,
            "rate": self.config.rate,
            "windows": self.config.window_distribution,
            "queries": self.config.query_count,
            "S1": self.config.join_selectivity,
            "Ssigma": self.config.filter_selectivity,
            "memory_tuples": round(self.memory, 1),
            "cpu_comparisons": round(self.cpu_cost, 1),
            "service_rate": round(self.service_rate, 6),
            "outputs": self.output_count,
        }


def make_workload(config: ExperimentConfig) -> QueryWorkload:
    """Build the query workload described by an experiment configuration.

    Matches Section 7.2: the smallest-window query carries no selection, the
    remaining queries carry the σ(A) selection with the configured
    selectivity.  When ``filter_selectivity`` is 1 no query has a selection
    (the Section 7.3 setting).  Window sizes come pre-scaled from the
    configuration (see :mod:`repro.experiments.config`).

    With ``probe="hash"`` (or ``"auto"``) the join condition is an equi-join
    on the synthetic key — hash probing needs an equi-key — whose domain
    size approximates the requested S1 (uniform keys match with probability
    ``1/domain``).
    """
    windows = config.windows()
    selectivities = [1.0] + [config.filter_selectivity] * (len(windows) - 1)
    join_condition = None
    if config.probe in ("hash", "auto"):
        join_condition = EquiJoinCondition(
            "join_key",
            "join_key",
            key_domain=equi_key_domain(config.join_selectivity),
        )
    return build_workload(
        windows,
        join_selectivity=config.join_selectivity,
        filter_selectivities=selectivities,
        join_condition=join_condition,
    )


def make_stream_data(config: ExperimentConfig) -> TwoStreamWorkload:
    """Generate the synthetic two-stream input for a configuration.

    For hash-probing configurations the synthetic key is drawn from the same
    domain the equi-join condition declares, so the executed join
    selectivity matches the S1 the optimizer prices with.
    """
    value_generator = None
    if config.probe in ("hash", "auto"):
        value_generator = equi_value_generator(
            equi_key_domain(config.join_selectivity)
        )
    return generate_join_workload(
        rate_a=config.rate,
        rate_b=config.rate,
        duration=config.effective_duration(),
        seed=config.seed,
        value_generator=value_generator,
    )


def build_plan(strategy: str, workload: QueryWorkload, config: ExperimentConfig) -> QueryPlan:
    if strategy not in STRATEGIES:
        raise ConfigurationError(
            f"unknown strategy {strategy!r}; expected one of {sorted(STRATEGIES)}"
        )
    return STRATEGIES[strategy](workload, config)


def run_strategy(
    strategy: str,
    config: ExperimentConfig,
    data: TwoStreamWorkload | None = None,
    retain_results: bool = False,
) -> StrategyResult:
    """Run one strategy for one configuration and return its measurements."""
    workload = make_workload(config)
    data = data or make_stream_data(config)
    plan = build_plan(strategy, workload, config)
    report = execute_plan(
        plan,
        data.tuples,
        strategy=strategy,
        system_overhead=config.system_overhead,
        memory_sample_interval=config.memory_sample_interval,
        retain_results=retain_results,
        batch_size=config.batch_size,
    )
    return StrategyResult(strategy=strategy, config=config, report=report)


def compare_strategies(
    config: ExperimentConfig,
    strategies: Sequence[str] = ("selection-pullup", "state-slice", "selection-pushdown"),
    retain_results: bool = False,
) -> dict[str, StrategyResult]:
    """Run several strategies over the same generated stream data."""
    data = make_stream_data(config)
    results = {}
    for strategy in strategies:
        results[strategy] = run_strategy(
            strategy, config, data=data, retain_results=retain_results
        )
    return results


def sweep_rates(
    base: ExperimentConfig,
    rates: Iterable[float],
    strategies: Sequence[str] = ("selection-pullup", "state-slice", "selection-pushdown"),
) -> list[dict[str, StrategyResult]]:
    """Run a rate sweep (the x-axis of Figures 17-19)."""
    return [compare_strategies(base.with_rate(rate), strategies) for rate in rates]


__all__.append("sweep_rates")
