"""Plain-text rendering of the reproduced figures and tables.

The benchmark harness prints these tables so the regenerated numbers appear
directly in the pytest-benchmark output (and in ``bench_output.txt``),
mirroring the rows/series of the paper's figures.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Sequence

from repro.experiments.chain_study import ChainPoint
from repro.experiments.cpu_study import ServiceRatePoint
from repro.experiments.memory_study import MemoryPoint
from repro.experiments.traces import TraceRow

__all__ = [
    "format_table",
    "format_memory_points",
    "format_service_rate_points",
    "format_chain_points",
    "format_trace",
    "format_savings_summary",
]


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a simple fixed-width text table."""
    materialized = [tuple(str(cell) for cell in row) for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    header_line = "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in materialized:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _by_rate(points: Iterable, value_attr: str) -> dict[float, dict[str, float]]:
    series: dict[float, dict[str, float]] = defaultdict(dict)
    for point in points:
        series[point.rate][point.strategy] = getattr(point, value_attr)
    return dict(sorted(series.items()))


def format_memory_points(points: Sequence[MemoryPoint], panel: str) -> str:
    """Figure 17 panel as a text table: rate vs per-strategy tuples in state."""
    selected = [p for p in points if p.panel == panel]
    strategies = sorted({p.strategy for p in selected})
    series = _by_rate(selected, "memory_tuples")
    rows = [
        [f"{rate:g}"] + [f"{series[rate].get(s, float('nan')):.1f}" for s in strategies]
        for rate in series
    ]
    return format_table(["rate (tuples/s)"] + strategies, rows)


def format_service_rate_points(points: Sequence[ServiceRatePoint], panel: str) -> str:
    """Figure 18 panel as a text table: rate vs per-strategy service rate."""
    selected = [p for p in points if p.panel == panel]
    strategies = sorted({p.strategy for p in selected})
    series = _by_rate(selected, "service_rate")
    rows = [
        [f"{rate:g}"] + [f"{series[rate].get(s, float('nan')):.5f}" for s in strategies]
        for rate in series
    ]
    return format_table(["rate (tuples/s)"] + strategies, rows)


def format_chain_points(points: Sequence[ChainPoint], panel: str) -> str:
    """Figure 19 panel as a text table: rate vs Mem-Opt / CPU-Opt service rate."""
    selected = [p for p in points if p.panel == panel]
    strategies = sorted({p.strategy for p in selected})
    series = _by_rate(selected, "service_rate")
    slice_counts = {p.strategy: p.slice_count for p in selected}
    rows = [
        [f"{rate:g}"] + [f"{series[rate].get(s, float('nan')):.5f}" for s in strategies]
        for rate in series
    ]
    table = format_table(["rate (tuples/s)"] + strategies, rows)
    shapes = ", ".join(f"{s}: {slice_counts[s]} slices" for s in strategies)
    return f"{table}\n({shapes})"


def format_trace(rows: Sequence[TraceRow]) -> str:
    """Table 2 as a text table."""
    def fmt(values: tuple[str, ...]) -> str:
        return "[" + ",".join(values) + "]"

    body = [
        [row.time, row.arrival, row.operator, fmt(row.state_j1), fmt(row.queue), fmt(row.state_j2), ",".join(row.output)]
        for row in rows
    ]
    return format_table(
        ["T", "Arr.", "OP", "A::[0,2)", "Queue", "A::[2,4)", "Output"], body
    )


def format_savings_summary(
    rows: Sequence[dict[str, float]], value_key: str, title: str
) -> str:
    """Summarise a Figure 11 surface: min / mean / max saving over the grid."""
    values = [row[value_key] for row in rows]
    if not values:
        return f"{title}: (no data)"
    mean = sum(values) / len(values)
    return (
        f"{title}: min={min(values):.1f}%  mean={mean:.1f}%  max={max(values):.1f}% "
        f"over {len(values)} grid points"
    )
