"""Evaluation harness regenerating every figure and table of the paper."""

from repro.experiments.analytical import figure_11a, figure_11b, figure_11c
from repro.experiments.chain_study import FIGURE_19_PANELS, chain_shapes, figure_19
from repro.experiments.config import (
    FILTER_SELECTIVITIES,
    JOIN_SELECTIVITIES,
    STREAM_RATES,
    ExperimentConfig,
    SweepConfig,
    default_multi_query_config,
    default_three_query_config,
    paper_scale,
)
from repro.experiments.cpu_study import FIGURE_18_PANELS, figure_18
from repro.experiments.harness import (
    STRATEGIES,
    StrategyResult,
    build_plan,
    compare_strategies,
    make_stream_data,
    make_workload,
    run_strategy,
    sweep_rates,
)
from repro.experiments.memory_study import FIGURE_17_PANELS, figure_17
from repro.experiments.report import (
    format_chain_points,
    format_memory_points,
    format_savings_summary,
    format_service_rate_points,
    format_table,
    format_trace,
)
from repro.experiments.traces import PAPER_TABLE_2, table_2_full_outputs, table_2_trace

__all__ = [
    "figure_11a",
    "figure_11b",
    "figure_11c",
    "figure_17",
    "figure_18",
    "figure_19",
    "FIGURE_17_PANELS",
    "FIGURE_18_PANELS",
    "FIGURE_19_PANELS",
    "chain_shapes",
    "ExperimentConfig",
    "SweepConfig",
    "STREAM_RATES",
    "FILTER_SELECTIVITIES",
    "JOIN_SELECTIVITIES",
    "default_three_query_config",
    "default_multi_query_config",
    "paper_scale",
    "STRATEGIES",
    "StrategyResult",
    "build_plan",
    "compare_strategies",
    "make_stream_data",
    "make_workload",
    "run_strategy",
    "sweep_rates",
    "format_table",
    "format_memory_points",
    "format_service_rate_points",
    "format_chain_points",
    "format_trace",
    "format_savings_summary",
    "PAPER_TABLE_2",
    "table_2_trace",
    "table_2_full_outputs",
]
