"""Figure 11 — analytical savings surfaces.

The figure plots the Equation 4 savings of state-slicing over the two
baseline strategies across the (ρ = W1/W2, Sσ) plane:

* Figure 11(a): memory savings vs selection pull-up and vs push-down;
* Figure 11(b): CPU savings vs selection pull-up for S1 ∈ {0.4, 0.1, 0.025};
* Figure 11(c): CPU savings vs selection push-down for the same S1 values.

These are purely analytical — no simulation — and are regenerated exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cost_model import savings_grid

__all__ = ["SurfacePoint", "figure_11a", "figure_11b", "figure_11c", "default_grid"]


@dataclass(frozen=True)
class SurfacePoint:
    """One (ρ, Sσ) grid point of a savings surface, in percent."""

    rho: float
    filter_selectivity: float
    value_pct: float


def default_grid(steps: int = 11) -> tuple[list[float], list[float]]:
    """The (ρ, Sσ) grid of Figure 11: both axes span (0, 1)."""
    values = [round(i / (steps + 1), 6) for i in range(1, steps + 1)]
    return values, values


def figure_11a(steps: int = 11) -> dict[str, list[SurfacePoint]]:
    """Memory savings surfaces (vs pull-up and vs push-down)."""
    rho_values, s_sigma_values = default_grid(steps)
    rows = savings_grid(rho_values, s_sigma_values)
    vs_pullup = [
        SurfacePoint(row["rho"], row["filter_selectivity"], row["memory_saving_vs_pullup_pct"])
        for row in rows
    ]
    vs_pushdown = [
        SurfacePoint(
            row["rho"], row["filter_selectivity"], row["memory_saving_vs_pushdown_pct"]
        )
        for row in rows
    ]
    return {"vs_pullup": vs_pullup, "vs_pushdown": vs_pushdown}


def _cpu_surface(steps: int, key: str, join_selectivities: tuple[float, ...]) -> dict[float, list[SurfacePoint]]:
    rho_values, s_sigma_values = default_grid(steps)
    surfaces = {}
    for s1 in join_selectivities:
        rows = savings_grid(rho_values, s_sigma_values, join_selectivity=s1)
        surfaces[s1] = [
            SurfacePoint(row["rho"], row["filter_selectivity"], row[key]) for row in rows
        ]
    return surfaces


def figure_11b(
    steps: int = 11, join_selectivities: tuple[float, ...] = (0.4, 0.1, 0.025)
) -> dict[float, list[SurfacePoint]]:
    """CPU savings vs selection pull-up, one surface per join selectivity."""
    return _cpu_surface(steps, "cpu_saving_vs_pullup_pct", join_selectivities)


def figure_11c(
    steps: int = 11, join_selectivities: tuple[float, ...] = (0.4, 0.1, 0.025)
) -> dict[float, list[SurfacePoint]]:
    """CPU savings vs selection push-down, one surface per join selectivity."""
    return _cpu_surface(steps, "cpu_saving_vs_pushdown_pct", join_selectivities)
