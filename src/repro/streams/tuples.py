"""Stream tuple model.

The engine manipulates :class:`StreamTuple` objects: immutable records
carrying a payload (mapping of attribute name to value), an arrival
timestamp, and the name of the logical stream they belong to.

Two auxiliary record types support the state-slice execution model of the
paper:

* :class:`RefTuple` — the "male"/"female" reference copies used by sliced
  binary window joins (Section 4.2 of the paper).  A male reference drives
  cross-purging and probing; a female reference only fills states.
* :class:`Punctuation` — a marker flowing through queues asserting that no
  tuple with a smaller timestamp will follow.  The order-preserving union
  uses punctuations emitted by the last sliced join of a chain to release
  sorted output (Section 4.3).

Joined results are represented by :class:`JoinedTuple`, which keeps the two
source tuples and exposes the combined payload lazily.
"""

from __future__ import annotations

import itertools
import pickle
from array import array
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Sequence

__all__ = [
    "StreamTuple",
    "JoinedTuple",
    "RefTuple",
    "MALE",
    "FEMALE",
    "Punctuation",
    "make_tuple",
    "encode_batch",
    "decode_batch",
]

_tuple_counter = itertools.count()

#: Gender tags for reference copies used by sliced binary joins.
MALE = "male"
FEMALE = "female"


@dataclass(frozen=True, slots=True)
class StreamTuple:
    """A single tuple of a data stream.

    Parameters
    ----------
    stream:
        Name of the logical stream (for example ``"A"`` or ``"Temperature"``).
    timestamp:
        Arrival timestamp in seconds.  Timestamps are globally ordered
        across streams, mirroring the paper's assumption of a global clock.
    values:
        Mapping of attribute name to value.  Stored as a plain dict but
        treated as immutable by convention.
    seqno:
        Monotonically increasing sequence number used to break timestamp
        ties deterministically.
    """

    stream: str
    timestamp: float
    values: Mapping[str, Any]
    seqno: int = field(default_factory=lambda: next(_tuple_counter))

    def __getitem__(self, attribute: str) -> Any:
        return self.values[attribute]

    def get(self, attribute: str, default: Any = None) -> Any:
        return self.values.get(attribute, default)

    def attributes(self) -> Iterator[str]:
        return iter(self.values)

    def with_values(self, **updates: Any) -> "StreamTuple":
        """Return a copy of this tuple with some attribute values replaced."""
        merged = dict(self.values)
        merged.update(updates)
        return StreamTuple(self.stream, self.timestamp, merged)

    def age(self, now: float) -> float:
        """Age of the tuple relative to clock time ``now`` (seconds)."""
        return now - self.timestamp

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        vals = ", ".join(f"{k}={v!r}" for k, v in self.values.items())
        return f"{self.stream}@{self.timestamp:g}({vals})"


@dataclass(frozen=True, slots=True)
class JoinedTuple:
    """Result of joining one tuple from each of two streams.

    The timestamp of a joined tuple is ``max(Ta, Tb)`` as defined in
    Section 2 of the paper.
    """

    left: StreamTuple
    right: StreamTuple

    @property
    def timestamp(self) -> float:
        return max(self.left.timestamp, self.right.timestamp)

    @property
    def values(self) -> dict[str, Any]:
        """Combined payload with attribute names prefixed by stream name."""
        combined: dict[str, Any] = {}
        for name, value in self.left.values.items():
            combined[f"{self.left.stream}.{name}"] = value
        for name, value in self.right.values.items():
            combined[f"{self.right.stream}.{name}"] = value
        return combined

    def key(self) -> tuple[int, int]:
        """Identity of the joined pair, independent of join order."""
        return (self.left.seqno, self.right.seqno)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"({self.left!r} >< {self.right!r})"


@dataclass(frozen=True, slots=True)
class RefTuple:
    """A reference copy of a stream tuple used inside sliced-join chains.

    Sliced binary window joins process each arriving tuple as two reference
    copies (Section 4.2): the *male* copy purges and probes the opposite
    state, the *female* copy is inserted into its own state.  Both copies
    point at the same underlying :class:`StreamTuple`, so the payload is not
    duplicated.
    """

    base: StreamTuple
    gender: str

    @property
    def stream(self) -> str:
        return self.base.stream

    @property
    def timestamp(self) -> float:
        return self.base.timestamp

    @property
    def values(self) -> Mapping[str, Any]:
        return self.base.values

    @property
    def seqno(self) -> int:
        return self.base.seqno

    def is_male(self) -> bool:
        return self.gender == MALE

    def is_female(self) -> bool:
        return self.gender == FEMALE

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        tag = "m" if self.is_male() else "f"
        return f"{self.base!r}^{tag}"


@dataclass(frozen=True, slots=True)
class Punctuation:
    """Assertion that no future tuple will carry ``timestamp`` < this one.

    ``source`` names the emitting operator or stream; the union operator
    tracks the minimum punctuation seen per source to decide which buffered
    join results are safe to release in timestamp order.
    """

    timestamp: float
    source: str = ""

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"punct[{self.source}]<{self.timestamp:g}"


def make_tuple(stream: str, timestamp: float, **values: Any) -> StreamTuple:
    """Convenience constructor used heavily in tests and examples."""
    return StreamTuple(stream=stream, timestamp=timestamp, values=values)


# -- columnar wire format -------------------------------------------------------
def encode_batch(tuples: Sequence[StreamTuple]) -> bytes:
    """Serialize a batch of stream tuples in struct-of-arrays layout.

    Timestamps and seqnos travel as packed ``float64`` / ``int64`` columns
    (``array`` buffers) instead of per-tuple object graphs, which is what the
    sharded engine pushes through its shared-memory arrival rings.  The
    payload dicts stay a plain pickled list — they are opaque to the engine.
    Round-trips through :func:`decode_batch` exactly: same streams,
    timestamps, values, and seqnos (workers never mint new seqnos).
    """
    return pickle.dumps(
        (
            [tup.stream for tup in tuples],
            array("d", [tup.timestamp for tup in tuples]).tobytes(),
            array("q", [tup.seqno for tup in tuples]).tobytes(),
            [tup.values for tup in tuples],
        ),
        protocol=pickle.HIGHEST_PROTOCOL,
    )


def decode_batch(payload: bytes) -> list[StreamTuple]:
    """Rebuild the stream tuples from :func:`encode_batch` output."""
    streams, ts_bytes, seqno_bytes, values = pickle.loads(payload)
    timestamps = array("d")
    timestamps.frombytes(ts_bytes)
    seqnos = array("q")
    seqnos.frombytes(seqno_bytes)
    return [
        StreamTuple(stream, timestamp, payload_values, seqno)
        for stream, timestamp, payload_values, seqno in zip(
            streams, timestamps, values, seqnos
        )
    ]
