"""Stream substrate: tuple model, schemas and synthetic generators."""

from repro.streams.generators import (
    PeriodicArrivals,
    PoissonArrivals,
    SelectivityValueGenerator,
    StreamGenerator,
    StreamSpec,
    TwoStreamWorkload,
    generate_join_workload,
    interleave,
)
from repro.streams.schema import Attribute, Schema, SENSOR_READING_SCHEMA
from repro.streams.tuples import (
    FEMALE,
    MALE,
    JoinedTuple,
    Punctuation,
    RefTuple,
    StreamTuple,
    make_tuple,
)

__all__ = [
    "Attribute",
    "Schema",
    "SENSOR_READING_SCHEMA",
    "StreamTuple",
    "JoinedTuple",
    "RefTuple",
    "Punctuation",
    "MALE",
    "FEMALE",
    "make_tuple",
    "PoissonArrivals",
    "PeriodicArrivals",
    "SelectivityValueGenerator",
    "StreamSpec",
    "StreamGenerator",
    "TwoStreamWorkload",
    "generate_join_workload",
    "interleave",
]
