"""Synthetic stream generation.

The paper's performance study (Section 7) drives the CAPE engine with a
synthetic data stream generator producing Poisson arrivals whose join
selectivity ``S1`` and filter selectivity ``Sσ`` are controlled.  This
module provides an equivalent generator.

Two knobs matter for reproducing the evaluation:

* **Arrival process** — tuples arrive with exponential (Poisson process) or
  periodic inter-arrival times at a configured mean rate ``λ``.
* **Value distributions** — the attribute used by the equi-join is drawn so
  that the probability of two random tuples matching equals the requested
  join selectivity ``S1``; the attribute used by selections is drawn
  uniformly in ``[0, 1)`` so a predicate ``value > 1 - Sσ`` has selectivity
  exactly ``Sσ`` in expectation.

All generators are deterministic given a seed.
"""

from __future__ import annotations

import heapq
import math
import random
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Sequence

from repro.engine.errors import ConfigurationError
from repro.streams.schema import Attribute, Schema
from repro.streams.tuples import StreamTuple

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "PeriodicArrivals",
    "ValueGenerator",
    "SelectivityValueGenerator",
    "StreamSpec",
    "StreamGenerator",
    "TwoStreamWorkload",
    "equi_key_domain",
    "equi_value_generator",
    "generate_join_workload",
    "JOIN_KEY_DOMAIN",
]

#: Domain size of the synthetic join key.  The modular join condition used by
#: the experiment harness matches a pair of tuples when
#: ``(a.join_key + b.join_key) % JOIN_KEY_DOMAIN < S1 * JOIN_KEY_DOMAIN``,
#: which yields a join selectivity of exactly ``S1`` for keys uniform on the
#: domain while still being a deterministic, value-based predicate.
JOIN_KEY_DOMAIN = 1000


class ArrivalProcess:
    """Base class for arrival processes: yields inter-arrival gaps (seconds)."""

    def __init__(self, rate: float) -> None:
        if rate <= 0:
            raise ConfigurationError(f"arrival rate must be positive, got {rate}")
        self.rate = float(rate)

    def gaps(self, rng: random.Random) -> Iterator[float]:
        raise NotImplementedError

    def timestamps(self, rng: random.Random, duration: float) -> Iterator[float]:
        """Yield absolute timestamps in ``[0, duration)``."""
        now = 0.0
        for gap in self.gaps(rng):
            now += gap
            if now >= duration:
                return
            yield now


class PoissonArrivals(ArrivalProcess):
    """Poisson arrival process: exponential inter-arrival times."""

    def gaps(self, rng: random.Random) -> Iterator[float]:
        mean_gap = 1.0 / self.rate
        while True:
            yield rng.expovariate(1.0 / mean_gap)


class PeriodicArrivals(ArrivalProcess):
    """Deterministic arrivals, one tuple every ``1/rate`` seconds."""

    def gaps(self, rng: random.Random) -> Iterator[float]:
        gap = 1.0 / self.rate
        while True:
            yield gap


class ValueGenerator:
    """Generates the payload of one tuple given an RNG."""

    def generate(self, rng: random.Random) -> dict[str, object]:
        raise NotImplementedError

    def schema(self, stream: str) -> Schema:
        raise NotImplementedError


@dataclass
class SelectivityValueGenerator(ValueGenerator):
    """Payload generator with controllable join and filter selectivity.

    Produces tuples with two attributes:

    * ``join_key`` — integer uniform on ``[0, JOIN_KEY_DOMAIN)``; used with the
      modular match condition to obtain join selectivity ``S1`` exactly.
    * ``value`` — float uniform on ``[0, 1)``; a filter ``value > 1 - Sσ`` has
      selectivity ``Sσ``.

    An optional ``extra_attributes`` mapping adds constant-valued padding
    attributes so that tuple sizes can be varied for memory experiments.
    """

    key_domain: int = JOIN_KEY_DOMAIN
    extra_attributes: dict[str, object] = field(default_factory=dict)

    def generate(self, rng: random.Random) -> dict[str, object]:
        payload: dict[str, object] = {
            "join_key": rng.randrange(self.key_domain),
            "value": rng.random(),
        }
        payload.update(self.extra_attributes)
        return payload

    def schema(self, stream: str) -> Schema:
        attributes = [Attribute("join_key", int, 4), Attribute("value", float, 8)]
        for name in self.extra_attributes:
            attributes.append(Attribute(name, object, 8))
        return Schema(stream=stream, attributes=tuple(attributes))


@dataclass
class StreamSpec:
    """Description of one synthetic stream."""

    name: str
    rate: float
    arrivals: str = "poisson"
    values: ValueGenerator = field(default_factory=SelectivityValueGenerator)

    def arrival_process(self) -> ArrivalProcess:
        if self.arrivals == "poisson":
            return PoissonArrivals(self.rate)
        if self.arrivals == "periodic":
            return PeriodicArrivals(self.rate)
        raise ConfigurationError(
            f"unknown arrival process {self.arrivals!r}; expected 'poisson' or 'periodic'"
        )


class StreamGenerator:
    """Generates the tuples of a single stream over a time horizon."""

    def __init__(self, spec: StreamSpec, seed: int = 0) -> None:
        self.spec = spec
        self.seed = seed

    def generate(self, duration: float) -> list[StreamTuple]:
        """Materialise all tuples arriving in ``[0, duration)`` seconds."""
        rng = random.Random(f"{self.seed}:{self.spec.name}")
        process = self.spec.arrival_process()
        tuples = []
        for timestamp in process.timestamps(rng, duration):
            payload = self.spec.values.generate(rng)
            tuples.append(
                StreamTuple(stream=self.spec.name, timestamp=timestamp, values=payload)
            )
        return tuples

    def stream(self, duration: float) -> Iterator[StreamTuple]:
        """Lazily yield tuples arriving in ``[0, duration)`` seconds."""
        rng = random.Random(f"{self.seed}:{self.spec.name}")
        process = self.spec.arrival_process()
        for timestamp in process.timestamps(rng, duration):
            payload = self.spec.values.generate(rng)
            yield StreamTuple(stream=self.spec.name, timestamp=timestamp, values=payload)


@dataclass
class TwoStreamWorkload:
    """A fully materialised two-stream workload, merged by timestamp.

    Attributes
    ----------
    tuples:
        All tuples of both streams, in global timestamp order.
    specs:
        The stream specs used to generate them (keyed by stream name).
    duration:
        Time horizon in seconds.
    """

    tuples: list[StreamTuple]
    specs: dict[str, StreamSpec]
    duration: float

    def count(self, stream: str) -> int:
        return sum(1 for t in self.tuples if t.stream == stream)

    def rate(self, stream: str) -> float:
        """Empirical arrival rate of ``stream`` over the workload duration."""
        if self.duration <= 0:
            return 0.0
        return self.count(stream) / self.duration

    def split(self) -> dict[str, list[StreamTuple]]:
        """Partition the merged sequence back into per-stream sequences."""
        per_stream: dict[str, list[StreamTuple]] = {name: [] for name in self.specs}
        for tup in self.tuples:
            per_stream.setdefault(tup.stream, []).append(tup)
        return per_stream


def _merge_by_timestamp(sequences: Sequence[list[StreamTuple]]) -> list[StreamTuple]:
    """Merge per-stream sequences into one globally ordered sequence.

    Ties on timestamp are broken by tuple sequence number so the result is a
    deterministic total order, as the paper assumes a global clock ordering.
    """
    return list(
        heapq.merge(*sequences, key=lambda tup: (tup.timestamp, tup.seqno))
    )


def generate_join_workload(
    rate_a: float,
    rate_b: float,
    duration: float,
    seed: int = 0,
    arrivals: str = "poisson",
    stream_a: str = "A",
    stream_b: str = "B",
    value_generator: Callable[[], ValueGenerator] | None = None,
) -> TwoStreamWorkload:
    """Generate the standard two-stream workload used throughout the repo.

    Parameters mirror the paper's Table 1: arrival rates of streams A and B,
    the run duration, and the arrival pattern.  Join and filter selectivity
    are properties of the *conditions* applied downstream (see
    :mod:`repro.query.predicates`), not of the data, so they are not
    parameters here.
    """
    make_values = value_generator or SelectivityValueGenerator
    spec_a = StreamSpec(name=stream_a, rate=rate_a, arrivals=arrivals, values=make_values())
    spec_b = StreamSpec(name=stream_b, rate=rate_b, arrivals=arrivals, values=make_values())
    tuples_a = StreamGenerator(spec_a, seed=seed).generate(duration)
    tuples_b = StreamGenerator(spec_b, seed=seed + 1).generate(duration)
    merged = _merge_by_timestamp([tuples_a, tuples_b])
    return TwoStreamWorkload(
        tuples=merged,
        specs={stream_a: spec_a, stream_b: spec_b},
        duration=duration,
    )


def equi_key_domain(join_selectivity: float) -> int:
    """Key-domain size whose uniform equi-keys match with probability S1.

    Hash probing needs an equi-key, so hash workloads approximate a
    requested join selectivity with ``1/domain``.  Every consumer (the
    experiment harness, the CLI runtime demo) must use this one helper for
    both the join condition *and* the data generator, so the executed S1
    always matches the S1 the optimizer prices with.
    """
    if not 0.0 < join_selectivity <= 1.0:
        raise ConfigurationError(
            f"join selectivity must lie in (0, 1], got {join_selectivity}"
        )
    return max(1, round(1.0 / join_selectivity))


def equi_value_generator(domain: int) -> Callable[[], SelectivityValueGenerator]:
    """A value-generator factory drawing ``join_key`` from ``domain``."""

    def make() -> SelectivityValueGenerator:
        return SelectivityValueGenerator(key_domain=domain)

    return make


def interleave(*sequences: Iterable[StreamTuple]) -> list[StreamTuple]:
    """Merge arbitrary tuple sequences into global timestamp order."""
    return _merge_by_timestamp([list(seq) for seq in sequences])


def expected_tuple_count(rate: float, duration: float) -> int:
    """Expected number of arrivals for a Poisson process (rounded)."""
    return int(math.floor(rate * duration))
