"""Stream schema descriptors.

A :class:`Schema` describes the attributes carried by every tuple of a
stream.  Schemas are purely declarative — the engine does not enforce them
on every tuple for performance reasons — but the query parser, the plan
builder and the synthetic generators use them to validate attribute
references, derive join compatibility and size estimates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping

from repro.engine.errors import SchemaError

__all__ = ["Attribute", "Schema", "SENSOR_READING_SCHEMA"]


@dataclass(frozen=True, slots=True)
class Attribute:
    """A single attribute of a stream schema.

    Parameters
    ----------
    name:
        Attribute name, unique within the schema.
    dtype:
        Python type of the values (``int``, ``float``, ``str`` ...).
    size_bytes:
        Estimated storage size, used by the cost model to convert
        tuple counts into kilobytes (the paper's ``Mt`` constant).
    """

    name: str
    dtype: type = float
    size_bytes: int = 8

    def validate(self, value: Any) -> bool:
        """Return True when ``value`` is acceptable for this attribute."""
        if value is None:
            return False
        return isinstance(value, self.dtype) or (
            self.dtype is float and isinstance(value, int)
        )


@dataclass(frozen=True)
class Schema:
    """An ordered collection of :class:`Attribute` for one stream."""

    stream: str
    attributes: tuple[Attribute, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        names = [attribute.name for attribute in self.attributes]
        if len(names) != len(set(names)):
            raise SchemaError(
                f"duplicate attribute names in schema for stream {self.stream!r}: {names}"
            )

    # -- lookup -----------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return any(attribute.name == name for attribute in self.attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self.attributes)

    def __len__(self) -> int:
        return len(self.attributes)

    def attribute(self, name: str) -> Attribute:
        for candidate in self.attributes:
            if candidate.name == name:
                return candidate
        raise SchemaError(
            f"stream {self.stream!r} has no attribute {name!r}; "
            f"known attributes: {[a.name for a in self.attributes]}"
        )

    def names(self) -> list[str]:
        return [attribute.name for attribute in self.attributes]

    # -- derived properties ------------------------------------------------
    @property
    def tuple_size_bytes(self) -> int:
        """Estimated per-tuple payload size (the paper's ``Mt``)."""
        return sum(attribute.size_bytes for attribute in self.attributes)

    # -- construction helpers ----------------------------------------------
    @classmethod
    def from_mapping(cls, stream: str, fields: Mapping[str, type]) -> "Schema":
        attributes = tuple(Attribute(name, dtype) for name, dtype in fields.items())
        return cls(stream=stream, attributes=attributes)

    def project(self, names: Iterable[str]) -> "Schema":
        """Return a schema restricted to ``names`` (raising on unknowns)."""
        wanted = list(names)
        kept = tuple(self.attribute(name) for name in wanted)
        return Schema(stream=self.stream, attributes=kept)

    def renamed(self, stream: str) -> "Schema":
        return Schema(stream=stream, attributes=self.attributes)

    def validate_tuple(self, values: Mapping[str, Any]) -> None:
        """Raise :class:`SchemaError` when ``values`` does not fit the schema."""
        for attribute in self.attributes:
            if attribute.name not in values:
                raise SchemaError(
                    f"tuple for stream {self.stream!r} is missing attribute "
                    f"{attribute.name!r}"
                )
        unknown = set(values) - set(self.names())
        if unknown:
            raise SchemaError(
                f"tuple for stream {self.stream!r} carries unknown attributes {sorted(unknown)}"
            )


#: Schema used by the paper's motivating sensor-network example: a reading
#: has a location identifier (the equi-join attribute) and a measured value
#: (the selection attribute).
SENSOR_READING_SCHEMA = Schema(
    stream="reading",
    attributes=(
        Attribute("location_id", int, 4),
        Attribute("value", float, 8),
    ),
)
