"""Runtime layer: long-lived stream sessions with online query admission.

The static layers of the package (:mod:`repro.core`, :mod:`repro.engine`)
build a shared plan once, for a fixed workload, and execute it.  This
package adds the dynamic half of the paper's story (Section 5.3): a
:class:`StreamEngine` session owns a live shared sliced-join chain and lets
continuous queries register and deregister *while the stream is running*,
migrating the chain incrementally — splitting and merging window slices
in place — so no in-flight join state is lost or duplicated.

:class:`AdaptivePolicy` closes the feedback loop: the session estimates its
own arrival rates, join factor and selection selectivities from windowed
metric-counter deltas (one shared statistics plane with the static
optimizer, :mod:`repro.core.statistics`) and re-runs the CPU-Opt chain
search — migrating the live chain and re-deriving the selection push-down —
whenever the observed statistics drift from the ones the chain was
optimized for.

:class:`ShardedStreamEngine` scales the session out: for equi-join
workloads both input streams are hash-partitioned on the join key across N
inner engines (serial or one worker process per shard), with admissions
fanned out to every shard and per-shard results merged into a
deterministic global order; :class:`ShardPlanner` sizes N and detects key
skew from the aggregated statistics plane.
"""

from repro.runtime.adaptive import AdaptivePolicy, PolicyEvent
from repro.runtime.engine import (
    CountStreamEngine,
    EngineStats,
    MigrationEvent,
    RegisteredQuery,
    StreamEngine,
)
from repro.runtime.sharding import (
    ReshardDecision,
    ReshardEvent,
    ShardConfig,
    ShardedStreamEngine,
    ShardPlan,
    ShardPlanner,
    shard_for_key,
)

__all__ = [
    "AdaptivePolicy",
    "CountStreamEngine",
    "EngineStats",
    "MigrationEvent",
    "PolicyEvent",
    "RegisteredQuery",
    "ReshardDecision",
    "ReshardEvent",
    "ShardConfig",
    "ShardPlan",
    "ShardPlanner",
    "ShardedStreamEngine",
    "StreamEngine",
    "shard_for_key",
]
