"""Runtime layer: long-lived stream sessions with online query admission.

The static layers of the package (:mod:`repro.core`, :mod:`repro.engine`)
build a shared plan once, for a fixed workload, and execute it.  This
package adds the dynamic half of the paper's story (Section 5.3): a
:class:`StreamEngine` session owns a live shared sliced-join chain and lets
continuous queries register and deregister *while the stream is running*,
migrating the chain incrementally — splitting and merging window slices
in place — so no in-flight join state is lost or duplicated.

:class:`AdaptivePolicy` closes the feedback loop: the session estimates its
own arrival rates, join factor and selection selectivities from windowed
metric-counter deltas (one shared statistics plane with the static
optimizer, :mod:`repro.core.statistics`) and re-runs the CPU-Opt chain
search — migrating the live chain and re-deriving the selection push-down —
whenever the observed statistics drift from the ones the chain was
optimized for.
"""

from repro.runtime.adaptive import AdaptivePolicy, PolicyEvent
from repro.runtime.engine import (
    CountStreamEngine,
    EngineStats,
    MigrationEvent,
    RegisteredQuery,
    StreamEngine,
)

__all__ = [
    "AdaptivePolicy",
    "CountStreamEngine",
    "EngineStats",
    "MigrationEvent",
    "PolicyEvent",
    "RegisteredQuery",
    "StreamEngine",
]
