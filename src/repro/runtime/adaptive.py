"""Adaptive re-optimization of a live stream session.

:class:`AdaptivePolicy` closes the loop the paper leaves open: the CPU-Opt
chain search (Sections 5.2/6.2) assumes known arrival rates and
selectivities, while a running :class:`~repro.runtime.engine.StreamEngine`
*measures* those quantities continuously.  The policy watches windowed
counter deltas (two :meth:`~repro.engine.metrics.MetricsCollector.snapshot`
values per estimation window — nothing is ever reset), turns each window
into a :class:`~repro.core.statistics.StreamStatistics` estimate, and
triggers :meth:`~repro.runtime.engine.StreamEngine.rebalance` — which also
re-derives the shared selection push-down — when the observed statistics
drift away from the ones the current chain was optimized for.

Stability is engineered in three layers so that steady load never migrates:

* **drift threshold** — an estimate must move by more than
  ``drift_threshold`` (relative) from the baseline statistics before it
  counts as drift at all;
* **hysteresis** — ``hysteresis`` *consecutive* drifted windows are
  required; a single noisy window resets the streak;
* **cooldown** — after a rebalance, no further rebalance fires for
  ``cooldown`` stream-seconds, bounding the migration frequency under
  sustained oscillation.

Count-window sessions keep the Mem-Opt chain by construction (merged rank
slices cannot be re-split at routing time), so on a
:class:`~repro.runtime.engine.CountStreamEngine` the policy still estimates
statistics and records drift, but re-baselines instead of migrating.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.statistics import StreamStatistics
from repro.engine.metrics import MetricsSnapshot

__all__ = ["AdaptivePolicy", "PolicyEvent"]


@dataclass(frozen=True)
class PolicyEvent:
    """One decision of the adaptive policy (for observability and tests).

    ``kind`` is one of:

    * ``"estimate"`` — an estimation window closed without action;
    * ``"calibrate"`` — the first estimate became the baseline (and, for
      time sessions with ``calibrate_first``, re-optimized the chain);
    * ``"rebalance"`` — drift exceeded the threshold for ``hysteresis``
      windows outside the cooldown and the chain was migrated;
    * ``"recalibrate"`` — same trigger on a count-window session, which
      re-baselines without migrating.
    """

    kind: str
    timestamp: float
    drift: float
    statistics: StreamStatistics
    boundaries: tuple = ()


class AdaptivePolicy:
    """Watches a live engine's statistics and re-optimizes its chain.

    Parameters
    ----------
    window:
        Length of one estimation window in stream-seconds.
    drift_threshold:
        Relative change (of any arrival rate, the join factor, or a
        selection selectivity) vs the baseline statistics that counts as
        drift.
    cooldown:
        Minimum stream-seconds between two rebalances.
    hysteresis:
        Number of consecutive drifted windows required before acting.
    min_arrivals:
        Estimation windows backed by fewer arrivals are discarded (too
        noisy to act on).
    system_overhead / tuple_size:
        Cost-model constants (``Csys``, ``Mt``) forwarded to
        :meth:`StreamStatistics.chain_parameters` — the quantities the
        stream cannot measure about the host system.
    calibrate_first:
        When True (default), the first valid estimate immediately
        re-optimizes the chain (deployment-time calibration).  A chain that
        is already optimal for the measured load performs no migration.
    smoothing:
        Exponential weight of each new window in the running estimate
        (:meth:`StreamStatistics.blend`); smoothing shrinks single-window
        sampling noise so it cannot masquerade as drift.  1.0 disables
        smoothing (each window judged alone).
    """

    def __init__(
        self,
        window: float = 2.0,
        drift_threshold: float = 0.25,
        cooldown: float = 6.0,
        hysteresis: int = 2,
        min_arrivals: int = 64,
        system_overhead: float = 0.5,
        tuple_size: float = 1.0,
        calibrate_first: bool = True,
        smoothing: float = 0.5,
    ) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        if drift_threshold <= 0:
            raise ValueError(f"drift_threshold must be positive, got {drift_threshold}")
        if cooldown < 0:
            raise ValueError(f"cooldown must be non-negative, got {cooldown}")
        if hysteresis < 1:
            raise ValueError(f"hysteresis must be at least 1, got {hysteresis}")
        if not 0.0 < smoothing <= 1.0:
            raise ValueError(f"smoothing must lie in (0, 1], got {smoothing}")
        self.smoothing = float(smoothing)
        self.window = float(window)
        self.drift_threshold = float(drift_threshold)
        self.cooldown = float(cooldown)
        self.hysteresis = int(hysteresis)
        self.min_arrivals = int(min_arrivals)
        self.system_overhead = float(system_overhead)
        self.tuple_size = float(tuple_size)
        self.calibrate_first = calibrate_first
        self.events: list[PolicyEvent] = []
        self.estimates: list[StreamStatistics] = []
        self.rebalances = 0
        self.baseline: StreamStatistics | None = None
        self.smoothed: StreamStatistics | None = None
        self._window_start: float | None = None
        self._start_snapshot: MetricsSnapshot | None = None
        self._streak = 0
        self._last_rebalance: float | None = None

    # -- engine callback ------------------------------------------------------
    def on_batch(self, engine, now: float) -> None:
        """Called by the engine after every processed batch.

        ``now`` is the stream timestamp of the batch's last arrival; all
        policy timing (windows, cooldown) runs on stream time, so behaviour
        is deterministic and independent of wall-clock speed.
        """
        if self._window_start is None:
            self._window_start = now
            self._start_snapshot = engine.metrics.snapshot()
            return
        if now - self._window_start < self.window:
            return
        after = engine.metrics.snapshot()
        assert self._start_snapshot is not None
        estimate = StreamStatistics.from_metrics_window(
            self._start_snapshot,
            after,
            left_stream=engine.left_stream,
            right_stream=engine.right_stream,
        )
        self._window_start = now
        self._start_snapshot = after
        if estimate.sample_arrivals < self.min_arrivals:
            return
        if (
            engine.left_stream not in estimate.arrival_rates
            or engine.right_stream not in estimate.arrival_rates
        ):
            # A window that saw only one stream (late producer, burst) cannot
            # parameterize the cost model; wait for a complete window.
            return
        self.estimates.append(estimate)
        self.smoothed = (
            estimate
            if self.smoothed is None
            else self.smoothed.blend(estimate, self.smoothing)
        )
        estimate = self.smoothed
        if self.baseline is None:
            self.baseline = estimate
            if self.calibrate_first:
                self._apply(engine, estimate, now, drift=0.0, kind="calibrate")
            else:
                self.events.append(PolicyEvent("calibrate", now, 0.0, estimate))
            return
        drift = estimate.drift(self.baseline)
        if drift <= self.drift_threshold:
            self._streak = 0
            self.events.append(PolicyEvent("estimate", now, drift, estimate))
            return
        self._streak += 1
        if self._streak < self.hysteresis:
            self.events.append(PolicyEvent("estimate", now, drift, estimate))
            return
        if (
            self._last_rebalance is not None
            and now - self._last_rebalance < self.cooldown
        ):
            self.events.append(PolicyEvent("estimate", now, drift, estimate))
            return
        self._apply(engine, estimate, now, drift)

    # -- internals ------------------------------------------------------------
    def _apply(
        self,
        engine,
        estimate: StreamStatistics,
        now: float,
        drift: float,
        kind: str = "rebalance",
    ) -> None:
        self._streak = 0
        self.baseline = estimate
        self._last_rebalance = now
        if engine.window_kind != "time":
            # Count-window sessions keep the Mem-Opt chain; re-baselining is
            # the whole adaptation.  The first baseline is still a
            # "calibrate" event; only drift-triggered ones are recalibrations.
            count_kind = "calibrate" if kind == "calibrate" else "recalibrate"
            self.events.append(PolicyEvent(count_kind, now, drift, estimate))
            return
        params = estimate.chain_parameters(
            system_overhead=self.system_overhead, tuple_size=self.tuple_size
        )
        boundaries = engine.rebalance(params, statistics=estimate)
        if kind == "rebalance":
            self.rebalances += 1
        self.events.append(
            PolicyEvent(kind, now, drift, estimate, boundaries=tuple(boundaries))
        )

    def describe(self) -> str:
        """One-line summary: tuning, calibration state and rebalance count."""
        state = (
            f"baseline={self.baseline.describe()}"
            if self.baseline is not None
            else "uncalibrated"
        )
        return (
            f"AdaptivePolicy(window={self.window:g}s, "
            f"threshold={self.drift_threshold:.0%}, cooldown={self.cooldown:g}s, "
            f"hysteresis={self.hysteresis}) {state}, "
            f"{self.rebalances} rebalance(s)"
        )
