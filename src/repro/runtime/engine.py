"""Batch-aware stream session with online multi-query admission.

:class:`StreamEngine` is the first-class API for the scenario that
``examples/online_migration.py`` used to hand-roll: a set of window-join
queries over two streams that *changes while the stream is running*.  The
engine owns one shared :class:`~repro.core.chain.SlicedJoinChain` and keeps
it consistent with the registered queries using the paper's online
migration primitives (Section 5.3):

* ``add_query`` with a window that falls inside an existing slice *splits*
  that slice at the new boundary;
* ``add_query`` with a window beyond the chain end *appends* an empty tail
  slice;
* ``remove_query`` *merges* the slice ending at the orphaned boundary into
  its successor (or drops the tail slice when the largest window leaves).

Every migration is a drain-and-splice: the engine first flushes any
buffered arrival batch (so all inter-slice queues are empty — the drain),
then rewrites the slice boundaries in place (the splice).  In-flight join
state is never copied out of the chain, so nothing is lost and nothing is
duplicated; the equivalence is asserted by
``tests/test_runtime_engine.py``.

Arrivals are processed through the vectorized
:meth:`~repro.core.chain.SlicedJoinChain.process_batch` path in batches of
``batch_size`` (1 = per-tuple).  Per-query results are delivered in
timestamp order (ties broken by sequence numbers), which makes the output
independent of the batch size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.core.chain import SlicedJoinChain
from repro.core.cpu_opt import build_cpu_opt_chain
from repro.core.merge_graph import ChainCostParameters
from repro.engine.errors import MigrationError, QueryError
from repro.engine.metrics import MetricsCollector
from repro.query.predicates import JoinCondition
from repro.query.query import ContinuousQuery, QueryWorkload
from repro.streams.tuples import JoinedTuple, StreamTuple

__all__ = ["EngineStats", "MigrationEvent", "RegisteredQuery", "StreamEngine"]

_EPSILON = 1e-9


@dataclass(frozen=True)
class RegisteredQuery:
    """One continuous query currently admitted to a :class:`StreamEngine`."""

    name: str
    window: float
    registered_at: int  #: Arrival count at admission time.


@dataclass(frozen=True)
class MigrationEvent:
    """One chain migration performed by the engine (for observability)."""

    kind: str  #: "create" | "split" | "append" | "merge" | "drop-tail" | "teardown"
    boundary: float
    arrival_count: int
    boundaries_after: tuple[float, ...]


@dataclass
class EngineStats:
    """Aggregate counters of one engine session."""

    arrivals: int = 0
    batches: int = 0
    results_delivered: int = 0
    migrations: list[MigrationEvent] = field(default_factory=list)


class StreamEngine:
    """A live shared sliced-join session with online query admission.

    Parameters
    ----------
    condition:
        The pairwise join condition shared by every admitted query (the
        state-slice sharing precondition, as in
        :class:`~repro.query.query.QueryWorkload`).
    left_stream / right_stream:
        Names of the two input streams.
    batch_size:
        Number of arrivals grouped into one chain batch; 1 processes
        per-tuple.  Results are independent of the batch size.
    metrics:
        Optional shared metrics collector for cost accounting.
    """

    def __init__(
        self,
        condition: JoinCondition,
        left_stream: str = "A",
        right_stream: str = "B",
        batch_size: int = 32,
        metrics: MetricsCollector | None = None,
    ) -> None:
        self.condition = condition
        self.left_stream = left_stream
        self.right_stream = right_stream
        self.batch_size = max(1, int(batch_size))
        self.metrics = metrics if metrics is not None else MetricsCollector()
        self.stats = EngineStats()
        self._chain: SlicedJoinChain | None = None
        self._queries: dict[str, RegisteredQuery] = {}
        self._results: dict[str, list[JoinedTuple]] = {}
        self._pending: list[StreamTuple] = []
        #: Per-slice routing table: ``[(query_name, window_check)]`` where
        #: ``window_check`` is None when every result of the slice belongs to
        #: the query outright (slice end <= query window).
        self._routing: list[list[tuple[str, float | None]]] = []

    # -- admission -------------------------------------------------------------
    def add_query(self, name: str, window: float) -> RegisteredQuery:
        """Admit a query while the stream is running.

        The chain is migrated incrementally (split or append); state already
        resident in the chain is untouched, so the new query immediately
        sees every stored tuple that falls inside its window — exactly the
        results of a fresh shared plan over the remaining stream suffix.
        """
        if name in self._queries:
            raise QueryError(f"query {name!r} is already registered")
        window = float(window)
        if window <= 0:
            raise QueryError(f"query {name!r} has non-positive window {window}")
        self._drain()
        if self._chain is None:
            self._chain = SlicedJoinChain(
                [0.0, window],
                self.condition,
                left_stream=self.left_stream,
                right_stream=self.right_stream,
                metrics=self.metrics,
            )
            self._record_migration("create", window)
        else:
            chain = self._chain
            boundaries = chain.boundaries
            if window > boundaries[-1] + _EPSILON:
                chain.append_slice(window)
                self._record_migration("append", window)
            elif all(abs(window - b) > _EPSILON for b in boundaries):
                index = chain.slice_index_containing(window)
                if index is None:  # pragma: no cover - boundaries are contiguous
                    raise MigrationError(
                        f"no slice of {boundaries} contains boundary {window:g}"
                    )
                chain.split_slice(index, window)
                self._record_migration("split", window)
        query = RegisteredQuery(name, window, self.stats.arrivals)
        self._queries[name] = query
        self._results[name] = []
        self._rebuild_routing()
        return query

    def remove_query(self, name: str) -> list[JoinedTuple]:
        """Deregister a query and return the results delivered to it.

        Boundaries no longer needed by any remaining query are merged away
        (or the tail slice is dropped when the largest window leaves); the
        remaining queries keep producing exactly the same results.
        """
        try:
            query = self._queries.pop(name)
        except KeyError:
            raise QueryError(f"no registered query named {name!r}") from None
        self._drain()
        delivered = self._results.pop(name)
        if not self._queries:
            self._chain = None
            self._routing = []
            self._record_migration("teardown", query.window)
            return delivered
        if self._boundary_needed(query.window):
            self._rebuild_routing()
            return delivered
        chain = self._chain
        assert chain is not None
        max_window = max(q.window for q in self._queries.values())
        if query.window > max_window + _EPSILON:
            # The largest window left: shed the chain's tail beyond the new
            # largest window (its state is too old for every remaining
            # query).  A prior rebalance may have merged the new largest
            # window's boundary away, so re-introduce it with a split first;
            # the next cross-purges then expel the now-too-old tuples off
            # the shortened chain end.
            index = chain.slice_index_containing(max_window)
            if index is not None:
                chain.split_slice(index, max_window)
                self._record_migration("split", max_window)
            dropped = False
            while (
                chain.slice_count() > 1
                and chain.joins[-1].slice.start >= max_window - _EPSILON
            ):
                chain.drop_tail_slice()
                dropped = True
            if dropped:
                self._record_migration("drop-tail", query.window)
        else:
            index = chain.slice_index_for_boundary(query.window)
            if index is not None and index < chain.slice_count() - 1:
                chain.merge_slices(index)
                self._record_migration("merge", query.window)
        self._rebuild_routing()
        return delivered

    def _boundary_needed(self, window: float) -> bool:
        return any(
            abs(query.window - window) <= _EPSILON
            for query in self._queries.values()
        )

    # -- execution -------------------------------------------------------------
    def process(self, tup: StreamTuple) -> None:
        """Ingest one arriving tuple (buffered until the batch fills)."""
        self._pending.append(tup)
        if len(self._pending) >= self.batch_size:
            self._run_batch()

    def process_many(self, tuples: Iterable[StreamTuple]) -> None:
        """Ingest a sequence of timestamp-ordered arrivals."""
        for tup in tuples:
            self.process(tup)

    def flush(self) -> None:
        """Process any buffered arrivals immediately (drain the batch)."""
        self._run_batch()

    def _drain(self) -> None:
        """The drain step of drain-and-splice: empty the arrival buffer."""
        self._run_batch()

    def _run_batch(self) -> None:
        batch = self._pending
        if not batch:
            return
        self._pending = []
        self.stats.arrivals += len(batch)
        self.stats.batches += 1
        self.metrics.record_ingest(len(batch))
        chain = self._chain
        if chain is None:
            return  # No registered queries: arrivals pass through unjoined.
        routing = self._routing
        results = self._results
        block: dict[str, list[JoinedTuple]] = {}
        for index, joined in chain.process_batch(batch):
            gap = None
            for query_name, window in routing[index]:
                if window is not None:
                    if gap is None:
                        gap = abs(joined.left.timestamp - joined.right.timestamp)
                    if gap >= window:
                        continue
                block.setdefault(query_name, []).append(joined)
        delivered = 0
        for query_name, items in block.items():
            # Timestamp-ordered delivery (ties broken by sequence numbers)
            # makes per-query output independent of the batch size.
            items.sort(key=lambda j: (j.timestamp, j.left.seqno, j.right.seqno))
            results[query_name].extend(items)
            delivered += len(items)
        self.stats.results_delivered += delivered
        self.metrics.sample_memory(batch[-1].timestamp, chain.state_size())

    # -- results ---------------------------------------------------------------
    def results(self, name: str) -> list[JoinedTuple]:
        """Results delivered to a query so far (buffered arrivals included)."""
        self._drain()
        try:
            return list(self._results[name])
        except KeyError:
            raise QueryError(f"no registered query named {name!r}") from None

    def pop_results(self, name: str) -> list[JoinedTuple]:
        """Return and clear a query's delivered results."""
        self._drain()
        try:
            delivered = self._results[name]
        except KeyError:
            raise QueryError(f"no registered query named {name!r}") from None
        self._results[name] = []
        return delivered

    # -- adaptive re-slicing ---------------------------------------------------
    def rebalance(self, params: ChainCostParameters) -> tuple[float, ...]:
        """Migrate the live chain to the CPU-Opt boundaries for the current
        workload (Section 5.2/6.2) and return the new boundaries.

        The target chain is found by the shortest-path search over the merge
        graph; the live chain is then moved there incrementally — splits
        first (they only need an enclosing slice), merges second — with the
        usual drain-and-splice discipline, so the session keeps running.
        """
        if not self._queries:
            raise MigrationError("cannot rebalance an engine with no queries")
        self._drain()
        workload = self.workload()
        target = [0.0] + build_cpu_opt_chain(workload, params).boundaries()[1:]
        chain = self._chain
        assert chain is not None
        for boundary in target:
            if all(abs(boundary - b) > _EPSILON for b in chain.boundaries):
                index = chain.slice_index_containing(boundary)
                if index is not None:
                    chain.split_slice(index, boundary)
                    self._record_migration("split", boundary)
        for boundary in list(chain.boundaries[1:-1]):
            if all(abs(boundary - t) > _EPSILON for t in target):
                index = chain.slice_index_for_boundary(boundary)
                if index is not None:
                    chain.merge_slices(index)
                    self._record_migration("merge", boundary)
        self._rebuild_routing()
        return tuple(chain.boundaries)

    # -- introspection ---------------------------------------------------------
    @property
    def boundaries(self) -> tuple[float, ...]:
        return tuple(self._chain.boundaries) if self._chain is not None else ()

    def queries(self) -> list[RegisteredQuery]:
        return sorted(self._queries.values(), key=lambda q: (q.window, q.name))

    def query(self, name: str) -> RegisteredQuery:
        try:
            return self._queries[name]
        except KeyError:
            raise QueryError(f"no registered query named {name!r}") from None

    def workload(self) -> QueryWorkload:
        """The registered queries as a static :class:`QueryWorkload`."""
        if not self._queries:
            raise QueryError("the engine has no registered queries")
        return QueryWorkload(
            [
                ContinuousQuery(
                    name=query.name,
                    window=query.window,
                    join_condition=self.condition,
                    left_stream=self.left_stream,
                    right_stream=self.right_stream,
                )
                for query in self._queries.values()
            ]
        )

    def slice_count(self) -> int:
        return self._chain.slice_count() if self._chain is not None else 0

    def state_size(self) -> int:
        return self._chain.state_size() if self._chain is not None else 0

    def states_are_disjoint(self) -> bool:
        return self._chain.states_are_disjoint() if self._chain is not None else True

    def describe(self) -> str:
        if self._chain is None:
            return "StreamEngine (idle: no registered queries)"
        queries = ", ".join(
            f"{q.name}[{q.window:g}s]" for q in self.queries()
        )
        return f"StreamEngine ({queries}) chain: {self._chain.describe()}"

    # -- internals -------------------------------------------------------------
    def _rebuild_routing(self) -> None:
        """Recompute the per-slice result routing after any migration.

        A query taps every slice that starts inside its window; a window
        check is needed only where the slice extends past the window (a
        merged or split slice serving a smaller query, the router check of
        Figure 13(b))."""
        chain = self._chain
        if chain is None:
            self._routing = []
            return
        routing: list[list[tuple[str, float | None]]] = []
        for join in chain.joins:
            slice_routes: list[tuple[str, float | None]] = []
            for query in self._queries.values():
                if join.slice.end <= query.window + _EPSILON:
                    slice_routes.append((query.name, None))
                elif join.slice.start < query.window - _EPSILON:
                    slice_routes.append((query.name, query.window))
            routing.append(slice_routes)
        self._routing = routing

    def _record_migration(self, kind: str, boundary: float) -> None:
        self.stats.migrations.append(
            MigrationEvent(
                kind=kind,
                boundary=boundary,
                arrival_count=self.stats.arrivals,
                boundaries_after=self.boundaries,
            )
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"<StreamEngine queries={len(self._queries)} "
            f"slices={self.slice_count()} arrivals={self.stats.arrivals}>"
        )
