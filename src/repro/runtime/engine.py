"""Batch-aware stream session with online multi-query admission.

:class:`StreamEngine` is the first-class API for the scenario that
``examples/online_migration.py`` used to hand-roll: a set of window-join
queries over two streams that *changes while the stream is running*.  The
engine owns one shared chain of sliced joins and keeps it consistent with
the registered queries using the paper's online migration primitives
(Section 5.3):

* ``add_query`` with a window that falls inside an existing slice *splits*
  that slice at the new boundary;
* ``add_query`` with a window beyond the chain end *appends* an empty tail
  slice;
* ``remove_query`` *merges* the slice ending at the orphaned boundary into
  its successor (or drops the tail slice when the largest window leaves).

Every migration is a drain-and-splice: the engine first flushes any
buffered arrival batch (so all inter-slice queues are empty — the drain),
then rewrites the slice boundaries in place (the splice).  In-flight join
state is never copied out of the chain, so nothing is lost and nothing is
duplicated; the equivalence is asserted by ``tests/test_runtime_engine.py``
and fuzzed against a per-query unshared baseline by
``tests/test_fuzz_differential.py``.

Three dimensions of the paper's query model are admitted:

**Selections** (Section 6) — a query may carry a predicate per input
stream.  On every admission or removal the engine re-derives the shared
push-down placement: the disjunction σ'_i of the predicates of all queries
whose window reaches slice ``i`` is spliced into the chain link in front of
that slice (as :class:`~repro.operators.selection.StreamFilter` operators),
and each query applies its *residual* predicate to the results it taps —
re-evaluated only where the pushed disjunction is weaker than the query's
own predicate.  Filter splicing rides the same drain-and-splice migration,
so the placement stays optimal as the query set evolves.

**Count-based windows** — ``window_kind="count"`` (or the
:class:`CountStreamEngine` convenience subclass) runs the same admission
protocol over a :class:`~repro.core.count_chain.CountSlicedJoinChain`,
whose boundaries are tuple *ranks* instead of time offsets.  Count-window
sessions always keep the Mem-Opt chain (one boundary per registered count):
a merged slice's results cannot be re-split by rank at routing time, since
a tuple's rank — unlike a timestamp gap — is not derivable from the joined
pair itself.  For the same reason selections are *not* pushed into a count
chain: a pushed filter would change which tuples occupy the "most recent
N" ranks, silently redefining every query's window.  Count-window
selections are therefore applied to each query's results (window semantics:
the N most recent *arrivals*, selections filter the answers).

**Hash probing** — ``probe="hash"`` (equi-join conditions only, or
``"auto"``) makes every slice maintain a per-stream hash index on the
equi-key, so a probing tuple examines one bucket instead of the whole
sliced state.  Indexes survive split/merge migrations (rebuilt by the
chain's ``load_state``); the ≥2× throughput gate lives in
``benchmarks/test_hash_probe.py``.

**Adaptive re-optimization** — with ``collect_statistics=True`` (or an
attached :class:`~repro.runtime.adaptive.AdaptivePolicy`) every processed
batch also records the estimator observations of the shared statistics
plane (:mod:`repro.core.statistics`): per-stream ingest counts, head-slice
match/candidate counts, and per-query selection pass rates.  Windowed
snapshot diffs of those counters yield live
:class:`~repro.core.statistics.StreamStatistics` estimates, and
:meth:`StreamEngine.rebalance` accepts such an estimate to run the CPU-Opt
search on *measured* rates and selectivities — the policy automates exactly
that loop, with hysteresis and a cooldown so stable load never migrates.

Arrivals are processed through the vectorized ``process_batch`` path in
batches of ``batch_size`` (1 = per-tuple).  Per-query results are delivered
in timestamp order (ties broken by sequence numbers), which makes the
output independent of the batch size.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable

from repro.core.chain import SlicedJoinChain
from repro.core.count_chain import CountSlicedJoinChain
from repro.core.cpu_opt import build_cpu_opt_chain
from repro.core.merge_graph import DEFAULT_COLD_PROBE_PENALTY, ChainCostParameters
from repro.core.pushdown import residual_predicate
from repro.core.statistics import (
    OBS_CHAIN_MATCHES,
    OBS_CHAIN_OPPORTUNITIES,
    StreamStatistics,
    filter_observation_key,
)
from repro.engine.errors import MigrationError, QueryError
from repro.engine.metrics import CostCategory, MetricsCollector
from repro.engine.spill import SpillStore, estimate_tuple_bytes
from repro.operators.sliced_join import resolve_probe
from repro.query.predicates import JoinCondition, Predicate, TruePredicate
from repro.query.query import ContinuousQuery, QueryWorkload
from repro.streams.tuples import JoinedTuple, StreamTuple

__all__ = [
    "CountStreamEngine",
    "EngineStats",
    "MigrationEvent",
    "RegisteredQuery",
    "StreamEngine",
]

_EPSILON = 1e-9

#: One per-slice routing entry: ``(query, window_check, left_res, right_res)``.
#: ``window_check`` is None when every result of the slice is inside the
#: query's window; the residual predicates are None when already implied by
#: the filter pushed below the slice.
_Route = tuple[str, float | None, Predicate | None, Predicate | None]


@dataclass(frozen=True)
class RegisteredQuery:
    """One continuous query currently admitted to a :class:`StreamEngine`."""

    name: str
    window: float  #: Seconds for time-window sessions, ranks for count-window.
    registered_at: int  #: Arrival count at admission time.
    left_filter: Predicate = field(default_factory=TruePredicate)
    right_filter: Predicate = field(default_factory=TruePredicate)

    @property
    def has_selection(self) -> bool:
        """Whether either side carries a non-trivial selection predicate."""
        return not isinstance(self.left_filter, TruePredicate) or not isinstance(
            self.right_filter, TruePredicate
        )


@dataclass(frozen=True)
class MigrationEvent:
    """One chain migration performed by the engine (for observability)."""

    kind: str  #: "create" | "split" | "append" | "merge" | "drop-tail" | "teardown"
    boundary: float
    arrival_count: int
    boundaries_after: tuple[float, ...]


@dataclass
class EngineStats:
    """Aggregate counters of one engine session."""

    arrivals: int = 0
    batches: int = 0
    results_delivered: int = 0
    migrations: list[MigrationEvent] = field(default_factory=list)

    @classmethod
    def aggregate(cls, stats: Iterable["EngineStats"]) -> "EngineStats":
        """Fold the stats of several shard sessions into one global view.

        Counters sum; the migration history is taken from the first session
        — a sharded engine fans every admission out to all shards, so the
        shards' migration sequences are replicas of each other (only the
        per-shard ``arrival_count`` stamps differ).
        """
        merged = cls()
        for entry in stats:
            merged.arrivals += entry.arrivals
            merged.batches += entry.batches
            merged.results_delivered += entry.results_delivered
            if not merged.migrations:
                merged.migrations = list(entry.migrations)
        return merged


class StreamEngine:
    """A live shared sliced-join session with online query admission.

    Parameters
    ----------
    condition:
        The pairwise join condition shared by every admitted query (the
        state-slice sharing precondition, as in
        :class:`~repro.query.query.QueryWorkload`).
    left_stream / right_stream:
        Names of the two input streams.
    batch_size:
        Number of arrivals grouped into one chain batch; 1 processes
        per-tuple.  Results are independent of the batch size.
    metrics:
        Optional shared metrics collector for cost accounting.
    window_kind:
        ``"time"`` (default) for sliding windows in seconds over a
        :class:`~repro.core.chain.SlicedJoinChain`, or ``"count"`` for
        most-recent-N-tuples windows over a
        :class:`~repro.core.count_chain.CountSlicedJoinChain`.
    probe:
        Probe algorithm of every slice: ``"nested_loop"`` (the paper's cost
        model), ``"hash"`` (equi-join conditions only) or ``"auto"``.
    columnar:
        ``True``/``"auto"`` (default) runs the slices' batch hot path over
        columnar struct-of-arrays state (see
        :mod:`repro.engine.columns`); ``False`` keeps the tuple-at-a-time
        deque representation.  Results are identical either way.
    policy:
        Optional :class:`~repro.runtime.adaptive.AdaptivePolicy`; attaching
        one turns statistics collection on and lets the session re-optimize
        its own chain from observed drift.
    collect_statistics:
        Record the estimator observations (per-stream ingest rates, head
        slice match/opportunity counts, per-query selection pass rates)
        even without a policy, so callers can build
        :class:`~repro.core.statistics.StreamStatistics` estimates from
        snapshot diffs themselves.
    memory_budget_bytes:
        Optional in-core state budget.  After every batch the engine
        estimates the resident footprint of the chain's join states; while
        it exceeds the budget, cold slices (oldest first, never the head
        slice) are spilled to an on-disk segment store
        (:mod:`repro.engine.spill`).  Spilled slices keep answering
        cross-purges and probes from disk, so results are byte-identical
        to the unbudgeted session; migration and reshard boundaries
        re-materialize them (``load_state`` is the single splice point).
        ``None`` (default) keeps everything in core.
    """

    def __init__(
        self,
        condition: JoinCondition,
        left_stream: str = "A",
        right_stream: str = "B",
        batch_size: int = 32,
        metrics: MetricsCollector | None = None,
        window_kind: str = "time",
        probe: str = "nested_loop",
        columnar: bool | str = "auto",
        policy=None,
        collect_statistics: bool = False,
        memory_budget_bytes: int | None = None,
    ) -> None:
        if window_kind not in ("time", "count"):
            raise QueryError(
                f"window_kind must be 'time' or 'count', got {window_kind!r}"
            )
        if memory_budget_bytes is not None:
            memory_budget_bytes = int(memory_budget_bytes)
            if memory_budget_bytes <= 0:
                raise QueryError(
                    f"memory_budget_bytes must be positive, got {memory_budget_bytes}"
                )
        self.condition = condition
        self.left_stream = left_stream
        self.right_stream = right_stream
        self.batch_size = max(1, int(batch_size))
        self.metrics = metrics if metrics is not None else MetricsCollector()
        self.window_kind = window_kind
        self.probe = probe
        self.columnar = columnar
        self.stats = EngineStats()
        self._chain: SlicedJoinChain | CountSlicedJoinChain | None = None
        self._queries: dict[str, RegisteredQuery] = {}
        self._results: dict[str, list[JoinedTuple]] = {}
        self._pending: list[StreamTuple] = []
        self._routing: list[list[_Route]] = []
        self.policy = None
        self._observing = bool(collect_statistics)
        self.memory_budget_bytes = memory_budget_bytes
        self._spill_store: SpillStore | None = None
        self._tuple_bytes: int | None = None
        self._spill_reported: dict[str, int] = {}
        if policy is not None:
            self.attach_policy(policy)

    # -- admission -------------------------------------------------------------
    def add_query(
        self,
        name: str,
        window: float,
        left_filter: Predicate | None = None,
        right_filter: Predicate | None = None,
    ) -> RegisteredQuery:
        """Admit a query while the stream is running.

        The chain is migrated incrementally (split or append); state already
        resident in the chain is untouched, so the new query immediately
        sees every stored tuple that falls inside its window — exactly the
        results of a fresh shared plan over the remaining stream suffix.
        ``left_filter`` / ``right_filter`` are optional selection predicates
        over the respective input stream; the engine re-derives the shared
        push-down placement as part of the same migration.
        """
        if name in self._queries:
            raise QueryError(f"query {name!r} is already registered")
        window = self._normalize_window(name, window)
        self._drain()
        if self._chain is None:
            self._chain = self._make_chain(window)
            self._record_migration("create", window)
        else:
            chain = self._chain
            boundaries = chain.boundaries
            if window > boundaries[-1] + _EPSILON:
                chain.append_slice(window)
                self._record_migration("append", window)
            elif all(abs(window - b) > _EPSILON for b in boundaries):
                index = chain.slice_index_containing(window)
                if index is None:  # pragma: no cover - boundaries are contiguous
                    raise MigrationError(
                        f"no slice of {boundaries} contains boundary {window:g}"
                    )
                chain.split_slice(index, window)
                self._record_migration("split", window)
        query = RegisteredQuery(
            name,
            window,
            self.stats.arrivals,
            left_filter if left_filter is not None else TruePredicate(),
            right_filter if right_filter is not None else TruePredicate(),
        )
        self._queries[name] = query
        self._results[name] = []
        self._refresh_plan()
        return query

    def remove_query(self, name: str) -> list[JoinedTuple]:
        """Deregister a query and return the results delivered to it.

        Boundaries no longer needed by any remaining query are merged away
        (or the tail slice is dropped when the largest window leaves), and
        the pushed-down filters are re-derived for the remaining queries;
        those queries keep producing exactly the same results.
        """
        try:
            query = self._queries.pop(name)
        except KeyError:
            raise QueryError(f"no registered query named {name!r}") from None
        self._drain()
        delivered = self._results.pop(name)
        if not self._queries:
            chain = self._chain
            if chain is not None:
                # The whole chain's state is being discarded; delete any
                # segments its spilled slices held so they don't pile up in
                # the store across teardown/re-admission cycles.
                for join in chain.joins:
                    release = getattr(join, "release_spill", None)
                    if release is not None:
                        release()
            self._chain = None
            self._routing = []
            self._record_migration("teardown", query.window)
            return delivered
        if self._boundary_needed(query.window):
            self._refresh_plan()
            return delivered
        chain = self._chain
        assert chain is not None
        max_window = max(q.window for q in self._queries.values())
        if query.window > max_window + _EPSILON:
            # The largest window left: shed the chain's tail beyond the new
            # largest window (its state is too old for every remaining
            # query).  A prior rebalance may have merged the new largest
            # window's boundary away, so re-introduce it with a split first;
            # the next cross-purges then expel the now-too-old tuples off
            # the shortened chain end.  (Count-window sessions keep the
            # Mem-Opt invariant — every registered count is a boundary — so
            # the split branch never triggers there.)
            index = chain.slice_index_containing(max_window)
            if index is not None:
                chain.split_slice(index, max_window)
                self._record_migration("split", max_window)
            dropped = False
            while (
                chain.slice_count() > 1
                and self._tail_start() >= max_window - _EPSILON
            ):
                chain.drop_tail_slice()
                dropped = True
            if dropped:
                self._record_migration("drop-tail", query.window)
        else:
            index = chain.slice_index_for_boundary(query.window)
            if index is not None and index < chain.slice_count() - 1:
                chain.merge_slices(index)
                self._record_migration("merge", query.window)
        self._refresh_plan()
        return delivered

    def _normalize_window(self, name: str, window: float) -> float:
        if self.window_kind == "count":
            if window != int(window) or int(window) <= 0:
                raise QueryError(
                    f"query {name!r} needs a positive integer count window, "
                    f"got {window!r}"
                )
            return int(window)
        window = float(window)
        if window <= 0:
            raise QueryError(f"query {name!r} has non-positive window {window}")
        return window

    def _make_chain(self, window: float) -> SlicedJoinChain | CountSlicedJoinChain:
        chain_cls = SlicedJoinChain if self.window_kind == "time" else CountSlicedJoinChain
        return chain_cls(
            [0, window],
            self.condition,
            left_stream=self.left_stream,
            right_stream=self.right_stream,
            metrics=self.metrics,
            probe=self.probe,
            columnar=self.columnar,
        )

    def set_probe(self, probe: str) -> None:
        """Switch the probing strategy of the running chain in place.

        Per-shard probe tuning calls this on individual shard engines so a
        hot shard can use hash probing while a sparse one stays with the
        cheaper nested loop.  The resident slice states survive the switch.
        """
        self.probe = probe
        if self._chain is not None:
            self._chain.set_probe(probe)

    def _tail_start(self) -> float:
        chain = self._chain
        assert chain is not None
        tail = chain.joins[-1]
        if self.window_kind == "time":
            return tail.slice.start
        return tail.rank_start

    def _boundary_needed(self, window: float) -> bool:
        return any(
            abs(query.window - window) <= _EPSILON
            for query in self._queries.values()
        )

    # -- execution -------------------------------------------------------------
    def process(self, tup: StreamTuple) -> None:
        """Ingest one arriving tuple (buffered until the batch fills)."""
        self._pending.append(tup)
        if len(self._pending) >= self.batch_size:
            self._run_batch()

    def process_many(self, tuples: Iterable[StreamTuple]) -> None:
        """Ingest a sequence of timestamp-ordered arrivals."""
        for tup in tuples:
            self.process(tup)

    def flush(self) -> None:
        """Process any buffered arrivals immediately (drain the batch)."""
        self._run_batch()

    def _drain(self) -> None:
        """The drain step of drain-and-splice: empty the arrival buffer."""
        self._run_batch()

    def _run_batch(self) -> None:
        batch = self._pending
        if not batch:
            return
        self._pending = []
        self.stats.arrivals += len(batch)
        self.stats.batches += 1
        metrics = self.metrics
        left_arrivals = sum(1 for tup in batch if tup.stream == self.left_stream)
        right_arrivals = len(batch) - left_arrivals
        metrics.record_ingest(left_arrivals, self.left_stream)
        metrics.record_ingest(right_arrivals, self.right_stream)
        chain = self._chain
        if chain is None:
            metrics.observe_time(batch[-1].timestamp)
            return  # No registered queries: arrivals pass through unjoined.
        observing = self._observing
        if observing:
            pre_left, pre_right = chain.head_state_sizes()
        routing = self._routing
        results = self._results
        block: dict[str, list[JoinedTuple]] = {}
        select_count = 0
        route_count = 0
        head_matches = 0
        for index, joined in chain.process_batch(batch):
            if index == 0:
                head_matches += 1
            gap = None
            for query_name, window, left_res, right_res in routing[index]:
                if window is not None:
                    # One timestamp comparison per (result, window-checked
                    # route), matching the Router accounting of Section 3.1.
                    route_count += 1
                    if gap is None:
                        gap = abs(joined.left.timestamp - joined.right.timestamp)
                    if gap >= window:
                        continue
                if left_res is not None:
                    select_count += 1
                    if not left_res.matches(joined.left):
                        continue
                if right_res is not None:
                    select_count += 1
                    if not right_res.matches(joined.right):
                        continue
                block.setdefault(query_name, []).append(joined)
        delivered = 0
        for query_name, items in block.items():
            # Timestamp-ordered delivery (ties broken by sequence numbers)
            # makes per-query output independent of the batch size.
            items.sort(key=lambda j: (j.timestamp, j.left.seqno, j.right.seqno))
            results[query_name].extend(items)
            metrics.record_emission(query_name, len(items))
            delivered += len(items)
        if select_count:
            metrics.count(CostCategory.SELECT, select_count)
        if route_count:
            metrics.count(CostCategory.ROUTE, route_count)
        self.stats.results_delivered += delivered
        if self._tuple_bytes is None:
            self._tuple_bytes = max(64, estimate_tuple_bytes(batch[0]))
        resident, spilled = self._enforce_budget()
        metrics.sample_memory(
            batch[-1].timestamp, chain.state_size(), resident, spilled
        )
        self._report_spill_counters()
        if observing:
            self._observe_batch(
                batch, left_arrivals, right_arrivals,
                (pre_left, pre_right), head_matches,
            )
        if self.policy is not None:
            self.policy.on_batch(self, batch[-1].timestamp)

    # -- tiered state (memory budget) -------------------------------------------
    @property
    def spill_store(self) -> SpillStore:
        """The session's cold-tier segment store (created on first use)."""
        if self._spill_store is None:
            self._spill_store = SpillStore()
        return self._spill_store

    def memory_bytes(self) -> tuple[int, int]:
        """``(resident, spilled)`` byte estimate of the chain's join states."""
        if self._chain is None:
            return 0, 0
        return self._chain.memory_bytes(self._tuple_bytes or 256)

    def _enforce_budget(self) -> tuple[int, int]:
        """Spill cold slices until the resident estimate fits the budget.

        Eviction is by slice age: the chain's tail slice holds the oldest
        tuples, so slices spill tail-first.  The head slice never spills —
        it absorbs every arrival, so its state is hot by construction; the
        budget therefore carries one-slice slack.  Already-spilled slices
        first flush their resident tail buffers (cheaper than spilling a
        new slice), then unspilled cold slices go to disk oldest-first.
        """
        chain = self._chain
        tuple_bytes = self._tuple_bytes or 256
        assert chain is not None
        resident, spilled = chain.memory_bytes(tuple_bytes)
        budget = self.memory_budget_bytes
        if budget is None or resident <= budget:
            return resident, spilled
        joins = chain.joins
        for join in reversed(joins[1:]):
            if not join.is_spilled():
                continue
            join.spill_flush()
            resident, spilled = chain.memory_bytes(tuple_bytes)
            if resident <= budget:
                return resident, spilled
        store = self.spill_store
        for join in reversed(joins[1:]):
            if join.is_spilled():
                continue
            join.spill(store)
            join.spill_flush()
            store.evictions += 1
            resident, spilled = chain.memory_bytes(tuple_bytes)
            if resident <= budget:
                return resident, spilled
        return resident, spilled

    def _report_spill_counters(self) -> None:
        """Publish the store's counter deltas as metric observations.

        Observations are counters in the snapshot (diff/aggregate-safe), so
        per-window estimates and sharded merges see monotone values.
        """
        store = self._spill_store
        if store is None:
            return
        reported = self._spill_reported
        metrics = self.metrics
        for name, value in (
            ("spill.segments", store.segments_written),
            ("spill.evictions", store.evictions),
            ("spill.cold_reads", store.cold_reads),
        ):
            delta = value - reported.get(name, 0)
            if delta > 0:
                metrics.observe(name, delta)
                reported[name] = value

    def close(self) -> None:
        """Release the disk tier: segment files and the store directory.

        End-of-session only — spilled slice state is discarded, not
        re-materialized.  A retiring shard engine calls this after its
        keyed state has been extracted (extraction materializes every
        spilled slice back into core, so nothing is lost).
        """
        chain = self._chain
        if chain is not None:
            for join in chain.joins:
                release = getattr(join, "release_spill", None)
                if release is not None:
                    release()
        if self._spill_store is not None:
            self._spill_store.close()
            self._spill_store = None

    # -- statistics observation ------------------------------------------------
    def _observe_batch(
        self,
        batch: list[StreamTuple],
        left_arrivals: int,
        right_arrivals: int,
        pre_sizes: tuple[int, int],
        head_matches: int,
    ) -> None:
        """Record the estimator observations of one processed batch.

        The join factor is observed at the head slice (matches vs candidate
        pairs, candidate counts averaged over the batch), which is unbiased
        whenever the head link carries no pushed-down filter — the usual
        case, since any query without a selection keeps the entry
        disjunction trivial.  Selection selectivities are observed by
        evaluating each registered non-trivial predicate on the raw
        arrivals of its stream; these evaluations are estimator
        bookkeeping, not plan work, so they are recorded as observations
        rather than comparisons.
        """
        metrics = self.metrics
        chain = self._chain
        assert chain is not None
        if self._head_link_unfiltered():
            post_left, post_right = chain.head_state_sizes()
            pre_left, pre_right = pre_sizes
            opportunities = (
                left_arrivals * (pre_right + post_right) / 2
                + right_arrivals * (pre_left + post_left) / 2
            )
            if opportunities > 0:
                metrics.observe(OBS_CHAIN_OPPORTUNITIES, opportunities)
                metrics.observe(OBS_CHAIN_MATCHES, head_matches)
        for query in self._queries.values():
            for side, predicate, stream in (
                ("left", query.left_filter, self.left_stream),
                ("right", query.right_filter, self.right_stream),
            ):
                if isinstance(predicate, TruePredicate):
                    continue
                seen = 0
                passed = 0
                for tup in batch:
                    if tup.stream != stream:
                        continue
                    seen += 1
                    if predicate.matches(tup):
                        passed += 1
                if seen:
                    metrics.observe(
                        filter_observation_key(query.name, side, "seen"), seen
                    )
                    metrics.observe(
                        filter_observation_key(query.name, side, "pass"), passed
                    )

    def _head_link_unfiltered(self) -> bool:
        chain = self._chain
        if chain is None:
            return False
        if self.window_kind != "time":
            return True  # Count chains never carry pushed-down filters.
        assert isinstance(chain, SlicedJoinChain)
        return chain.link_filters()[0] == (None, None)

    def attach_policy(self, policy) -> None:
        """Attach an :class:`~repro.runtime.adaptive.AdaptivePolicy`.

        Turns statistics collection on; the policy is called after every
        processed batch with the stream time of its last arrival.
        """
        self.policy = policy
        self._observing = True

    def estimated_statistics(
        self, since: "object | None" = None
    ) -> StreamStatistics:
        """Statistics estimated from this session's counters.

        ``since`` is an earlier :meth:`MetricsCollector.snapshot` value
        marking the window start; by default the whole session is the
        window.  Requires ``collect_statistics=True`` (or an attached
        policy) for join/selection estimates; arrival rates are always
        available.
        """
        before = since if since is not None else type(self.metrics)().snapshot()
        return StreamStatistics.from_metrics_window(
            before,
            self.metrics.snapshot(),
            left_stream=self.left_stream,
            right_stream=self.right_stream,
        )

    # -- results ---------------------------------------------------------------
    def results(self, name: str) -> list[JoinedTuple]:
        """Results delivered to a query so far (buffered arrivals included)."""
        self._drain()
        try:
            return list(self._results[name])
        except KeyError:
            raise QueryError(f"no registered query named {name!r}") from None

    def pop_results(self, name: str) -> list[JoinedTuple]:
        """Return and clear a query's delivered results."""
        self._drain()
        try:
            delivered = self._results[name]
        except KeyError:
            raise QueryError(f"no registered query named {name!r}") from None
        self._results[name] = []
        return delivered

    # -- adaptive re-slicing ---------------------------------------------------
    def rebalance(
        self,
        params: ChainCostParameters,
        statistics: StreamStatistics | None = None,
    ) -> tuple[float, ...]:
        """Migrate the live chain to the CPU-Opt boundaries for the current
        workload (Section 5.2/6.2) and return the new boundaries.

        The target chain is found by the shortest-path search over the merge
        graph; the live chain is then moved there incrementally — splits
        first (they only need an enclosing slice), merges second — with the
        usual drain-and-splice discipline, so the session keeps running.
        ``statistics`` (typically a windowed estimate from the adaptive
        policy) overrides the declared rates/selectivities with measured
        ones before the search runs.  Time-window sessions only: a
        count-window session keeps the Mem-Opt chain (see the class
        docstring).
        """
        if not self._queries:
            raise MigrationError("cannot rebalance an engine with no queries")
        if self.window_kind != "time":
            raise MigrationError(
                "count-window sessions keep the Mem-Opt chain: merged rank "
                "slices cannot be re-split by the result router"
            )
        self._drain()
        if resolve_probe(self.probe, self.condition) == "hash" and not params.hash_probe:
            # Price the probes the way this session actually executes them:
            # a hash session probing one equi-key bucket per arrival must not
            # be rebalanced against the nested-loop cost model.
            params = replace(params, hash_probe=True)
        if self.memory_budget_bytes is not None and params.memory_budget is None:
            # Same discipline for the tier boundary: slices whose state the
            # budget pushes to disk pay the cold-probe I/O penalty, so the
            # CPU-Opt search prices merges across the boundary correctly.
            params = replace(
                params,
                memory_budget=self.memory_budget_bytes / 1024.0,
                cold_probe_penalty=(
                    params.cold_probe_penalty
                    if params.cold_probe_penalty > 0.0
                    else DEFAULT_COLD_PROBE_PENALTY
                ),
            )
        workload = self.workload()
        target = [0.0] + build_cpu_opt_chain(
            workload, params, statistics=statistics
        ).boundaries()[1:]
        self._migrate_to(target)
        self._refresh_plan()
        assert self._chain is not None
        return tuple(self._chain.boundaries)

    def _migrate_to(self, target: Iterable[float]) -> None:
        """Drain-and-splice the live chain to exactly ``target`` boundaries.

        Splits run first (they only need an enclosing slice), merges second;
        the caller re-derives the filter placement and routing afterwards.
        """
        chain = self._chain
        assert chain is not None
        target = list(target)
        for boundary in target:
            if all(abs(boundary - b) > _EPSILON for b in chain.boundaries):
                index = chain.slice_index_containing(boundary)
                if index is not None:
                    chain.split_slice(index, boundary)
                    self._record_migration("split", boundary)
        for boundary in list(chain.boundaries[1:-1]):
            if all(abs(boundary - t) > _EPSILON for t in target):
                index = chain.slice_index_for_boundary(boundary)
                if index is not None:
                    chain.merge_slices(index)
                    self._record_migration("merge", boundary)

    def set_boundaries(self, boundaries: Iterable[float]) -> tuple[float, ...]:
        """Migrate the live chain to exactly the given boundaries.

        The adoption half of state repartitioning: a replacement shard built
        for an existing session must reproduce the donor chain's boundaries
        — which a prior :meth:`rebalance` may have moved off the Mem-Opt
        positions — before any per-slice state can be spliced in.  Runs the
        usual drain-and-splice migration and re-derives the pushed-down
        filters and routing for the new slice structure.

        Parameters
        ----------
        boundaries:
            The target boundaries.  Must start at 0, strictly increase, and
            keep the current chain end (the retained horizon cannot be moved
            by fiat — admit or remove a query instead).  A count-window
            session must additionally keep every registered count a boundary
            (the Mem-Opt invariant; see the class docstring).

        Returns
        -------
        tuple[float, ...]
            The chain boundaries after the migration (== ``boundaries``).

        Raises
        ------
        MigrationError
            If the engine has no chain, or the target violates the
            constraints above.
        """
        if self._chain is None:
            raise MigrationError("cannot set boundaries on an engine with no queries")
        target = [self._chain._coerce_boundary(b) for b in boundaries]
        if len(target) < 2 or abs(target[0]) > _EPSILON:
            raise MigrationError(f"boundaries must start at 0, got {target}")
        if any(b2 <= b1 for b1, b2 in zip(target, target[1:])):
            raise MigrationError(f"boundaries must strictly increase, got {target}")
        current_end = self._chain.boundaries[-1]
        if abs(target[-1] - current_end) > _EPSILON:
            raise MigrationError(
                f"target end {target[-1]:g} must keep the chain end "
                f"{current_end:g} (admit or remove a query to move it)"
            )
        if self.window_kind == "count":
            for query in self._queries.values():
                if all(abs(query.window - b) > _EPSILON for b in target):
                    raise MigrationError(
                        f"count boundary {query.window:g} of query "
                        f"{query.name!r} missing from target {target} "
                        f"(Mem-Opt invariant)"
                    )
        self._drain()
        self._migrate_to(target)
        self._refresh_plan()
        return tuple(self._chain.boundaries)

    # -- keyed state repartition (live resharding) ------------------------------
    def extract_keyed_state(self, predicate=None) -> list[dict[str, list[StreamTuple]]]:
        """Drain, then remove and return resident tuples matching ``predicate``.

        One ``{stream: [tuples]}`` map per slice, in chain order — the donor
        half of the repartition primitive behind
        :meth:`repro.runtime.sharding.ShardedStreamEngine.reshard`.
        ``predicate`` is evaluated per resident tuple; ``None`` extracts
        everything.  An idle engine (no queries, hence no chain) returns an
        empty list.
        """
        self._drain()
        if self._chain is None:
            return []
        return self._chain.extract_keyed_state(predicate)

    def ingest_keyed_state(
        self, state: "list[dict[str, list[StreamTuple]]]"
    ) -> int:
        """Drain, then splice extracted per-slice state into the live chain.

        ``state`` must carry one entry per slice (the donor chain must hold
        identical boundaries — use :meth:`set_boundaries` first).  Returns
        the number of tuples spliced in.

        Raises
        ------
        MigrationError
            If the engine has no chain, or ``state`` does not match the
            chain's slice count.
        """
        self._drain()
        if self._chain is None:
            if not state:
                return 0
            raise MigrationError("cannot ingest state into an engine with no queries")
        return self._chain.ingest_keyed_state(state)

    # -- introspection ---------------------------------------------------------
    @property
    def boundaries(self) -> tuple[float, ...]:
        """The live chain's slice boundaries (empty for an idle engine)."""
        return tuple(self._chain.boundaries) if self._chain is not None else ()

    def queries(self) -> list[RegisteredQuery]:
        """The registered queries, sorted by (window, name)."""
        return sorted(self._queries.values(), key=lambda q: (q.window, q.name))

    def query(self, name: str) -> RegisteredQuery:
        """The registered query named ``name``.

        Raises :class:`~repro.engine.errors.QueryError` if unknown.
        """
        try:
            return self._queries[name]
        except KeyError:
            raise QueryError(f"no registered query named {name!r}") from None

    def workload(self) -> QueryWorkload:
        """The registered queries as a static :class:`QueryWorkload`."""
        if not self._queries:
            raise QueryError("the engine has no registered queries")
        return QueryWorkload(
            [
                ContinuousQuery(
                    name=query.name,
                    window=query.window,
                    join_condition=self.condition,
                    left_filter=query.left_filter,
                    right_filter=query.right_filter,
                    left_stream=self.left_stream,
                    right_stream=self.right_stream,
                )
                for query in self._queries.values()
            ]
        )

    def link_filters(self) -> list[tuple[Predicate | None, Predicate | None]]:
        """The pushed-down predicates currently installed, one pair per link.

        Time-window sessions only (count chains carry no pushed filters);
        an idle engine returns an empty list.
        """
        if self._chain is None or self.window_kind != "time":
            return []
        return self._chain.link_filters()

    def slice_count(self) -> int:
        """Number of slices in the live chain (0 for an idle engine)."""
        return self._chain.slice_count() if self._chain is not None else 0

    def state_size(self) -> int:
        """Total tuples resident across the chain's join states."""
        return self._chain.state_size() if self._chain is not None else 0

    def states_are_disjoint(self) -> bool:
        """Check the Lemma 1 property: per-stream slice states never overlap."""
        return self._chain.states_are_disjoint() if self._chain is not None else True

    def describe(self) -> str:
        """One-line summary: registered queries and the chain layout."""
        if self._chain is None:
            return "StreamEngine (idle: no registered queries)"
        unit = "s" if self.window_kind == "time" else " rows"
        parts = []
        for q in self.queries():
            label = f"{q.name}[{q.window:g}{unit}]"
            if q.has_selection:
                label += "σ"
            parts.append(label)
        return f"StreamEngine ({', '.join(parts)}) chain: {self._chain.describe()}"

    # -- internals -------------------------------------------------------------
    def _refresh_plan(self) -> None:
        """Re-derive the pushed-down filters and result routing.

        Called after every admission, removal and rebalance — the splice
        half of drain-and-splice for the selection placement: the σ'
        disjunctions in front of each slice and the per-query residuals
        both depend on the current query set *and* the current boundaries.
        The per-slice pushed pairs are derived once and feed both halves,
        so the installed filters and the residual routing cannot drift
        apart.
        """
        chain = self._chain
        if chain is None:
            self._routing = []
            return
        pushdown = self.window_kind == "time" and any(
            query.has_selection for query in self._queries.values()
        )
        pushed: list[tuple[Predicate, Predicate]] | None = None
        if pushdown:
            workload = self.workload()
            pushed = [
                (
                    workload.slice_filter(self._slice_bounds(join)[0], side="left"),
                    workload.slice_filter(self._slice_bounds(join)[0], side="right"),
                )
                for join in chain.joins
            ]
        self._refresh_filters(pushed)
        self._rebuild_routing(pushed)

    def _refresh_filters(
        self, pushed: list[tuple[Predicate, Predicate]] | None
    ) -> None:
        chain = self._chain
        if chain is None or self.window_kind != "time":
            return
        assert isinstance(chain, SlicedJoinChain)
        if pushed is None:
            chain.set_link_filters([(None, None)] * chain.slice_count())
            return
        chain.set_link_filters(pushed)

    def _slice_bounds(self, join) -> tuple[float, float]:
        if self.window_kind == "time":
            return join.slice.start, join.slice.end
        return join.rank_start, join.rank_end

    def _rebuild_routing(
        self, pushed: list[tuple[Predicate, Predicate]] | None
    ) -> None:
        """Recompute the per-slice result routing after any migration.

        A query taps every slice that starts inside its window.  A window
        check is needed only where the slice extends past the window (a
        merged or split slice serving a smaller query, the router check of
        Figure 13(b)); count-window sessions never need it because every
        registered count stays a chain boundary.  A residual predicate is
        attached wherever the query's own selection is stronger than the
        disjunction pushed below the slice (σ' of Figure 10)."""
        chain = self._chain
        if chain is None:
            self._routing = []
            return
        time_kind = self.window_kind == "time"
        trivial = TruePredicate()
        routing: list[list[_Route]] = []
        for slice_index, join in enumerate(chain.joins):
            start, end = self._slice_bounds(join)
            if pushed is not None:
                pushed_left, pushed_right = pushed[slice_index]
            else:
                pushed_left = pushed_right = trivial
            slice_routes: list[_Route] = []
            for query in self._queries.values():
                if end <= query.window + _EPSILON:
                    window_check: float | None = None
                elif start < query.window - _EPSILON:
                    if not time_kind:  # pragma: no cover - Mem-Opt invariant
                        raise MigrationError(
                            f"count boundary {query.window:g} lost from chain "
                            f"{chain.describe()}"
                        )
                    window_check = query.window
                else:
                    continue
                slice_routes.append(
                    (
                        query.name,
                        window_check,
                        _residual(query.left_filter, pushed_left),
                        _residual(query.right_filter, pushed_right),
                    )
                )
            routing.append(slice_routes)
        self._routing = routing

    def _record_migration(self, kind: str, boundary: float) -> None:
        self.stats.migrations.append(
            MigrationEvent(
                kind=kind,
                boundary=boundary,
                arrival_count=self.stats.arrivals,
                boundaries_after=self.boundaries,
            )
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"<StreamEngine kind={self.window_kind} queries={len(self._queries)} "
            f"slices={self.slice_count()} arrivals={self.stats.arrivals}>"
        )


def _residual(query_filter: Predicate, pushed: Predicate) -> Predicate | None:
    """:func:`repro.core.pushdown.residual_predicate` for the routing table,
    with trivial residuals collapsed to ``None`` (nothing to re-check)."""
    residual = residual_predicate(query_filter, pushed)
    return None if isinstance(residual, TruePredicate) else residual


class CountStreamEngine(StreamEngine):
    """A :class:`StreamEngine` over count-based windows.

    Convenience subclass: ``CountStreamEngine(condition)`` is
    ``StreamEngine(condition, window_kind="count")``.  Windows are positive
    integer tuple counts ("the N most recent arrivals of each stream");
    selections are applied to each query's results (see the base class
    notes on why rank-based windows cannot share pushed-down filters).
    """

    def __init__(
        self,
        condition: JoinCondition,
        left_stream: str = "A",
        right_stream: str = "B",
        batch_size: int = 32,
        metrics: MetricsCollector | None = None,
        probe: str = "nested_loop",
        columnar: bool | str = "auto",
        policy=None,
        collect_statistics: bool = False,
        memory_budget_bytes: int | None = None,
    ) -> None:
        super().__init__(
            condition,
            left_stream=left_stream,
            right_stream=right_stream,
            batch_size=batch_size,
            metrics=metrics,
            window_kind="count",
            probe=probe,
            columnar=columnar,
            policy=policy,
            collect_statistics=collect_statistics,
            memory_budget_bytes=memory_budget_bytes,
        )
