"""Key-partitioned sharded runtime: N-way StreamEngine scale-out.

One :class:`~repro.runtime.engine.StreamEngine` probes one monolithic
per-slice state.  For an *equi-join* workload that is more work than the
answer requires: two tuples can only join when they agree on the join key,
so hash-partitioning **both** input streams on that key splits the session
into N completely independent sub-sessions — every joinable pair lands in
the same shard, and the union of the per-shard answers is exactly the
unsharded answer.

:class:`ShardedStreamEngine` implements that split:

* **routing** — each arrival goes to ``shard_for_key(key, N)`` where the key
  is the tuple's side of the shared equi-join condition; the partitioner is
  a stable CRC-32 hash, deterministic across processes and runs (so the
  process-parallel driver and the differential tests agree on placement);
* **admission fan-out** — ``add_query`` / ``remove_query`` / ``rebalance``
  are applied to every shard, so all shards keep identical chain boundaries
  and pushed-down filters (one logical session, N replicas of its plan);
* **deterministic merge** — per-query results are merged across shards in
  ``(timestamp, left seqno, right seqno)`` order, the same order key a
  single engine delivers in, so the global output is independent of the
  shard count;
* **two drivers** — ``shard_mode="serial"`` runs the shards round-robin in
  the calling thread (still an algorithmic win: each nested-loop probe
  scans ~1/N of the resident window state), while ``shard_mode="process"``
  gives every shard a worker process fed through a shared-memory arrival
  ring (:class:`~repro.engine.ring.SpscRing`) of columnar batch encodings —
  no syscall or pickle round-trip per batch — with a pipe reserved for the
  command protocol and oversize fallbacks.  A worker that dies mid-stream
  is respawned and its state recovered from a parent-side replay journal
  (see :meth:`ShardedStreamEngine._respawn_shard`).

Sharding is answer-preserving only for equi-key workloads over time-based
windows.  Non-equi conditions have no partition key, and a count window's
rank ("the N most recent arrivals") is defined over the *whole* stream, not
a shard's subsequence — both therefore raise :class:`ShardingError` for
``shards > 1`` (or fall back to one shard with ``on_unsupported="fallback"``).

:class:`ShardPlanner` closes the sizing loop with the statistics plane of
:mod:`repro.core.statistics`: the per-shard metrics snapshots are aggregated
into one global :class:`~repro.core.statistics.StreamStatistics` view
(counters summed, stream clock max'ed), from which the planner picks a shard
count for the measured load, detects key skew from the per-shard ingest
shares, and re-prices every shard's chain with its *own* measured statistics
via per-shard ``rebalance(params, statistics=)``.
"""

from __future__ import annotations

import itertools
import math
import threading
import time
import zlib
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Iterable, Sequence

from repro.core.merge_graph import ChainCostParameters
from repro.core.statistics import StreamStatistics
from repro.engine.errors import ExecutionError, MigrationError, QueryError, ShardingError
from repro.engine.metrics import MetricsCollector, MetricsSnapshot
from repro.engine.ring import DEFAULT_RING_CAPACITY, SpscRing
from repro.query.predicates import EquiJoinCondition, JoinCondition, Predicate
from repro.runtime.engine import EngineStats, RegisteredQuery, StreamEngine
from repro.streams.tuples import JoinedTuple, StreamTuple, decode_batch, encode_batch

__all__ = [
    "ReshardDecision",
    "ReshardEvent",
    "ShardConfig",
    "ShardPlan",
    "ShardPlanner",
    "ShardedStreamEngine",
    "shard_for_key",
]

def shard_for_key(key: object, shards: int) -> int:
    """Stable shard index of a join-key value.

    Uses CRC-32 over a canonical string form, so the mapping is a pure
    function of ``(key, shards)`` — identical across interpreter runs,
    worker processes and machines (unlike built-in ``hash``, which salts
    strings per process).  Keys that compare equal must co-shard (the
    partitioning invariant behind answer preservation), so numeric types
    are canonicalized first: ``True == 1 == 1.0`` all shard as the integer
    ``1``, matching ``EquiJoinCondition``'s ``==`` semantics across mixed
    int/float/bool key sources.  CRC-32 mixes well enough that random key
    domains spread evenly; determinism, the cross-type invariant and the
    frequency bound are property-tested in ``tests/test_sharding.py``.
    """
    if shards <= 1:
        return 0
    if isinstance(key, bool):
        key = int(key)
    elif isinstance(key, float) and key.is_integer():
        key = int(key)
    data = key if isinstance(key, bytes) else str(key).encode("utf-8")
    return zlib.crc32(data) % shards


@dataclass(frozen=True)
class ShardConfig:
    """Everything needed to build one shard's engine (picklable, so the
    process driver can ship it to a spawned worker)."""

    condition: JoinCondition
    left_stream: str = "A"
    right_stream: str = "B"
    batch_size: int = 32
    window_kind: str = "time"
    probe: str = "nested_loop"
    columnar: bool | str = "auto"
    system_overhead: float = 0.0
    collect_statistics: bool = False
    #: Per-shard in-core state budget (the session budget split over the
    #: current shard count); re-derived by every :meth:`~ShardedStreamEngine.reshard`.
    memory_budget_bytes: int | None = None

    def build(self) -> StreamEngine:
        """Construct one shard's :class:`StreamEngine` from this config."""
        return StreamEngine(
            self.condition,
            left_stream=self.left_stream,
            right_stream=self.right_stream,
            batch_size=self.batch_size,
            metrics=MetricsCollector(system_overhead=self.system_overhead),
            window_kind=self.window_kind,
            probe=self.probe,
            columnar=self.columnar,
            collect_statistics=self.collect_statistics,
            memory_budget_bytes=self.memory_budget_bytes,
        )


def _export_engine(engine: StreamEngine, names: Sequence[str]) -> dict:
    """Drain one shard engine and strip it for a reshard.

    One definition serves both drivers — the serial loop and the worker
    process's ``export`` command — so the payload's fields cannot drift
    apart between shard modes.
    """
    engine.flush()
    payload = {
        "boundaries": engine.boundaries,
        "state": engine.extract_keyed_state(),
        "results": {name: engine.pop_results(name) for name in names},
        "stats": engine.stats,
        "snapshot": engine.metrics.snapshot(),
    }
    # The extraction above materialized every spilled slice back into core
    # (the payload's state is plain tuples), so the retiring engine's disk
    # tier holds nothing live — delete its segment store now rather than
    # waiting for GC.
    engine.close()
    return payload


# ---------------------------------------------------------------------------
# Process-parallel worker
# ---------------------------------------------------------------------------
def _shard_worker(conn, config: ShardConfig, ring: SpscRing | None = None) -> None:  # pragma: no cover - subprocess
    """One worker process owning one shard's engine.

    Arrivals travel through ``ring``, a shared-memory SPSC byte ring of
    :func:`~repro.streams.tuples.encode_batch` records the worker drains
    without a syscall per batch; the pipe ``conn`` carries the command
    protocol — every command gets an ``("ok", payload)`` or ``("error",
    text)`` reply.  The ring is drained *before a command executes*, which
    is the session's ordering barrier: a reply proves every arrival pushed
    before the command has been ingested.  Batches whose encoding can never
    fit the ring fall back to a fire-and-forget ``("batch", tuples)`` pipe
    message; their position in the arrival order is held by an empty marker
    record in the ring, so the two transports cannot reorder.

    Batch-processing errors are deferred and reported on the next replied
    command, so the parent never deadlocks waiting for an ack that a failed
    batch will not send.  The discovering command is still *executed* before
    the deferred error is reported — admissions fan out to every shard, so
    skipping it here would leave this shard's query set diverged from its
    siblings even though the parent raises either way.
    """
    engine = config.build()
    deferred_error: str | None = None

    def ingest(tuples) -> None:
        nonlocal deferred_error
        try:
            engine.process_many(tuples)
        except Exception as exc:  # noqa: BLE001 - reported to the parent
            deferred_error = f"{type(exc).__name__}: {exc}"

    def drain_ring() -> int:
        """Ingest every ring record; blocks for announced oversize batches."""
        drained = 0
        while (record := ring.try_pop()) is not None:
            if record:
                ingest(decode_batch(record))
            else:
                # Empty marker: the batch it stands for follows on the pipe.
                _, batch = conn.recv()
                ingest(batch)
            drained += 1
        return drained

    while True:
        busy = drain_ring() if ring is not None else 0
        try:
            if ring is not None and not conn.poll(0 if busy else 0.002):
                continue
            command, payload = conn.recv()
        except (EOFError, OSError):
            break
        if command == "batch":
            # Oversize fallback received ahead of its ring marker: replay
            # the ring up to the marker first, then take the pipe batch.
            if ring is not None:
                while (record := ring.try_pop()) is not None:
                    if not record:
                        break
                    ingest(decode_batch(record))
            ingest(payload)
            continue
        if command == "close":
            break
        if ring is not None:
            drain_ring()
        error = deferred_error
        deferred_error = None
        try:
            if command == "add":
                name, window, left_filter, right_filter = payload
                engine.add_query(
                    name, window, left_filter=left_filter, right_filter=right_filter
                )
                result = engine.boundaries
            elif command == "remove":
                result = engine.remove_query(payload)
            elif command == "results":
                result = engine.results(payload)
            elif command == "pop":
                result = engine.pop_results(payload)
            elif command == "pop_all":
                result = {name: engine.pop_results(name) for name in payload}
            elif command == "probe":
                engine.set_probe(payload)
                result = None
            elif command == "sync":
                engine.flush()
                result = None
            elif command == "snapshot":
                engine.flush()
                result = engine.metrics.snapshot()
            elif command == "state":
                engine.flush()
                result = {
                    "stats": engine.stats,
                    "state_size": engine.state_size(),
                    "slice_count": engine.slice_count(),
                    "boundaries": engine.boundaries,
                    "disjoint": engine.states_are_disjoint(),
                }
            elif command == "rebalance":
                params, statistics = payload
                result = engine.rebalance(params, statistics=statistics)
            elif command == "export":
                # Live-reshard donor half: drain, then ship boundaries, the
                # whole keyed state, undelivered results and the counters of
                # this generation back to the coordinator (payload is the
                # registered query names).
                result = _export_engine(engine, payload)
            elif command == "adopt":
                result = engine.set_boundaries(payload)
            elif command == "ingest":
                result = engine.ingest_keyed_state(payload)
            else:
                raise ExecutionError(f"unknown shard command {command!r}")
        except Exception as exc:  # noqa: BLE001 - reported to the parent
            detail = f"{type(exc).__name__}: {exc}"
            error = f"{error}; then {command}: {detail}" if error else detail
            result = None
        if error is not None:
            conn.send(("error", error))
        else:
            conn.send(("ok", result))
    engine.close()  # delete this shard's spill segments before exiting
    conn.close()
    if ring is not None:
        ring.close()


@dataclass(frozen=True)
class ReshardEvent:
    """One live shard-count change performed by :meth:`ShardedStreamEngine.reshard`."""

    old_shards: int  #: Shard count before the reshard.
    new_shards: int  #: Shard count after the reshard.
    moved_tuples: int  #: Resident tuples that changed shards under the new modulus.
    resident_tuples: int  #: Total resident tuples repartitioned (moved or not).
    carried_results: int  #: Undelivered per-query results carried across generations.
    arrivals: int  #: Session arrivals ingested when the reshard ran.
    stream_time: float  #: Stream clock at the reshard (max per-shard ``time.last``).
    reason: str = ""  #: Why the reshard happened (planner decision or caller note).

    def describe(self) -> str:
        """One-line human-readable form of this event."""
        return (
            f"reshard {self.old_shards}->{self.new_shards} @ t={self.stream_time:g}s: "
            f"moved {self.moved_tuples}/{self.resident_tuples} resident tuples, "
            f"carried {self.carried_results} results"
            + (f" ({self.reason})" if self.reason else "")
        )


# ---------------------------------------------------------------------------
# The sharded engine
# ---------------------------------------------------------------------------
class ShardedStreamEngine:
    """N key-partitioned :class:`StreamEngine` shards behind one session API.

    Parameters
    ----------
    condition:
        The shared join condition.  ``shards > 1`` requires an
        :class:`~repro.query.predicates.EquiJoinCondition` — the equi-key is
        the partition key.
    shards:
        Number of inner engines.  ``1`` degenerates to a single unsharded
        engine (any condition or window kind).
    shard_mode:
        ``"serial"`` (default) runs the shards in the calling thread —
        already a throughput win, since each nested-loop probe scans ~1/N
        of the window state; ``"process"`` starts one worker process per
        shard and ships pickled arrival batches (conditions and predicates
        must then be picklable; close the session with :meth:`close` or use
        it as a context manager).
    on_unsupported:
        ``"raise"`` (default) raises :class:`ShardingError` for workloads
        that cannot be partitioned (non-equi condition, count windows);
        ``"fallback"`` silently runs them on one shard.
    ring_capacity:
        Bytes of one worker's shared-memory arrival ring (process mode).
        Batches whose encoding can never fit fall back to the pipe without
        losing the arrival order.
    max_respawns:
        How many times one shard's dead worker may be replaced before the
        session gives up (see :meth:`_respawn_shard` for what a replacement
        recovers).
    memory_budget_bytes:
        Optional *session-level* in-core state budget.  Split evenly over
        the live shard count — each shard engine enforces
        ``budget // shards`` (at least 1) by spilling its own cold slices
        to disk, see :class:`StreamEngine`.  A :meth:`reshard` re-splits
        the session budget under the new modulus, so growing the session
        also grows nobody's total footprint.
    batch_size / window_kind / probe / columnar / system_overhead /
    collect_statistics:
        Forwarded to every shard's engine, see :class:`StreamEngine`.
    """

    def __init__(
        self,
        condition: JoinCondition,
        shards: int = 4,
        shard_mode: str = "serial",
        left_stream: str = "A",
        right_stream: str = "B",
        batch_size: int = 32,
        window_kind: str = "time",
        probe: str = "nested_loop",
        columnar: bool | str = "auto",
        system_overhead: float = 0.0,
        collect_statistics: bool = False,
        on_unsupported: str = "raise",
        ring_capacity: int = DEFAULT_RING_CAPACITY,
        max_respawns: int = 3,
        memory_budget_bytes: int | None = None,
    ) -> None:
        if shards < 1:
            raise ShardingError(f"shard count must be at least 1, got {shards}")
        if shard_mode not in ("serial", "process"):
            raise ShardingError(
                f"shard_mode must be 'serial' or 'process', got {shard_mode!r}"
            )
        if on_unsupported not in ("raise", "fallback"):
            raise ShardingError(
                f"on_unsupported must be 'raise' or 'fallback', got {on_unsupported!r}"
            )
        if shards > 1:
            problem = None
            if not isinstance(condition, EquiJoinCondition):
                problem = (
                    f"condition {condition.describe()!r} has no equi-key to "
                    f"partition on"
                )
            elif window_kind != "time":
                problem = (
                    "count windows rank tuples over the whole stream, not a "
                    "shard's subsequence"
                )
            if problem is not None:
                if on_unsupported == "raise":
                    raise ShardingError(
                        f"cannot run {shards} shards: {problem} (pass "
                        f"on_unsupported='fallback' to run unsharded)"
                    )
                shards = 1
        self.condition = condition
        self.shards = shards
        self.shard_mode = shard_mode
        self.left_stream = left_stream
        self.right_stream = right_stream
        self.window_kind = window_kind
        self.probe = probe
        self.columnar = columnar
        self.batch_size = max(1, int(batch_size))
        self.ring_capacity = int(ring_capacity)
        self.max_respawns = int(max_respawns)
        if memory_budget_bytes is not None:
            memory_budget_bytes = int(memory_budget_bytes)
            if memory_budget_bytes <= 0:
                raise ShardingError(
                    f"memory_budget_bytes must be positive, got {memory_budget_bytes}"
                )
        #: The session-level budget (per-shard splits live in :attr:`config`).
        self.memory_budget_bytes = memory_budget_bytes
        self.config = ShardConfig(
            condition=condition,
            left_stream=left_stream,
            right_stream=right_stream,
            batch_size=self.batch_size,
            window_kind=window_kind,
            probe=probe,
            columnar=columnar,
            system_overhead=system_overhead,
            collect_statistics=collect_statistics,
            memory_budget_bytes=self._per_shard_budget(self.shards),
        )
        if isinstance(condition, EquiJoinCondition):
            # Kept even for one shard: a later reshard to N > 1 partitions
            # the resident state on the same equi-key.
            self._key_attrs = {
                left_stream: condition.left_attribute,
                right_stream: condition.right_attribute,
            }
        else:
            self._key_attrs = None
        self._queries: dict[str, RegisteredQuery] = {}
        self._arrivals = 0
        self._clock = 0.0
        self._closed = False
        self.shard_engines: list[StreamEngine] = []
        self._workers: list = []
        self._pipes: list = []
        self._buffers: list[list[StreamTuple]] = []
        self._rings: list[SpscRing] = []
        # Crash-recovery plane (process mode only): a per-shard replay
        # journal of pushed arrivals (bounded by twice the largest window),
        # per-shard/per-query delivery and admission frontiers expressed as
        # push positions, the state each generation started from, and the
        # per-shard respawn budget.  See :meth:`_respawn_shard`.
        self._journals: list[deque[tuple[int, StreamTuple]]] = []
        self._journal_counts: list[dict[str, int]] = []
        self._pushed: list[int] = []
        self._admitted: list[dict[str, int]] = []
        self._delivered: list[dict[str, int]] = []
        self._recovery_base: list = []
        self._respawns: list[int] = []
        self._respawn_guard = False
        #: Per-shard probe overrides installed by :meth:`set_shard_probes`
        #: (``None`` until then; reset by :meth:`reshard`).
        self._shard_probes: list[str] | None = None
        # Chain boundaries as last observed by the coordinator — what a
        # replacement worker must adopt before state can be spliced in.
        self._boundaries_cache: tuple[float, ...] | None = None
        #: Session-level collector: reshard events and moved-tuple accounting
        #: (per-shard work lives in the shard engines' own collectors).
        self.metrics = MetricsCollector()
        #: Reshard history, newest last (see :class:`ReshardEvent`).
        self.reshard_events: list[ReshardEvent] = []
        # Carryover views across reshard generations: undelivered per-query
        # results, retired EngineStats/metrics counters, and the statistics
        # epoch (zero counters at the stream time of the last reshard, so
        # post-reshard rate estimates use the right time span).
        self._carryover: dict[str, list[JoinedTuple]] = {}
        self._stats_base: EngineStats | None = None
        self._snapshot_base: MetricsSnapshot | None = None
        self._epoch: MetricsSnapshot = MetricsCollector().snapshot()
        # Admissions, removals and reshards serialize on this lock (a reshard
        # must never observe a half-fanned-out admission); the owner check
        # turns same-thread re-entry into an error instead of a deadlock.
        self._session_lock = threading.Lock()
        self._lock_owner: int | None = None
        if self.shard_mode == "serial":
            self.shard_engines = [self.config.build() for _ in range(self.shards)]
        else:
            self._start_workers()

    @contextmanager
    def _serialized(self, what: str):
        """Hold the session lock for one structural change (admission/reshard)."""
        me = threading.get_ident()
        if self._lock_owner == me:
            raise MigrationError(
                f"cannot {what}: a session migration is already in progress "
                f"on this thread"
            )
        self._session_lock.acquire()
        self._lock_owner = me
        try:
            yield
        finally:
            self._lock_owner = None
            self._session_lock.release()

    # -- process-mode plumbing -------------------------------------------------
    def _spawn_worker(self):
        """Start one worker process with a fresh pipe and arrival ring."""
        import multiprocessing

        ring = SpscRing(self.ring_capacity)
        parent_conn, child_conn = multiprocessing.Pipe()
        worker = multiprocessing.Process(
            target=_shard_worker, args=(child_conn, self.config, ring), daemon=True
        )
        worker.start()
        child_conn.close()
        return parent_conn, ring, worker

    def _start_workers(self) -> None:
        for _ in range(self.shards):
            parent_conn, ring, worker = self._spawn_worker()
            self._workers.append(worker)
            self._pipes.append(parent_conn)
            self._rings.append(ring)
            self._buffers.append([])
            self._journals.append(deque())
            self._journal_counts.append({})
            self._pushed.append(0)
            self._admitted.append({})
            self._delivered.append({})
            self._recovery_base.append(None)
            self._respawns.append(0)

    def _worker_died(self, index: int, command: str, exc: BaseException) -> ExecutionError:
        return ExecutionError(
            f"shard {index}: worker died during {command!r} "
            f"({type(exc).__name__}); the session is in an undefined "
            f"state — close it"
        )

    def _can_respawn(self) -> bool:
        """Whether a dead worker may be replaced right now (not re-entrantly,
        not on a closed session)."""
        return (
            self.shard_mode == "process"
            and not self._respawn_guard
            and not self._closed
        )

    def _request(self, index: int, command: str, payload=None, respawn: bool = True):
        try:
            self._pipes[index].send((command, payload))
            status, result = self._pipes[index].recv()
        except (BrokenPipeError, EOFError, OSError) as exc:
            if not respawn or not self._can_respawn():
                raise self._worker_died(index, command, exc) from exc
            self._respawn_shard(index, f"worker died during {command!r}")
            return self._request(index, command, payload, respawn=False)
        if status == "error":
            raise ExecutionError(f"shard {index}: {result}")
        return result

    def _request_each(self, command: str, payloads: Sequence) -> list:
        """Fan one command out with a per-shard payload; dead workers are
        respawned (state recovered from the journal) and retried once.

        Sends first, receives second: the shards work concurrently while
        the parent waits, instead of serializing one round-trip per shard.
        """
        for index, payload in enumerate(payloads):
            try:
                self._pipes[index].send((command, payload))
            except (BrokenPipeError, OSError) as exc:
                if not self._can_respawn():
                    raise self._worker_died(index, command, exc) from exc
                self._respawn_shard(index, f"worker died before {command!r}")
                self._pipes[index].send((command, payload))
        replies = []
        for index in range(len(self._pipes)):
            try:
                status, result = self._pipes[index].recv()
            except (EOFError, OSError) as exc:
                if not self._can_respawn():
                    raise self._worker_died(index, command, exc) from exc
                self._respawn_shard(index, f"worker died during {command!r}")
                replies.append(
                    self._request(index, command, payloads[index], respawn=False)
                )
                continue
            if status == "error":
                raise ExecutionError(f"shard {index}: {result}")
            replies.append(result)
        return replies

    def _request_all(self, command: str, payload=None) -> list:
        return self._request_each(command, [payload] * len(self._pipes))

    def _push_batch(self, index: int) -> None:
        """Ship shard ``index``'s buffered arrivals through its ring.

        A full ring spins (the worker is draining it on the other side,
        and a worker found dead is respawned); an encoding that can never
        fit falls back to the pipe behind an empty ring marker that holds
        its place in the arrival order.  The batch enters the shard's
        replay journal only after it is handed off, so a respawn triggered
        mid-push never replays it twice.
        """
        buffer = self._buffers[index]
        if not buffer:
            return
        self._buffers[index] = []
        payload = encode_batch(buffer)
        try:
            while not self._rings[index].try_push(payload):
                if not self._workers[index].is_alive():
                    if not self._can_respawn():
                        raise ExecutionError(
                            f"shard {index}: worker died with a full arrival "
                            f"ring; the session is in an undefined state — "
                            f"close it"
                        )
                    self._respawn_shard(index, "worker died with a full arrival ring")
                else:
                    time.sleep(0.0002)
        except ValueError:
            while not self._rings[index].try_push(b""):
                if not self._workers[index].is_alive():
                    if not self._can_respawn():
                        raise ExecutionError(
                            f"shard {index}: worker died with a full arrival "
                            f"ring; the session is in an undefined state — "
                            f"close it"
                        )
                    self._respawn_shard(index, "worker died with a full arrival ring")
                else:
                    time.sleep(0.0002)
            try:
                self._pipes[index].send(("batch", buffer))
            except (BrokenPipeError, OSError) as exc:
                if not self._can_respawn():
                    raise self._worker_died(index, "batch", exc) from exc
                self._respawn_shard(index, "worker died receiving an oversize batch")
                self._rings[index].try_push(b"")  # fresh empty ring: cannot fail
                self._pipes[index].send(("batch", buffer))
        self._journal_append(index, buffer)

    def _send_buffers(self) -> None:
        for index in range(len(self._buffers)):
            self._push_batch(index)

    def _stop_workers(self) -> None:
        """Stop the current worker generation (close, join, drop the pipes)."""
        for pipe in self._pipes:
            try:
                pipe.send(("close", None))
            except (BrokenPipeError, OSError):  # pragma: no cover - dead worker
                pass
        for worker in self._workers:
            worker.join(timeout=5)
            if worker.is_alive():  # pragma: no cover - stuck worker
                worker.terminate()
        for pipe in self._pipes:
            pipe.close()
        for ring in self._rings:
            ring.close()
            ring.unlink()
        self._workers = []
        self._pipes = []
        self._rings = []
        self._buffers = []
        self._journals = []
        self._journal_counts = []
        self._pushed = []
        self._admitted = []
        self._delivered = []
        self._recovery_base = []
        self._respawns = []

    # -- crash recovery (process mode) -----------------------------------------
    def _journal_horizon(self) -> float:
        """Retention horizon of the replay journals.

        Twice the largest registered window: any undelivered result whose
        male is within the last window of stream time (or the last ``N``
        ranks, for a count session) still has every joinable partner inside
        the journal — partners reach at most one window further back.
        """
        if not self._queries:
            return 0.0
        return 2.0 * max(query.window for query in self._queries.values())

    def _journal_append(self, index: int, tuples: Sequence[StreamTuple]) -> None:
        journal = self._journals[index]
        counts = self._journal_counts[index]
        base = self._pushed[index]
        for offset, tup in enumerate(tuples):
            journal.append((base + offset + 1, tup))
            counts[tup.stream] = counts.get(tup.stream, 0) + 1
        self._pushed[index] = base + len(tuples)
        journal_horizon = self._journal_horizon()
        if not journal:
            return
        if journal_horizon <= 0:
            # No queries: chainless arrivals build no state and no results.
            journal.clear()
            counts.clear()
        elif self.window_kind == "time":
            latest = journal[-1][1].timestamp
            while journal and latest - journal[0][1].timestamp >= journal_horizon:
                _, dropped = journal.popleft()
                counts[dropped.stream] -= 1
        else:
            while journal and counts[journal[0][1].stream] - 1 >= journal_horizon:
                _, dropped = journal.popleft()
                counts[dropped.stream] -= 1

    def _recover_state(self, index: int):
        """Rebuild a dead shard's engine from the parent-side journal.

        Replays the generation's base state plus the journaled arrivals
        through a fresh local engine, replaying admissions at their
        recorded push positions.  Results are popped per journal segment:
        a segment's results are kept for a query only when its delivery
        frontier lies at or before the segment start — results the dead
        worker had already handed out are discarded, undelivered ones are
        returned for the carryover view.  Returns ``(state, boundaries,
        recovered_results)``; ``state`` is ``None`` when no query is
        registered.
        """
        engine = self.config.build()
        admitted = self._admitted[index]
        delivered = self._delivered[index]
        queries = list(self._queries.values())
        recovered: dict[str, list[JoinedTuple]] = {}
        admitted_names: set[str] = set()

        def admit_through(position: int) -> None:
            for query in queries:
                if (
                    query.name not in admitted_names
                    and admitted.get(query.name, 0) <= position
                ):
                    engine.add_query(
                        query.name,
                        query.window,
                        left_filter=query.left_filter,
                        right_filter=query.right_filter,
                    )
                    admitted_names.add(query.name)

        admit_through(0)
        base = self._recovery_base[index]
        if base is not None and admitted_names:
            base_boundaries, bucket = base
            engine.set_boundaries(base_boundaries)
            engine.ingest_keyed_state(bucket)
        entries = list(self._journals[index])
        cuts = sorted({*admitted.values(), *delivered.values()})
        cuts.append(self._pushed[index])
        pointer = 0
        previous = 0
        for cut in cuts:
            if cut <= previous:
                continue
            segment: list[StreamTuple] = []
            while pointer < len(entries) and entries[pointer][0] <= cut:
                segment.append(entries[pointer][1])
                pointer += 1
            if segment:
                engine.process_many(segment)
                engine.flush()
                for name in admitted_names:
                    results = engine.pop_results(name)
                    if results and delivered.get(name, 0) <= previous:
                        recovered.setdefault(name, []).extend(results)
            admit_through(cut)
            previous = cut
        if not admitted_names:
            return None, self._boundaries_cache, recovered
        engine.flush()
        boundaries = self._boundaries_cache
        if boundaries is not None and tuple(engine.boundaries) != tuple(boundaries):
            engine.set_boundaries(boundaries)
        else:
            boundaries = tuple(engine.boundaries)
        return engine.extract_keyed_state(), boundaries, recovered

    def _respawn_shard(self, index: int, cause: str) -> None:
        """Replace shard ``index``'s dead worker and recover its state.

        The replacement is rebuilt from the parent side alone: admissions
        replay from the registry, chain boundaries from the coordinator's
        cache, window state and undelivered results from the shard's replay
        journal (see :meth:`_recover_state`).  Undelivered results whose
        male fell off the journal's retention horizon (no result pull for
        more than one full window) are lost, as are the dead worker's
        metrics counters; everything else — state, delivered results, the
        per-shard probe override — survives the crash exactly.
        """
        self._respawns[index] += 1
        if self._respawns[index] > self.max_respawns:
            raise ExecutionError(
                f"shard {index}: worker died ({cause}) and exhausted its "
                f"{self.max_respawns} respawns; close the session"
            )
        self._respawn_guard = True
        try:
            worker = self._workers[index]
            if worker.is_alive():  # a broken pipe does not imply a dead process
                worker.terminate()
            worker.join(timeout=5)
            try:
                self._pipes[index].close()
            except OSError:  # pragma: no cover - already closed
                pass
            old_ring = self._rings[index]
            old_ring.close()
            old_ring.unlink()
            state, boundaries, recovered = self._recover_state(index)
            for name, results in recovered.items():
                self._carryover.setdefault(name, []).extend(results)
            parent_conn, ring, worker = self._spawn_worker()
            self._pipes[index] = parent_conn
            self._rings[index] = ring
            self._workers[index] = worker
            for query in self._queries.values():
                self._request(
                    index,
                    "add",
                    (query.name, query.window, query.left_filter, query.right_filter),
                    respawn=False,
                )
            if state is not None:
                self._request(index, "adopt", boundaries, respawn=False)
                self._request(index, "ingest", state, respawn=False)
            if self._shard_probes is not None:
                self._request(
                    index, "probe", self._shard_probes[index], respawn=False
                )
            # The recovered state is the replacement's generation base:
            # restart the journal bookkeeping from it.
            self._recovery_base[index] = (
                (boundaries, state) if state is not None else None
            )
            self._journals[index].clear()
            self._journal_counts[index].clear()
            self._pushed[index] = 0
            self._admitted[index] = {name: 0 for name in self._queries}
            self._delivered[index] = {name: 0 for name in self._queries}
            self.metrics.record_respawn()
        finally:
            self._respawn_guard = False

    def _per_shard_budget(self, shards: int) -> int | None:
        """Split the session budget evenly over ``shards`` engines.

        The shards partition the key space, so their resident states are
        disjoint and the per-shard budgets sum (up to rounding) to the
        session budget the caller asked for.
        """
        total = self.memory_budget_bytes
        if total is None:
            return None
        return max(1, total // max(1, shards))

    @property
    def per_shard_memory_budget(self) -> int | None:
        """The budget each live shard engine currently enforces."""
        return self.config.memory_budget_bytes

    def close(self) -> None:
        """Shut the session down: worker processes (process mode) or the
        serial engines' disk tiers (segment stores of spilled slices)."""
        if self._closed:
            return
        self._closed = True
        if self.shard_mode == "process":
            self._stop_workers()
            return
        for engine in self.shard_engines:
            engine.close()

    def __enter__(self) -> "ShardedStreamEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise ExecutionError("the sharded session has been closed")

    # -- routing ---------------------------------------------------------------
    def shard_of(self, tup: StreamTuple) -> int:
        """The shard an arrival is routed to (pure in the tuple's key)."""
        if self.shards == 1 or self._key_attrs is None:
            return 0
        try:
            attribute = self._key_attrs[tup.stream]
        except KeyError:
            raise QueryError(
                f"sharded session joins streams {sorted(self._key_attrs)}, got a "
                f"tuple of stream {tup.stream!r}"
            ) from None
        return shard_for_key(tup.values[attribute], self.shards)

    # -- execution -------------------------------------------------------------
    def process(self, tup: StreamTuple) -> None:
        """Ingest one arriving tuple, routing it to its key's shard."""
        self._check_open()
        index = self.shard_of(tup)
        self._arrivals += 1
        self._clock = tup.timestamp
        if self.shard_mode == "serial":
            self.shard_engines[index].process(tup)
            return
        buffer = self._buffers[index]
        buffer.append(tup)
        if len(buffer) >= self.batch_size:
            self._push_batch(index)

    def process_many(self, tuples: Iterable[StreamTuple]) -> None:
        """Ingest a sequence of timestamp-ordered arrivals."""
        for tup in tuples:
            self.process(tup)

    def flush(self) -> None:
        """Process buffered arrivals on every shard (a cross-shard barrier)."""
        self._check_open()
        if self.shard_mode == "serial":
            for engine in self.shard_engines:
                engine.flush()
            return
        self._send_buffers()
        self._request_all("sync")

    # -- admission (fans out to every shard) -----------------------------------
    def add_query(
        self,
        name: str,
        window: float,
        left_filter: Predicate | None = None,
        right_filter: Predicate | None = None,
    ) -> RegisteredQuery:
        """Admit a query on every shard (one logical admission).

        All shards run the same migration, so their chain boundaries and
        pushed-down filters stay identical — the session behaves as one
        engine whose state happens to be partitioned by key.  Admissions,
        removals and reshards serialize on one session lock.
        """
        with self._serialized("admit a query"):
            self._check_open()
            if name in self._queries:
                raise QueryError(f"query {name!r} is already registered")
            if self.shard_mode == "serial":
                registered = None
                for engine in self.shard_engines:
                    registered = engine.add_query(
                        name, window, left_filter=left_filter, right_filter=right_filter
                    )
                assert registered is not None
                query = replace(registered, registered_at=self._arrivals)
            else:
                self._send_buffers()
                replies = self._request_all(
                    "add", (name, window, left_filter, right_filter)
                )
                self._boundaries_cache = tuple(replies[0])
                for index in range(self.shards):
                    # The new query's results start at the current push
                    # position: a crash replay must not fabricate results
                    # for males this shard ingested before the admission.
                    self._admitted[index][name] = self._pushed[index]
                    self._delivered[index][name] = self._pushed[index]
                updates = {
                    key: value
                    for key, value in (
                        ("left_filter", left_filter),
                        ("right_filter", right_filter),
                    )
                    if value is not None
                }
                query = RegisteredQuery(name, window, self._arrivals, **updates)
            self._queries[name] = query
            return query

    def remove_query(self, name: str) -> list[JoinedTuple]:
        """Deregister a query on every shard; return its merged results.

        Results delivered before the last :meth:`reshard` (carried across
        the generation change) are included in the merge.
        """
        with self._serialized("remove a query"):
            self._check_open()
            if name not in self._queries:
                raise QueryError(f"no registered query named {name!r}")
            if self.shard_mode == "serial":
                delivered = [engine.remove_query(name) for engine in self.shard_engines]
            else:
                self._send_buffers()
                delivered = self._request_all("remove", name)
                for index in range(self.shards):
                    self._admitted[index].pop(name, None)
                    self._delivered[index].pop(name, None)
            del self._queries[name]
            if self.shard_mode == "process":
                # The removal may have shrunk the chain; refresh the
                # coordinator's boundary cache for crash recovery.
                self._boundaries_cache = (
                    tuple(self._request(0, "state")["boundaries"])
                    if self._queries
                    else None
                )
            delivered.append(self._carryover.pop(name, []))
            return self._merge(delivered)

    # -- results ---------------------------------------------------------------
    @staticmethod
    def _merge(per_shard: Sequence[list[JoinedTuple]]) -> list[JoinedTuple]:
        """Deterministic global order: merge shard outputs by the same
        ``(timestamp, seqno, seqno)`` key a single engine delivers in."""
        return sorted(
            itertools.chain.from_iterable(per_shard),
            key=lambda j: (j.timestamp, j.left.seqno, j.right.seqno),
        )

    def results(self, name: str) -> list[JoinedTuple]:
        """A query's merged results so far (buffered arrivals included).

        Includes results delivered before any :meth:`reshard` (the carryover
        of retired shard generations), re-merged into the global order.
        """
        self._check_open()
        if name not in self._queries:
            raise QueryError(f"no registered query named {name!r}")
        if self.shard_mode == "serial":
            per_shard = [engine.results(name) for engine in self.shard_engines]
        else:
            self._send_buffers()
            per_shard = self._request_all("results", name)
        per_shard.append(self._carryover.get(name, []))
        return self._merge(per_shard)

    def pop_results(self, name: str) -> list[JoinedTuple]:
        """Return and clear a query's merged results (carryover included)."""
        self._check_open()
        if name not in self._queries:
            raise QueryError(f"no registered query named {name!r}")
        if self.shard_mode == "serial":
            per_shard = [engine.pop_results(name) for engine in self.shard_engines]
        else:
            self._send_buffers()
            per_shard = self._request_all("pop", name)
            for index in range(self.shards):
                # Everything pushed so far is now delivered for this query
                # (the worker drains its ring before executing a command).
                self._delivered[index][name] = self._pushed[index]
        per_shard.append(self._carryover.pop(name, []))
        return self._merge(per_shard)

    def pop_results_all(self) -> dict[str, list[JoinedTuple]]:
        """Return and clear every query's merged results in one sweep.

        The batched pull of the process driver: one round-trip per shard
        for *all* queries, instead of one per ``(shard, query)`` pair —
        the way a throughput-sensitive caller should drain a sharded
        session.  Carryover results are included, exactly as in
        :meth:`pop_results`.
        """
        self._check_open()
        names = list(self._queries)
        if self.shard_mode == "serial":
            per_name = {
                name: [engine.pop_results(name) for engine in self.shard_engines]
                for name in names
            }
        else:
            self._send_buffers()
            replies = self._request_all("pop_all", names)
            per_name = {
                name: [reply.get(name, []) for reply in replies] for name in names
            }
            for index in range(self.shards):
                for name in names:
                    self._delivered[index][name] = self._pushed[index]
        merged: dict[str, list[JoinedTuple]] = {}
        for name in names:
            parts = per_name[name]
            parts.append(self._carryover.pop(name, []))
            merged[name] = self._merge(parts)
        return merged

    # -- statistics ------------------------------------------------------------
    def shard_snapshots(self) -> list[MetricsSnapshot]:
        """One metrics snapshot per shard (buffered arrivals flushed first)."""
        self._check_open()
        if self.shard_mode == "serial":
            self.flush()
            return [engine.metrics.snapshot() for engine in self.shard_engines]
        self._send_buffers()
        return self._request_all("snapshot")

    def merged_snapshot(
        self, snapshots: Sequence[MetricsSnapshot] | None = None
    ) -> MetricsSnapshot:
        """The per-shard snapshots folded into one global counter view.

        Counters of shard generations retired by :meth:`reshard` are folded
        in (their memory gauges are not — two generations overlap in time),
        as are the session-level reshard counters.  Pass ``snapshots`` (a
        prior :meth:`shard_snapshots` value) to reuse one fetch across
        several derived views — in process mode every fresh fetch is a
        flush plus one round-trip per worker."""
        if snapshots is None:
            snapshots = self.shard_snapshots()
        parts = list(snapshots)
        if self._snapshot_base is not None:
            parts.append(self._snapshot_base)
        if self.metrics.reshards or self.metrics.respawns:
            parts.append(self.metrics.snapshot())
        return MetricsSnapshot.aggregate(parts)

    def shard_statistics(
        self, snapshots: Sequence[MetricsSnapshot] | None = None
    ) -> list[StreamStatistics]:
        """Statistics estimates, one per shard (measured per-shard rates —
        unequal under key skew).

        Estimated over the current shard *generation*: the window opens at
        the last :meth:`reshard` (or session start), so rates are measured
        under the modulus the counters were collected with.
        """
        if snapshots is None:
            snapshots = self.shard_snapshots()
        return [
            StreamStatistics.from_metrics_delta(
                snapshot.diff(self._epoch),
                left_stream=self.left_stream,
                right_stream=self.right_stream,
            )
            for snapshot in snapshots
        ]

    def merged_statistics(
        self, snapshots: Sequence[MetricsSnapshot] | None = None
    ) -> StreamStatistics:
        """The global statistics view: per-shard observations aggregated
        before estimation (the input of a :class:`ShardPlanner`).

        Like :meth:`shard_statistics`, the estimation window opens at the
        last :meth:`reshard` — mixing counters measured under two different
        moduli would bias every per-shard quantity.  Note the join factor
        of this view is the *within-shard* match rate — conditioned on key
        co-location, so ≈ N× the unpartitioned S1 under uniform keys.  That
        is deliberately the right quantity here: it is what a shard's
        probes actually hit, hence what prices a shard's chain; the arrival
        rates remain global (summed across shards)."""
        if snapshots is None:
            snapshots = self.shard_snapshots()
        return StreamStatistics.from_shard_windows(
            [(self._epoch, snapshot) for snapshot in snapshots],
            left_stream=self.left_stream,
            right_stream=self.right_stream,
        )

    # -- re-optimization -------------------------------------------------------
    def rebalance(
        self,
        params: ChainCostParameters,
        statistics: StreamStatistics | None = None,
    ) -> tuple[float, ...]:
        """Migrate every shard's chain to the CPU-Opt boundaries.

        ``params`` and ``statistics`` describe the *global* session; each
        shard of an evenly partitioned stream sees ``1/N`` of the arrival
        rates, so both are scaled down before the per-shard search runs
        (selectivities are rate-invariant).  For skew-aware re-pricing from
        each shard's own measurements use :meth:`ShardPlanner.rebalance`.
        """
        self._check_open()
        scale = 1.0 / self.shards
        shard_params = replace(
            params,
            arrival_rate_left=params.arrival_rate_left * scale,
            arrival_rate_right=params.arrival_rate_right * scale,
        )
        shard_stats = statistics.scaled(scale) if statistics is not None else None
        return self.rebalance_shards([(shard_params, shard_stats)] * self.shards)

    def rebalance_shards(
        self,
        plans: Sequence[tuple[ChainCostParameters, StreamStatistics | None]],
    ) -> tuple[float, ...]:
        """Rebalance each shard with its own parameters/statistics.

        All shards must keep identical boundaries (the admission fan-out
        invariant), so the first shard's target is applied everywhere; the
        per-shard inputs only matter for *pricing* under skew, where the
        planner deliberately feeds every shard the same skew-aware view.
        """
        self._check_open()
        if len(plans) != self.shards:
            raise ShardingError(
                f"need one plan per shard ({self.shards}), got {len(plans)}"
            )
        boundaries: tuple[float, ...] | None = None
        if self.shard_mode == "serial":
            for engine, (params, statistics) in zip(self.shard_engines, plans):
                result = tuple(engine.rebalance(params, statistics=statistics))
                boundaries = result if boundaries is None else boundaries
        else:
            self._send_buffers()
            replies = self._request_each("rebalance", list(plans))
            boundaries = tuple(replies[0])
            self._boundaries_cache = boundaries
        assert boundaries is not None
        return boundaries

    def set_shard_probes(self, probes: Sequence[str]) -> None:
        """Install a per-shard probe choice (``"hash"`` / ``"nested_loop"``).

        Unlike boundaries, the probe strategy is private to a shard — it
        changes *how* a shard scans its state, never which results exist —
        so shards may legally differ: a hot shard amortizes a hash index
        over many candidates per probe while a sparse one is better off
        nested-loop scanning a handful.  Each engine rebuilds its indexes
        and reloads its state in place (:meth:`StreamEngine.set_probe`).
        The choice survives worker respawns but is reset by
        :meth:`reshard` (per-shard statistics do not survive a modulus
        change); see :meth:`ShardPlanner.recommend_probes` for picking the
        probes from measured statistics.
        """
        self._check_open()
        probes = list(probes)
        if len(probes) != self.shards:
            raise ShardingError(
                f"need one probe per shard ({self.shards}), got {len(probes)}"
            )
        if self.shard_mode == "serial":
            for engine, probe in zip(self.shard_engines, probes):
                engine.set_probe(probe)
        else:
            self._send_buffers()
            self._request_each("probe", probes)
        self._shard_probes = probes

    @property
    def shard_probes(self) -> list[str]:
        """The effective per-shard probe strategies."""
        if self._shard_probes is not None:
            return list(self._shard_probes)
        return [self.probe] * self.shards

    # -- live resharding -------------------------------------------------------
    def reshard(self, target: "int | ShardPlan", reason: str = "") -> ReshardEvent:
        """Change the shard count of the running session to ``target``.

        The one migration primitive the fan-out invariant cannot express:
        every resident tuple must move to the shard its key hashes to under
        the *new* modulus.  The session performs a keyed state repartition
        without stopping ingestion or changing any query's answer:

        1. **drain** — in-flight batches are flushed on every shard;
        2. **export** — each shard's per-slice window state is extracted
           (:meth:`StreamEngine.extract_keyed_state`), its undelivered
           results popped, and its counters retired into the session-level
           carryover views;
        3. **repartition** — every resident tuple is bucketed by
           ``shard_for_key(key, target)``, per slice and stream;
        4. **rebuild** — ``target`` fresh shards replay the current
           admissions (which re-derives the pushed-down filters), adopt the
           donor generation's exact chain boundaries
           (:meth:`StreamEngine.set_boundaries` — a prior rebalance may
           have moved them off the Mem-Opt positions), and splice their
           bucket in (:meth:`StreamEngine.ingest_keyed_state` — per-slice
           ``(timestamp, seqno)`` merge, hash indexes rebuilt).

        Ingestion resumes against the new generation; subsequent statistics
        views are measured under the new modulus (the estimation epoch
        resets to the reshard's stream time).  "Without stopping ingestion"
        means no arrival is lost or reordered across the cut in the ingest
        loop — it does **not** make ``process``/``flush`` safe to call from
        another thread while the reshard runs: ingestion is single-threaded
        by contract (admissions, removals and reshards serialize on the
        session lock; readers and writers of the stream do not).

        Parameters
        ----------
        target:
            The new shard count, or a :class:`ShardPlan` whose ``shards``
            (and ``reason``) are used.  ``1`` is the degenerate single
            engine; values above 1 require an equi-join time-window session
            (the same constraint as constructing a sharded session).
        reason:
            Free-form note recorded on the :class:`ReshardEvent` (the
            planner passes its decision reason).

        Returns
        -------
        ReshardEvent
            The recorded event — moved/resident tuple counts, carried
            results, and the stream time of the cut.  A no-op (``target``
            equals the current count) returns an event with nothing moved
            and is not recorded in :attr:`reshard_events`.

        Raises
        ------
        ShardingError
            If ``target`` is not partitionable (non-equi condition or count
            windows with ``target > 1``) or not positive.
        MigrationError
            If called re-entrantly from within another session migration on
            the same thread (admissions and reshards serialize).
        ExecutionError
            If the session is closed, or a process-mode worker died — the
            session is then in an undefined state and must be closed.
        """
        if isinstance(target, ShardPlan):
            if not reason:
                reason = target.reason
            target = target.shards
        if (
            isinstance(target, bool)
            or not isinstance(target, (int, float))
            or target != int(target)
        ):
            raise ShardingError(
                f"shard count must be a whole number, got {target!r}"
            )
        target = int(target)
        with self._serialized("reshard"):
            self._check_open()
            if target < 1:
                raise ShardingError(f"shard count must be at least 1, got {target}")
            if target > 1:
                problem = None
                if not isinstance(self.condition, EquiJoinCondition):
                    problem = (
                        f"condition {self.condition.describe()!r} has no "
                        f"equi-key to partition on"
                    )
                elif self.window_kind != "time":
                    problem = (
                        "count windows rank tuples over the whole stream, "
                        "not a shard's subsequence"
                    )
                if problem is not None:
                    raise ShardingError(
                        f"cannot reshard to {target} shards: {problem}"
                    )
            old = self.shards
            if target == old:
                return ReshardEvent(
                    old_shards=old,
                    new_shards=target,
                    moved_tuples=0,
                    resident_tuples=0,
                    carried_results=0,
                    arrivals=self._arrivals,
                    stream_time=self._stream_time(),
                    reason=reason or "no-op: already at the target shard count",
                )
            exports = self._export_shards()
            boundaries = tuple(exports[0]["boundaries"])
            stream_time = max(
                (export["snapshot"].get("time.last", 0.0) for export in exports),
                default=0.0,
            )
            # Repartition every resident tuple under the new modulus.  Each
            # tuple remembers its donor slice, but the final placement must
            # restore the chain's *layering invariant* — every tuple of
            # slice k+1 older than every tuple of slice k.  Purging is
            # per-shard lazy, so one donor may retain a tuple shallowly that
            # another donor has long pushed past; merged naively, a later
            # cross-purge would append females out of timestamp order and an
            # unchecked slice (end <= window) could emit a too-old pair.
            # Conflicts are resolved by pulling tuples *shallower* (walking
            # oldest -> newest, depth only ever shrinks): a shallower slice
            # re-purges the tuple on the next probe, whereas a deeper slice
            # is not tapped by small-window queries and would lose results.
            streams = (self.left_stream, self.right_stream)
            slice_count = len(boundaries) - 1 if boundaries else 0
            entries: list[dict[str, list]] = [
                {stream: [] for stream in streams} for _ in range(target)
            ]
            moved = 0
            resident = 0
            key_attrs = self._key_attrs
            for old_index, export in enumerate(exports):
                for slice_index, entry in enumerate(export["state"]):
                    for stream, tuples in entry.items():
                        for tup in tuples:
                            resident += 1
                            if target == 1:
                                new_index = 0
                            else:
                                assert key_attrs is not None
                                new_index = shard_for_key(
                                    tup[key_attrs[stream]], target
                                )
                            if new_index != old_index:
                                moved += 1
                            entries[new_index][stream].append((tup, slice_index))
            buckets: list[list[dict[str, list[StreamTuple]]]] = [
                [{stream: [] for stream in streams} for _ in range(slice_count)]
                for _ in range(target)
            ]
            for new_index in range(target):
                for stream in streams:
                    tagged = entries[new_index][stream]
                    tagged.sort(key=lambda e: (e[0].timestamp, e[0].seqno))
                    depth = slice_count  # oldest first; depth only shrinks
                    for tup, donor_depth in tagged:
                        depth = min(depth, donor_depth)
                        buckets[new_index][depth][stream].append(tup)
            # Results already delivered by the retiring generation stay
            # readable through the carryover view.
            carried = 0
            for name in self._queries:
                pending = self._merge(
                    [export["results"].get(name, []) for export in exports]
                )
                if pending:
                    carried += len(pending)
                    self._carryover.setdefault(name, []).extend(pending)
            # Retire the old generation's counters (memory gauges dropped:
            # generations overlap in time, their occupancies must not sum).
            stats_parts = [export["stats"] for export in exports]
            if self._stats_base is not None:
                stats_parts.insert(0, self._stats_base)
            self._stats_base = EngineStats.aggregate(stats_parts)
            snapshot_parts = [export["snapshot"] for export in exports]
            if self._snapshot_base is not None:
                snapshot_parts.insert(0, self._snapshot_base)
            snapshot_base = MetricsSnapshot.aggregate(snapshot_parts)
            for gauge in (
                "memory.average",
                "memory.max",
                "memory.resident_bytes",
                "memory.spilled_bytes",
                "memory.max_resident_bytes",
            ):
                snapshot_base.pop(gauge, None)
            self._snapshot_base = snapshot_base
            self._epoch = MetricsSnapshot({"time.last": stream_time})
            # Build the new generation and splice the buckets in.  Per-shard
            # probe overrides were chosen under the old modulus; the new
            # generation starts from the config default until the planner
            # re-tunes it.
            self.shards = target
            self._shard_probes = None
            # Re-split the session memory budget under the new modulus: the
            # new generation's shards each enforce their own slice of it
            # (the retiring generation's segment stores were deleted by the
            # export — state crosses the cut materialized, never as files).
            self.config = replace(
                self.config, memory_budget_bytes=self._per_shard_budget(target)
            )
            self._build_generation(boundaries, buckets)
            self.metrics.record_reshard(moved)
            self.metrics.observe_time(stream_time)
            event = ReshardEvent(
                old_shards=old,
                new_shards=target,
                moved_tuples=moved,
                resident_tuples=resident,
                carried_results=carried,
                arrivals=self._arrivals,
                stream_time=stream_time,
                reason=reason,
            )
            self.reshard_events.append(event)
            return event

    @property
    def partitionable(self) -> bool:
        """Whether this session can run more than one shard.

        True for equi-join time-window sessions — the same constraint the
        constructor and :meth:`reshard` enforce; the reshard policy checks
        it before recommending growth.
        """
        return (
            isinstance(self.condition, EquiJoinCondition)
            and self.window_kind == "time"
        )

    @property
    def stream_clock(self) -> float:
        """Stream timestamp of the last ingested arrival (no shard I/O).

        Tracked by the coordinator, so reading it never flushes a shard —
        the cheap clock :meth:`ShardPlanner.should_reshard` polls between
        estimation windows.
        """
        return self._clock

    def _stream_time(self) -> float:
        """The stream time of a cut (the coordinator has seen every arrival)."""
        return self._clock

    def _export_shards(self) -> list[dict]:
        """Drain and strip the retiring generation: state, results, counters."""
        names = list(self._queries)
        if self.shard_mode == "serial":
            return [_export_engine(engine, names) for engine in self.shard_engines]
        self._send_buffers()
        exports = self._request_all("export", names)
        self._stop_workers()
        return exports

    def _build_generation(
        self,
        boundaries: tuple[float, ...],
        buckets: "list[list[dict[str, list[StreamTuple]]]]",
    ) -> None:
        """Start ``self.shards`` fresh shards at the donor boundaries and
        splice each one's repartitioned state bucket in."""
        queries = list(self._queries.values())
        if self.shard_mode == "serial":
            # Build the generation fully before publishing it: the session
            # is single-threaded for ingestion by contract, but a complete
            # swap keeps the visible state consistent at every point.
            engines = [self.config.build() for _ in range(self.shards)]
            for index, engine in enumerate(engines):
                for query in queries:
                    engine.add_query(
                        query.name,
                        query.window,
                        left_filter=query.left_filter,
                        right_filter=query.right_filter,
                    )
                if queries:
                    engine.set_boundaries(boundaries)
                    engine.ingest_keyed_state(buckets[index])
            self.shard_engines = engines
            self._boundaries_cache = tuple(boundaries) if queries else None
            return
        # A worker death in here cannot be recovered from the journal (the
        # generation's base state only exists in `buckets` until every shard
        # acknowledged its ingest), so respawns are off until the build is
        # complete.
        self._respawn_guard = True
        try:
            self._start_workers()
            for query in queries:
                self._request_all(
                    "add",
                    (query.name, query.window, query.left_filter, query.right_filter),
                )
            if queries:
                self._request_all("adopt", boundaries)
                self._request_each("ingest", buckets)
        finally:
            self._respawn_guard = False
        self._boundaries_cache = tuple(boundaries) if queries else None
        for index in range(self.shards):
            self._admitted[index] = {query.name: 0 for query in queries}
            self._delivered[index] = {query.name: 0 for query in queries}
            self._recovery_base[index] = (
                (tuple(boundaries), buckets[index]) if queries else None
            )

    # -- introspection ---------------------------------------------------------
    def _shard_states(self) -> list[dict]:
        """Process-mode introspection: flush buffers, one round-trip each."""
        self._check_open()
        self._send_buffers()
        return self._request_all("state")

    @property
    def stats(self) -> EngineStats:
        """Aggregated session counters (migrations from the first shard —
        the fan-out keeps every shard's migration sequence identical).

        Counters of generations retired by :meth:`reshard` are included;
        the migration history shown is the oldest generation's (each
        reshard replays admissions, so later generations repeat it).
        """
        if self.shard_mode == "serial":
            self._check_open()
            current = [engine.stats for engine in self.shard_engines]
        else:
            current = [state["stats"] for state in self._shard_states()]
        if self._stats_base is not None:
            current.insert(0, self._stats_base)
        return EngineStats.aggregate(current)

    @property
    def boundaries(self) -> tuple[float, ...]:
        """The session's chain boundaries (identical on every shard)."""
        if self.shard_mode == "serial":
            self._check_open()
            return self.shard_engines[0].boundaries
        return self.shard_boundaries()[0]

    def shard_boundaries(self) -> list[tuple[float, ...]]:
        """Every shard's chain boundaries (the fan-out keeps them equal)."""
        if self.shard_mode == "serial":
            self._check_open()
            return [engine.boundaries for engine in self.shard_engines]
        return [tuple(state["boundaries"]) for state in self._shard_states()]

    def queries(self) -> list[RegisteredQuery]:
        """The registered queries, sorted by (window, name)."""
        return sorted(self._queries.values(), key=lambda q: (q.window, q.name))

    def query(self, name: str) -> RegisteredQuery:
        """The registered query named ``name``.

        Raises :class:`~repro.engine.errors.QueryError` if unknown.
        """
        try:
            return self._queries[name]
        except KeyError:
            raise QueryError(f"no registered query named {name!r}") from None

    def slice_count(self) -> int:
        """Slices per shard chain (identical on every shard)."""
        if self.shard_mode == "serial":
            self._check_open()
            return self.shard_engines[0].slice_count()
        return int(self._shard_states()[0]["slice_count"])

    def state_size(self) -> int:
        """Total tuples resident across all shards' join states."""
        if self.shard_mode == "serial":
            self._check_open()
            return sum(engine.state_size() for engine in self.shard_engines)
        return sum(state["state_size"] for state in self._shard_states())

    def states_are_disjoint(self) -> bool:
        """Within-shard slice disjointness; cross-shard disjointness holds by
        construction (each tuple is routed to exactly one shard)."""
        if self.shard_mode == "serial":
            self._check_open()
            return all(engine.states_are_disjoint() for engine in self.shard_engines)
        return all(state["disjoint"] for state in self._shard_states())

    def shard_ingest_totals(
        self, snapshots: Sequence[MetricsSnapshot] | None = None
    ) -> list[int]:
        """Arrivals routed to each shard (the raw material of skew detection)."""
        if snapshots is None:
            snapshots = self.shard_snapshots()
        return [int(snapshot.get("ingested.total", 0.0)) for snapshot in snapshots]

    def describe(self) -> str:
        """One-line summary: shard layout and the inner session shape."""
        inner = (
            self.shard_engines[0].describe()
            if self.shard_mode == "serial"
            else f"{len(self._queries)} queries"
        )
        return (
            f"ShardedStreamEngine[{self.shards}x {self.shard_mode}, "
            f"key={self.condition.describe()}] each: {inner}"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"<ShardedStreamEngine shards={self.shards} mode={self.shard_mode} "
            f"queries={len(self._queries)} arrivals={self._arrivals}>"
        )


# ---------------------------------------------------------------------------
# The planner
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ShardPlan:
    """One sizing decision of the :class:`ShardPlanner` (for observability)."""

    shards: int  #: Recommended shard count for the measured load.
    total_rate: float  #: Measured arrivals/second across both streams.
    imbalance: float  #: max/mean per-shard ingest share (1.0 = perfectly even).
    skewed: bool  #: True when the imbalance exceeds the planner's threshold.
    reason: str
    #: Modulus the skew shares were measured under — per-shard ingest
    #: counters only describe the shard count they were collected with, so
    #: after any reshard the imbalance is meaningless without this.
    measured_shards: int = 1

    def describe(self) -> str:
        """One-line human-readable form of this plan."""
        skew = f"skewed {self.imbalance:.2f}x" if self.skewed else (
            f"balanced ({self.imbalance:.2f}x)"
        )
        return (
            f"ShardPlan[{self.shards} shards for {self.total_rate:.3g}/s, "
            f"{skew} measured under modulus {self.measured_shards}]"
        )


@dataclass(frozen=True)
class ReshardDecision:
    """One verdict of :meth:`ShardPlanner.should_reshard` (for observability)."""

    reshard: bool  #: True when the session should move to ``target`` shards now.
    target: int  #: The shard count the decision is about.
    reason: str  #: Why (or why not) — hysteresis, cooldown, skew refusal, …
    plan: ShardPlan | None = None  #: The sizing plan behind the decision, if any.

    def describe(self) -> str:
        """One-line human-readable form of this decision."""
        verdict = f"reshard to {self.target}" if self.reshard else "hold"
        return f"ReshardDecision[{verdict}: {self.reason}]"


class ShardPlanner:
    """Statistics-driven sizing, re-pricing and live resizing of a sharded session.

    Parameters
    ----------
    max_shards:
        Upper bound of :meth:`recommend` (hardware parallelism, or how many
        serial shards still pay for their routing overhead).
    target_rate_per_shard:
        Arrivals/second one shard should absorb; the recommendation is
        ``ceil(total measured rate / target)`` clamped to ``[1, max_shards]``.
        Calibrate from ``benchmarks/test_sharded_scaleout.py`` on the host.
    skew_threshold:
        max/mean per-shard ingest share above which the key distribution
        counts as skewed (hot keys concentrating on few shards).
    window:
        Length of one :meth:`should_reshard` estimation window in
        stream-seconds (mirrors :class:`~repro.runtime.adaptive.AdaptivePolicy`).
    hysteresis:
        Consecutive estimation windows that must agree on a different shard
        count before :meth:`should_reshard` says yes; one conforming window
        resets the streak.
    cooldown:
        Minimum stream-seconds between two positive reshard decisions,
        bounding the migration frequency under oscillating load.
    min_arrivals:
        Estimation windows backed by fewer arrivals are discarded as noise.
    """

    def __init__(
        self,
        max_shards: int = 8,
        target_rate_per_shard: float = 200.0,
        skew_threshold: float = 2.0,
        window: float = 2.0,
        hysteresis: int = 2,
        cooldown: float = 8.0,
        min_arrivals: int = 64,
    ) -> None:
        if max_shards < 1:
            raise ShardingError(f"max_shards must be at least 1, got {max_shards}")
        if target_rate_per_shard <= 0:
            raise ShardingError(
                f"target_rate_per_shard must be positive, got {target_rate_per_shard}"
            )
        if skew_threshold < 1.0:
            raise ShardingError(
                f"skew_threshold must be at least 1.0, got {skew_threshold}"
            )
        if window <= 0:
            raise ShardingError(f"window must be positive, got {window}")
        if hysteresis < 1:
            raise ShardingError(f"hysteresis must be at least 1, got {hysteresis}")
        if cooldown < 0:
            raise ShardingError(f"cooldown must be non-negative, got {cooldown}")
        self.max_shards = int(max_shards)
        self.target_rate_per_shard = float(target_rate_per_shard)
        self.skew_threshold = float(skew_threshold)
        self.window = float(window)
        self.hysteresis = int(hysteresis)
        self.cooldown = float(cooldown)
        self.min_arrivals = int(min_arrivals)
        #: Recent :class:`ReshardDecision` verdicts, newest last.  Bounded —
        #: an always-on session polls this policy indefinitely, so an
        #: unbounded log would be a slow leak.
        self.decisions: deque[ReshardDecision] = deque(maxlen=256)
        self._window_start: float | None = None
        self._window_snapshots: Sequence[MetricsSnapshot] | None = None
        self._window_shards: int | None = None
        self._streak = 0
        self._streak_target: int | None = None
        self._last_reshard: float | None = None

    def recommend(self, statistics: StreamStatistics) -> int:
        """Shard count for a measured (or declared) global load."""
        total = sum(statistics.arrival_rates.values())
        if total <= 0:
            return 1
        return max(1, min(self.max_shards, math.ceil(total / self.target_rate_per_shard)))

    def imbalance(self, ingest_totals: Sequence[int]) -> float:
        """max/mean per-shard ingest share; 1.0 is perfectly balanced."""
        if not ingest_totals:
            return 1.0
        mean = sum(ingest_totals) / len(ingest_totals)
        if mean <= 0:
            return 1.0
        return max(ingest_totals) / mean

    def plan(self, engine: ShardedStreamEngine) -> ShardPlan:
        """Size and skew-check a live sharded session from its merged view.

        Uses the whole current shard generation as the estimation window
        (everything since the last :meth:`ShardedStreamEngine.reshard`); the
        returned plan's ``measured_shards`` records the modulus the skew
        shares were measured under.
        """
        snapshots = engine.shard_snapshots()  # one fetch feeds every view
        statistics = engine.merged_statistics(snapshots)
        ingest_totals = engine.shard_ingest_totals(snapshots)
        return self._assemble_plan(engine, statistics, ingest_totals)

    def _assemble_plan(
        self,
        engine: ShardedStreamEngine,
        statistics: StreamStatistics,
        ingest_totals: Sequence[int],
    ) -> ShardPlan:
        shards = self.recommend(statistics)
        imbalance = self.imbalance(ingest_totals)
        skewed = imbalance > self.skew_threshold
        total = sum(statistics.arrival_rates.values())
        if skewed:
            reason = (
                f"hot keys: the busiest shard carries {imbalance:.2f}x the mean "
                f"ingest share (threshold {self.skew_threshold:g}x)"
            )
        elif shards != engine.shards:
            reason = (
                f"measured {total:.3g} arrivals/s over {engine.shards} shard(s); "
                f"{shards} shard(s) hit the {self.target_rate_per_shard:g}/s target"
            )
        else:
            reason = f"{engine.shards} shard(s) match the measured load"
        return ShardPlan(
            shards=shards,
            total_rate=total,
            imbalance=imbalance,
            skewed=skewed,
            reason=reason,
            measured_shards=engine.shards,
        )

    # -- the reshard policy ----------------------------------------------------
    def should_reshard(self, engine: ShardedStreamEngine) -> ReshardDecision:
        """Decide whether the session should change its shard count *now*.

        Call periodically while ingesting (every K arrivals, or from an
        external ticker).  The policy mirrors
        :class:`~repro.runtime.adaptive.AdaptivePolicy`'s stability layers:

        * estimates are *windowed* — rates come from per-shard snapshot
          deltas over ``window`` stream-seconds, never from whole-session
          averages (which would lag a drift indefinitely);
        * a different recommended count must persist for ``hysteresis``
          consecutive windows (one conforming window resets the streak);
        * after a positive decision no further reshard fires for
          ``cooldown`` stream-seconds;
        * **hot-key skew refuses to grow**: when the busiest shard exceeds
          ``skew_threshold`` times the mean ingest share, more shards
          cannot split one key's traffic — the policy holds and says so
          instead of thrashing.

        A reshard performed by anyone (including :meth:`maybe_reshard`)
        resets the estimation window: counters measured under two moduli
        are never mixed.  The decision is recorded in :attr:`decisions`;
        acting on it is the caller's job (or use :meth:`maybe_reshard`).
        """
        if self._window_snapshots is None or self._window_shards != engine.shards:
            # First observation of this shard generation: open a window.
            # (The one snapshot fetch per window boundary is the only shard
            # I/O this policy performs — mid-window polls below read the
            # coordinator's clock and return without flushing anything.)
            snapshots = engine.shard_snapshots()
            self._window_start = max(
                (s.get("time.last", 0.0) for s in snapshots),
                default=engine.stream_clock,
            )
            self._window_snapshots = snapshots
            self._window_shards = engine.shards
            return self._decide(False, engine.shards, "opening an estimation window")
        assert self._window_start is not None
        if engine.stream_clock - self._window_start < self.window:
            return self._decide(
                False, engine.shards, "estimation window still open"
            )
        snapshots = engine.shard_snapshots()
        now = max(
            (s.get("time.last", 0.0) for s in snapshots),
            default=engine.stream_clock,
        )
        pairs = list(zip(self._window_snapshots, snapshots))
        windows = [after.diff(before) for before, after in pairs]
        arrivals = sum(w.get("ingested.total", 0.0) for w in windows)
        self._window_start = now
        self._window_snapshots = snapshots
        if arrivals < self.min_arrivals:
            return self._decide(
                False,
                engine.shards,
                f"window too thin ({arrivals:.0f} arrivals < {self.min_arrivals})",
            )
        statistics = StreamStatistics.from_shard_windows(
            pairs,
            left_stream=engine.left_stream,
            right_stream=engine.right_stream,
        )
        ingest_totals = [int(w.get("ingested.total", 0.0)) for w in windows]
        plan = self._assemble_plan(engine, statistics, ingest_totals)
        if plan.shards == engine.shards:
            self._streak = 0
            self._streak_target = None
            return self._decide(False, engine.shards, plan.reason, plan)
        if plan.shards > engine.shards and not engine.partitionable:
            # A non-equi or count-window session legally runs at one shard
            # but cannot be partitioned; emitting a grow decision would
            # guarantee a ShardingError when applied.
            self._streak = 0
            self._streak_target = None
            return self._decide(
                False,
                engine.shards,
                "holding: the session is not partitionable (no equi-key or "
                "count windows), more shards cannot be built",
                plan,
            )
        if plan.skewed and plan.shards > engine.shards:
            # More shards cannot split one key: every tuple of the hot key
            # still hashes to a single shard under any modulus.
            self._streak = 0
            self._streak_target = None
            return self._decide(
                False,
                engine.shards,
                f"refusing to grow under hot-key skew — {plan.reason}",
                plan,
            )
        if self._streak_target == plan.shards:
            self._streak += 1
        else:
            self._streak = 1
            self._streak_target = plan.shards
        if self._streak < self.hysteresis:
            return self._decide(
                False,
                plan.shards,
                f"hysteresis {self._streak}/{self.hysteresis}: {plan.reason}",
                plan,
            )
        if (
            self._last_reshard is not None
            and now - self._last_reshard < self.cooldown
        ):
            return self._decide(
                False,
                plan.shards,
                f"cooling down ({now - self._last_reshard:.1f}s of "
                f"{self.cooldown:g}s): {plan.reason}",
                plan,
            )
        self._streak = 0
        self._streak_target = None
        self._last_reshard = now
        return self._decide(True, plan.shards, plan.reason, plan)

    def _decide(
        self,
        reshard: bool,
        target: int,
        reason: str,
        plan: ShardPlan | None = None,
    ) -> ReshardDecision:
        decision = ReshardDecision(reshard=reshard, target=target, reason=reason, plan=plan)
        self.decisions.append(decision)
        return decision

    def maybe_reshard(self, engine: ShardedStreamEngine) -> ReshardEvent | None:
        """Run :meth:`should_reshard` and apply a positive decision.

        Returns the :class:`ReshardEvent` when the session was resharded,
        ``None`` when the policy held.  This is the whole auto-resizing
        loop: call it periodically while ingesting.
        """
        decision = self.should_reshard(engine)
        if not decision.reshard:
            return None
        return engine.reshard(decision.target, reason=decision.reason)

    def recommend_probes(
        self,
        engine: ShardedStreamEngine,
        snapshots: Sequence[MetricsSnapshot] | None = None,
        min_scan_per_arrival: float = 8.0,
    ) -> list[str]:
        """Per-shard probe choice from each shard's *measured* probe density.

        A hash index pays its build-and-maintain overhead only when probes
        scan enough candidates to amortize it; under key skew that varies
        per shard.  A shard whose measured scan volume exceeds
        ``min_scan_per_arrival`` candidate comparisons per ingested arrival
        is *hot* and gets ``"hash"``; sparse shards keep the cheap
        ``"nested_loop"`` scan.  Non-equi sessions have no hashable key, so
        every shard stays nested-loop.  Apply the result with
        :meth:`ShardedStreamEngine.set_shard_probes` (or pass
        ``tune_probes=True`` to :meth:`rebalance`).
        """
        if not isinstance(engine.condition, EquiJoinCondition):
            return ["nested_loop"] * engine.shards
        if snapshots is None:
            snapshots = engine.shard_snapshots()
        probes = []
        for snapshot in snapshots:
            ingested = snapshot.get("ingested.total", 0.0)
            scanned = snapshot.get("comparisons.probe", 0.0)
            dense = ingested > 0 and scanned / ingested >= min_scan_per_arrival
            probes.append("hash" if dense else "nested_loop")
        return probes

    def rebalance(
        self,
        engine: ShardedStreamEngine,
        system_overhead: float = 0.5,
        tuple_size: float = 1.0,
        tune_probes: bool = False,
    ) -> tuple[float, ...]:
        """Re-price every shard's chain from its own measured statistics.

        Under key skew the shards see different arrival rates; each shard is
        therefore rebalanced with its *own* whole-session estimate, falling
        back to the merged global view (scaled to one shard's share) for
        quantities a thin shard could not measure.  Requires the session to
        run with ``collect_statistics=True``.  With ``tune_probes=True``
        the same snapshots also drive :meth:`recommend_probes`, and the
        recommendation is applied to the session.
        """
        snapshots = engine.shard_snapshots()
        merged = engine.merged_statistics(snapshots)
        fallback = merged.scaled(1.0 / engine.shards)
        plans: list[tuple[ChainCostParameters, StreamStatistics]] = []
        for stats in engine.shard_statistics(snapshots):
            if stats.join_selectivity is None:
                stats = replace(stats, join_selectivity=merged.join_selectivity)
            rates = dict(fallback.arrival_rates)
            rates.update(stats.arrival_rates)
            stats = replace(stats, arrival_rates=rates)
            params = stats.chain_parameters(
                system_overhead=system_overhead,
                tuple_size=tuple_size,
                default_rate=max(sum(rates.values()), 1e-9),
            )
            plans.append((params, stats))
        boundaries = engine.rebalance_shards(plans)
        if tune_probes:
            engine.set_shard_probes(self.recommend_probes(engine, snapshots))
        return boundaries
