"""Key-partitioned sharded runtime: N-way StreamEngine scale-out.

One :class:`~repro.runtime.engine.StreamEngine` probes one monolithic
per-slice state.  For an *equi-join* workload that is more work than the
answer requires: two tuples can only join when they agree on the join key,
so hash-partitioning **both** input streams on that key splits the session
into N completely independent sub-sessions — every joinable pair lands in
the same shard, and the union of the per-shard answers is exactly the
unsharded answer.

:class:`ShardedStreamEngine` implements that split:

* **routing** — each arrival goes to ``shard_for_key(key, N)`` where the key
  is the tuple's side of the shared equi-join condition; the partitioner is
  a stable CRC-32 hash, deterministic across processes and runs (so the
  process-parallel driver and the differential tests agree on placement);
* **admission fan-out** — ``add_query`` / ``remove_query`` / ``rebalance``
  are applied to every shard, so all shards keep identical chain boundaries
  and pushed-down filters (one logical session, N replicas of its plan);
* **deterministic merge** — per-query results are merged across shards in
  ``(timestamp, left seqno, right seqno)`` order, the same order key a
  single engine delivers in, so the global output is independent of the
  shard count;
* **two drivers** — ``shard_mode="serial"`` runs the shards round-robin in
  the calling thread (still an algorithmic win: each nested-loop probe
  scans ~1/N of the resident window state), while ``shard_mode="process"``
  gives every shard a worker process fed pickled arrival batches.

Sharding is answer-preserving only for equi-key workloads over time-based
windows.  Non-equi conditions have no partition key, and a count window's
rank ("the N most recent arrivals") is defined over the *whole* stream, not
a shard's subsequence — both therefore raise :class:`ShardingError` for
``shards > 1`` (or fall back to one shard with ``on_unsupported="fallback"``).

:class:`ShardPlanner` closes the sizing loop with the statistics plane of
:mod:`repro.core.statistics`: the per-shard metrics snapshots are aggregated
into one global :class:`~repro.core.statistics.StreamStatistics` view
(counters summed, stream clock max'ed), from which the planner picks a shard
count for the measured load, detects key skew from the per-shard ingest
shares, and re-prices every shard's chain with its *own* measured statistics
via per-shard ``rebalance(params, statistics=)``.
"""

from __future__ import annotations

import itertools
import math
import zlib
from dataclasses import dataclass, replace
from typing import Iterable, Sequence

from repro.core.merge_graph import ChainCostParameters
from repro.core.statistics import StreamStatistics
from repro.engine.errors import ExecutionError, QueryError, ShardingError
from repro.engine.metrics import MetricsCollector, MetricsSnapshot
from repro.query.predicates import EquiJoinCondition, JoinCondition, Predicate
from repro.runtime.engine import EngineStats, RegisteredQuery, StreamEngine
from repro.streams.tuples import JoinedTuple, StreamTuple

__all__ = [
    "ShardConfig",
    "ShardPlan",
    "ShardPlanner",
    "ShardedStreamEngine",
    "shard_for_key",
]

def shard_for_key(key: object, shards: int) -> int:
    """Stable shard index of a join-key value.

    Uses CRC-32 over a canonical string form, so the mapping is a pure
    function of ``(key, shards)`` — identical across interpreter runs,
    worker processes and machines (unlike built-in ``hash``, which salts
    strings per process).  Keys that compare equal must co-shard (the
    partitioning invariant behind answer preservation), so numeric types
    are canonicalized first: ``True == 1 == 1.0`` all shard as the integer
    ``1``, matching ``EquiJoinCondition``'s ``==`` semantics across mixed
    int/float/bool key sources.  CRC-32 mixes well enough that random key
    domains spread evenly; determinism, the cross-type invariant and the
    frequency bound are property-tested in ``tests/test_sharding.py``.
    """
    if shards <= 1:
        return 0
    if isinstance(key, bool):
        key = int(key)
    elif isinstance(key, float) and key.is_integer():
        key = int(key)
    data = key if isinstance(key, bytes) else str(key).encode("utf-8")
    return zlib.crc32(data) % shards


@dataclass(frozen=True)
class ShardConfig:
    """Everything needed to build one shard's engine (picklable, so the
    process driver can ship it to a spawned worker)."""

    condition: JoinCondition
    left_stream: str = "A"
    right_stream: str = "B"
    batch_size: int = 32
    window_kind: str = "time"
    probe: str = "nested_loop"
    system_overhead: float = 0.0
    collect_statistics: bool = False

    def build(self) -> StreamEngine:
        return StreamEngine(
            self.condition,
            left_stream=self.left_stream,
            right_stream=self.right_stream,
            batch_size=self.batch_size,
            metrics=MetricsCollector(system_overhead=self.system_overhead),
            window_kind=self.window_kind,
            probe=self.probe,
            collect_statistics=self.collect_statistics,
        )


# ---------------------------------------------------------------------------
# Process-parallel worker
# ---------------------------------------------------------------------------
def _shard_worker(conn, config: ShardConfig) -> None:  # pragma: no cover - subprocess
    """One worker process owning one shard's engine.

    The parent speaks a small pickled protocol over ``conn``: ``("batch",
    tuples)`` messages are fire-and-forget (the pipe provides backpressure),
    every other command gets an ``("ok", payload)`` or ``("error", text)``
    reply.  Batch-processing errors are deferred and reported on the next
    replied command, so the parent never deadlocks waiting for an ack that
    a failed batch will not send.  The discovering command is still
    *executed* before the deferred error is reported — admissions fan out
    to every shard, so skipping it here would leave this shard's query set
    diverged from its siblings even though the parent raises either way.
    """
    engine = config.build()
    deferred_error: str | None = None
    while True:
        try:
            command, payload = conn.recv()
        except EOFError:
            break
        if command == "batch":
            try:
                engine.process_many(payload)
            except Exception as exc:  # noqa: BLE001 - reported to the parent
                deferred_error = f"{type(exc).__name__}: {exc}"
            continue
        if command == "close":
            break
        error = deferred_error
        deferred_error = None
        try:
            if command == "add":
                name, window, left_filter, right_filter = payload
                engine.add_query(
                    name, window, left_filter=left_filter, right_filter=right_filter
                )
                result = None
            elif command == "remove":
                result = engine.remove_query(payload)
            elif command == "results":
                result = engine.results(payload)
            elif command == "pop":
                result = engine.pop_results(payload)
            elif command == "sync":
                engine.flush()
                result = None
            elif command == "snapshot":
                engine.flush()
                result = engine.metrics.snapshot()
            elif command == "state":
                engine.flush()
                result = {
                    "stats": engine.stats,
                    "state_size": engine.state_size(),
                    "slice_count": engine.slice_count(),
                    "boundaries": engine.boundaries,
                    "disjoint": engine.states_are_disjoint(),
                }
            elif command == "rebalance":
                params, statistics = payload
                result = engine.rebalance(params, statistics=statistics)
            else:
                raise ExecutionError(f"unknown shard command {command!r}")
        except Exception as exc:  # noqa: BLE001 - reported to the parent
            detail = f"{type(exc).__name__}: {exc}"
            error = f"{error}; then {command}: {detail}" if error else detail
            result = None
        if error is not None:
            conn.send(("error", error))
        else:
            conn.send(("ok", result))
    conn.close()


# ---------------------------------------------------------------------------
# The sharded engine
# ---------------------------------------------------------------------------
class ShardedStreamEngine:
    """N key-partitioned :class:`StreamEngine` shards behind one session API.

    Parameters
    ----------
    condition:
        The shared join condition.  ``shards > 1`` requires an
        :class:`~repro.query.predicates.EquiJoinCondition` — the equi-key is
        the partition key.
    shards:
        Number of inner engines.  ``1`` degenerates to a single unsharded
        engine (any condition or window kind).
    shard_mode:
        ``"serial"`` (default) runs the shards in the calling thread —
        already a throughput win, since each nested-loop probe scans ~1/N
        of the window state; ``"process"`` starts one worker process per
        shard and ships pickled arrival batches (conditions and predicates
        must then be picklable; close the session with :meth:`close` or use
        it as a context manager).
    on_unsupported:
        ``"raise"`` (default) raises :class:`ShardingError` for workloads
        that cannot be partitioned (non-equi condition, count windows);
        ``"fallback"`` silently runs them on one shard.
    batch_size / window_kind / probe / system_overhead / collect_statistics:
        Forwarded to every shard's engine, see :class:`StreamEngine`.
    """

    def __init__(
        self,
        condition: JoinCondition,
        shards: int = 4,
        shard_mode: str = "serial",
        left_stream: str = "A",
        right_stream: str = "B",
        batch_size: int = 32,
        window_kind: str = "time",
        probe: str = "nested_loop",
        system_overhead: float = 0.0,
        collect_statistics: bool = False,
        on_unsupported: str = "raise",
    ) -> None:
        if shards < 1:
            raise ShardingError(f"shard count must be at least 1, got {shards}")
        if shard_mode not in ("serial", "process"):
            raise ShardingError(
                f"shard_mode must be 'serial' or 'process', got {shard_mode!r}"
            )
        if on_unsupported not in ("raise", "fallback"):
            raise ShardingError(
                f"on_unsupported must be 'raise' or 'fallback', got {on_unsupported!r}"
            )
        if shards > 1:
            problem = None
            if not isinstance(condition, EquiJoinCondition):
                problem = (
                    f"condition {condition.describe()!r} has no equi-key to "
                    f"partition on"
                )
            elif window_kind != "time":
                problem = (
                    "count windows rank tuples over the whole stream, not a "
                    "shard's subsequence"
                )
            if problem is not None:
                if on_unsupported == "raise":
                    raise ShardingError(
                        f"cannot run {shards} shards: {problem} (pass "
                        f"on_unsupported='fallback' to run unsharded)"
                    )
                shards = 1
        self.condition = condition
        self.shards = shards
        self.shard_mode = shard_mode
        self.left_stream = left_stream
        self.right_stream = right_stream
        self.window_kind = window_kind
        self.probe = probe
        self.batch_size = max(1, int(batch_size))
        self.config = ShardConfig(
            condition=condition,
            left_stream=left_stream,
            right_stream=right_stream,
            batch_size=self.batch_size,
            window_kind=window_kind,
            probe=probe,
            system_overhead=system_overhead,
            collect_statistics=collect_statistics,
        )
        if shards > 1:
            assert isinstance(condition, EquiJoinCondition)
            self._key_attrs = {
                left_stream: condition.left_attribute,
                right_stream: condition.right_attribute,
            }
        else:
            self._key_attrs = None
        self._queries: dict[str, RegisteredQuery] = {}
        self._arrivals = 0
        self._closed = False
        self.shard_engines: list[StreamEngine] = []
        self._workers: list = []
        self._pipes: list = []
        self._buffers: list[list[StreamTuple]] = []
        if self.shard_mode == "serial":
            self.shard_engines = [self.config.build() for _ in range(self.shards)]
        else:
            self._start_workers()

    # -- process-mode plumbing -------------------------------------------------
    def _start_workers(self) -> None:
        import multiprocessing

        for _ in range(self.shards):
            parent_conn, child_conn = multiprocessing.Pipe()
            worker = multiprocessing.Process(
                target=_shard_worker, args=(child_conn, self.config), daemon=True
            )
            worker.start()
            child_conn.close()
            self._workers.append(worker)
            self._pipes.append(parent_conn)
            self._buffers.append([])

    def _request(self, index: int, command: str, payload=None):
        pipe = self._pipes[index]
        pipe.send((command, payload))
        status, result = pipe.recv()
        if status == "error":
            raise ExecutionError(f"shard {index}: {result}")
        return result

    def _request_all(self, command: str, payload=None) -> list:
        # Send first, receive second: the shards work concurrently while the
        # parent waits, instead of serializing one round-trip per shard.
        for pipe in self._pipes:
            pipe.send((command, payload))
        results = []
        for index, pipe in enumerate(self._pipes):
            status, result = pipe.recv()
            if status == "error":
                raise ExecutionError(f"shard {index}: {result}")
            results.append(result)
        return results

    def _send_buffers(self) -> None:
        for index, buffer in enumerate(self._buffers):
            if buffer:
                self._pipes[index].send(("batch", buffer))
                self._buffers[index] = []

    def close(self) -> None:
        """Shut the worker processes down (no-op for serial sessions)."""
        if self._closed or self.shard_mode != "process":
            self._closed = True
            return
        self._closed = True
        for pipe in self._pipes:
            try:
                pipe.send(("close", None))
            except (BrokenPipeError, OSError):  # pragma: no cover - dead worker
                pass
        for worker in self._workers:
            worker.join(timeout=5)
            if worker.is_alive():  # pragma: no cover - stuck worker
                worker.terminate()
        for pipe in self._pipes:
            pipe.close()

    def __enter__(self) -> "ShardedStreamEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise ExecutionError("the sharded session has been closed")

    # -- routing ---------------------------------------------------------------
    def shard_of(self, tup: StreamTuple) -> int:
        """The shard an arrival is routed to (pure in the tuple's key)."""
        if self._key_attrs is None:
            return 0
        try:
            attribute = self._key_attrs[tup.stream]
        except KeyError:
            raise QueryError(
                f"sharded session joins streams {sorted(self._key_attrs)}, got a "
                f"tuple of stream {tup.stream!r}"
            ) from None
        return shard_for_key(tup.values[attribute], self.shards)

    # -- execution -------------------------------------------------------------
    def process(self, tup: StreamTuple) -> None:
        """Ingest one arriving tuple, routing it to its key's shard."""
        self._check_open()
        index = self.shard_of(tup)
        self._arrivals += 1
        if self.shard_mode == "serial":
            self.shard_engines[index].process(tup)
            return
        buffer = self._buffers[index]
        buffer.append(tup)
        if len(buffer) >= self.batch_size:
            self._pipes[index].send(("batch", buffer))
            self._buffers[index] = []

    def process_many(self, tuples: Iterable[StreamTuple]) -> None:
        """Ingest a sequence of timestamp-ordered arrivals."""
        for tup in tuples:
            self.process(tup)

    def flush(self) -> None:
        """Process buffered arrivals on every shard (a cross-shard barrier)."""
        self._check_open()
        if self.shard_mode == "serial":
            for engine in self.shard_engines:
                engine.flush()
            return
        self._send_buffers()
        self._request_all("sync")

    # -- admission (fans out to every shard) -----------------------------------
    def add_query(
        self,
        name: str,
        window: float,
        left_filter: Predicate | None = None,
        right_filter: Predicate | None = None,
    ) -> RegisteredQuery:
        """Admit a query on every shard (one logical admission).

        All shards run the same migration, so their chain boundaries and
        pushed-down filters stay identical — the session behaves as one
        engine whose state happens to be partitioned by key.
        """
        self._check_open()
        if name in self._queries:
            raise QueryError(f"query {name!r} is already registered")
        if self.shard_mode == "serial":
            registered = None
            for engine in self.shard_engines:
                registered = engine.add_query(
                    name, window, left_filter=left_filter, right_filter=right_filter
                )
            assert registered is not None
            query = replace(registered, registered_at=self._arrivals)
        else:
            self._send_buffers()
            self._request_all("add", (name, window, left_filter, right_filter))
            updates = {
                key: value
                for key, value in (
                    ("left_filter", left_filter),
                    ("right_filter", right_filter),
                )
                if value is not None
            }
            query = RegisteredQuery(name, window, self._arrivals, **updates)
        self._queries[name] = query
        return query

    def remove_query(self, name: str) -> list[JoinedTuple]:
        """Deregister a query on every shard; return its merged results."""
        self._check_open()
        if name not in self._queries:
            raise QueryError(f"no registered query named {name!r}")
        if self.shard_mode == "serial":
            delivered = [engine.remove_query(name) for engine in self.shard_engines]
        else:
            self._send_buffers()
            delivered = self._request_all("remove", name)
        del self._queries[name]
        return self._merge(delivered)

    # -- results ---------------------------------------------------------------
    @staticmethod
    def _merge(per_shard: Sequence[list[JoinedTuple]]) -> list[JoinedTuple]:
        """Deterministic global order: merge shard outputs by the same
        ``(timestamp, seqno, seqno)`` key a single engine delivers in."""
        return sorted(
            itertools.chain.from_iterable(per_shard),
            key=lambda j: (j.timestamp, j.left.seqno, j.right.seqno),
        )

    def results(self, name: str) -> list[JoinedTuple]:
        """A query's merged results so far (buffered arrivals included)."""
        self._check_open()
        if name not in self._queries:
            raise QueryError(f"no registered query named {name!r}")
        if self.shard_mode == "serial":
            per_shard = [engine.results(name) for engine in self.shard_engines]
        else:
            self._send_buffers()
            per_shard = self._request_all("results", name)
        return self._merge(per_shard)

    def pop_results(self, name: str) -> list[JoinedTuple]:
        """Return and clear a query's merged results."""
        self._check_open()
        if name not in self._queries:
            raise QueryError(f"no registered query named {name!r}")
        if self.shard_mode == "serial":
            per_shard = [engine.pop_results(name) for engine in self.shard_engines]
        else:
            self._send_buffers()
            per_shard = self._request_all("pop", name)
        return self._merge(per_shard)

    # -- statistics ------------------------------------------------------------
    def shard_snapshots(self) -> list[MetricsSnapshot]:
        """One metrics snapshot per shard (buffered arrivals flushed first)."""
        self._check_open()
        if self.shard_mode == "serial":
            self.flush()
            return [engine.metrics.snapshot() for engine in self.shard_engines]
        self._send_buffers()
        return self._request_all("snapshot")

    def merged_snapshot(
        self, snapshots: Sequence[MetricsSnapshot] | None = None
    ) -> MetricsSnapshot:
        """The per-shard snapshots folded into one global counter view.

        Pass ``snapshots`` (a prior :meth:`shard_snapshots` value) to reuse
        one fetch across several derived views — in process mode every
        fresh fetch is a flush plus one round-trip per worker."""
        if snapshots is None:
            snapshots = self.shard_snapshots()
        return MetricsSnapshot.aggregate(snapshots)

    def shard_statistics(
        self, snapshots: Sequence[MetricsSnapshot] | None = None
    ) -> list[StreamStatistics]:
        """Whole-session statistics estimates, one per shard (measured
        per-shard rates — unequal under key skew)."""
        if snapshots is None:
            snapshots = self.shard_snapshots()
        empty = MetricsCollector().snapshot()
        return [
            StreamStatistics.from_metrics_delta(
                snapshot.diff(empty),
                left_stream=self.left_stream,
                right_stream=self.right_stream,
            )
            for snapshot in snapshots
        ]

    def merged_statistics(
        self, snapshots: Sequence[MetricsSnapshot] | None = None
    ) -> StreamStatistics:
        """The global statistics view: per-shard observations aggregated
        before estimation (the input of a :class:`ShardPlanner`).

        Note the join factor of this view is the *within-shard* match rate —
        conditioned on key co-location, so ≈ N× the unpartitioned S1 under
        uniform keys.  That is deliberately the right quantity here: it is
        what a shard's probes actually hit, hence what prices a shard's
        chain; the arrival rates remain global (summed across shards)."""
        if snapshots is None:
            snapshots = self.shard_snapshots()
        empty = MetricsCollector().snapshot()
        return StreamStatistics.from_shard_windows(
            [(empty, snapshot) for snapshot in snapshots],
            left_stream=self.left_stream,
            right_stream=self.right_stream,
        )

    # -- re-optimization -------------------------------------------------------
    def rebalance(
        self,
        params: ChainCostParameters,
        statistics: StreamStatistics | None = None,
    ) -> tuple[float, ...]:
        """Migrate every shard's chain to the CPU-Opt boundaries.

        ``params`` and ``statistics`` describe the *global* session; each
        shard of an evenly partitioned stream sees ``1/N`` of the arrival
        rates, so both are scaled down before the per-shard search runs
        (selectivities are rate-invariant).  For skew-aware re-pricing from
        each shard's own measurements use :meth:`ShardPlanner.rebalance`.
        """
        self._check_open()
        scale = 1.0 / self.shards
        shard_params = replace(
            params,
            arrival_rate_left=params.arrival_rate_left * scale,
            arrival_rate_right=params.arrival_rate_right * scale,
        )
        shard_stats = statistics.scaled(scale) if statistics is not None else None
        return self.rebalance_shards([(shard_params, shard_stats)] * self.shards)

    def rebalance_shards(
        self,
        plans: Sequence[tuple[ChainCostParameters, StreamStatistics | None]],
    ) -> tuple[float, ...]:
        """Rebalance each shard with its own parameters/statistics.

        All shards must keep identical boundaries (the admission fan-out
        invariant), so the first shard's target is applied everywhere; the
        per-shard inputs only matter for *pricing* under skew, where the
        planner deliberately feeds every shard the same skew-aware view.
        """
        self._check_open()
        if len(plans) != self.shards:
            raise ShardingError(
                f"need one plan per shard ({self.shards}), got {len(plans)}"
            )
        boundaries: tuple[float, ...] | None = None
        if self.shard_mode == "serial":
            for engine, (params, statistics) in zip(self.shard_engines, plans):
                result = tuple(engine.rebalance(params, statistics=statistics))
                boundaries = result if boundaries is None else boundaries
        else:
            self._send_buffers()
            for index, (params, statistics) in enumerate(plans):
                self._pipes[index].send(("rebalance", (params, statistics)))
            for index in range(self.shards):
                status, result = self._pipes[index].recv()
                if status == "error":
                    raise ExecutionError(f"shard {index}: {result}")
                if boundaries is None:
                    boundaries = tuple(result)
        assert boundaries is not None
        return boundaries

    # -- introspection ---------------------------------------------------------
    def _shard_states(self) -> list[dict]:
        """Process-mode introspection: flush buffers, one round-trip each."""
        self._check_open()
        self._send_buffers()
        return self._request_all("state")

    @property
    def stats(self) -> EngineStats:
        """Aggregated session counters (migrations from the first shard —
        the fan-out keeps every shard's migration sequence identical)."""
        if self.shard_mode == "serial":
            self._check_open()
            return EngineStats.aggregate(engine.stats for engine in self.shard_engines)
        return EngineStats.aggregate(state["stats"] for state in self._shard_states())

    @property
    def boundaries(self) -> tuple[float, ...]:
        if self.shard_mode == "serial":
            self._check_open()
            return self.shard_engines[0].boundaries
        return self.shard_boundaries()[0]

    def shard_boundaries(self) -> list[tuple[float, ...]]:
        if self.shard_mode == "serial":
            self._check_open()
            return [engine.boundaries for engine in self.shard_engines]
        return [tuple(state["boundaries"]) for state in self._shard_states()]

    def queries(self) -> list[RegisteredQuery]:
        return sorted(self._queries.values(), key=lambda q: (q.window, q.name))

    def query(self, name: str) -> RegisteredQuery:
        try:
            return self._queries[name]
        except KeyError:
            raise QueryError(f"no registered query named {name!r}") from None

    def slice_count(self) -> int:
        if self.shard_mode == "serial":
            self._check_open()
            return self.shard_engines[0].slice_count()
        return int(self._shard_states()[0]["slice_count"])

    def state_size(self) -> int:
        """Total tuples resident across all shards' join states."""
        if self.shard_mode == "serial":
            self._check_open()
            return sum(engine.state_size() for engine in self.shard_engines)
        return sum(state["state_size"] for state in self._shard_states())

    def states_are_disjoint(self) -> bool:
        """Within-shard slice disjointness; cross-shard disjointness holds by
        construction (each tuple is routed to exactly one shard)."""
        if self.shard_mode == "serial":
            self._check_open()
            return all(engine.states_are_disjoint() for engine in self.shard_engines)
        return all(state["disjoint"] for state in self._shard_states())

    def shard_ingest_totals(
        self, snapshots: Sequence[MetricsSnapshot] | None = None
    ) -> list[int]:
        """Arrivals routed to each shard (the raw material of skew detection)."""
        if snapshots is None:
            snapshots = self.shard_snapshots()
        return [int(snapshot.get("ingested.total", 0.0)) for snapshot in snapshots]

    def describe(self) -> str:
        inner = (
            self.shard_engines[0].describe()
            if self.shard_mode == "serial"
            else f"{len(self._queries)} queries"
        )
        return (
            f"ShardedStreamEngine[{self.shards}x {self.shard_mode}, "
            f"key={self.condition.describe()}] each: {inner}"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"<ShardedStreamEngine shards={self.shards} mode={self.shard_mode} "
            f"queries={len(self._queries)} arrivals={self._arrivals}>"
        )


# ---------------------------------------------------------------------------
# The planner
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ShardPlan:
    """One sizing decision of the :class:`ShardPlanner` (for observability)."""

    shards: int  #: Recommended shard count for the measured load.
    total_rate: float  #: Measured arrivals/second across both streams.
    imbalance: float  #: max/mean per-shard ingest share (1.0 = perfectly even).
    skewed: bool  #: True when the imbalance exceeds the planner's threshold.
    reason: str

    def describe(self) -> str:
        skew = f"skewed {self.imbalance:.2f}x" if self.skewed else (
            f"balanced ({self.imbalance:.2f}x)"
        )
        return f"ShardPlan[{self.shards} shards for {self.total_rate:.3g}/s, {skew}]"


class ShardPlanner:
    """Statistics-driven sizing and re-pricing of a sharded session.

    Parameters
    ----------
    max_shards:
        Upper bound of :meth:`recommend` (hardware parallelism, or how many
        serial shards still pay for their routing overhead).
    target_rate_per_shard:
        Arrivals/second one shard should absorb; the recommendation is
        ``ceil(total measured rate / target)`` clamped to ``[1, max_shards]``.
        Calibrate from ``benchmarks/test_sharded_scaleout.py`` on the host.
    skew_threshold:
        max/mean per-shard ingest share above which the key distribution
        counts as skewed (hot keys concentrating on few shards).
    """

    def __init__(
        self,
        max_shards: int = 8,
        target_rate_per_shard: float = 200.0,
        skew_threshold: float = 2.0,
    ) -> None:
        if max_shards < 1:
            raise ShardingError(f"max_shards must be at least 1, got {max_shards}")
        if target_rate_per_shard <= 0:
            raise ShardingError(
                f"target_rate_per_shard must be positive, got {target_rate_per_shard}"
            )
        if skew_threshold < 1.0:
            raise ShardingError(
                f"skew_threshold must be at least 1.0, got {skew_threshold}"
            )
        self.max_shards = int(max_shards)
        self.target_rate_per_shard = float(target_rate_per_shard)
        self.skew_threshold = float(skew_threshold)

    def recommend(self, statistics: StreamStatistics) -> int:
        """Shard count for a measured (or declared) global load."""
        total = sum(statistics.arrival_rates.values())
        if total <= 0:
            return 1
        return max(1, min(self.max_shards, math.ceil(total / self.target_rate_per_shard)))

    def imbalance(self, ingest_totals: Sequence[int]) -> float:
        """max/mean per-shard ingest share; 1.0 is perfectly balanced."""
        if not ingest_totals:
            return 1.0
        mean = sum(ingest_totals) / len(ingest_totals)
        if mean <= 0:
            return 1.0
        return max(ingest_totals) / mean

    def plan(self, engine: ShardedStreamEngine) -> ShardPlan:
        """Size and skew-check a live sharded session from its merged view."""
        snapshots = engine.shard_snapshots()  # one fetch feeds every view
        statistics = engine.merged_statistics(snapshots)
        shards = self.recommend(statistics)
        imbalance = self.imbalance(engine.shard_ingest_totals(snapshots))
        skewed = imbalance > self.skew_threshold
        total = sum(statistics.arrival_rates.values())
        if skewed:
            reason = (
                f"hot keys: the busiest shard carries {imbalance:.2f}x the mean "
                f"ingest share (threshold {self.skew_threshold:g}x)"
            )
        elif shards != engine.shards:
            reason = (
                f"measured {total:.3g} arrivals/s over {engine.shards} shard(s); "
                f"{shards} shard(s) hit the {self.target_rate_per_shard:g}/s target"
            )
        else:
            reason = f"{engine.shards} shard(s) match the measured load"
        return ShardPlan(
            shards=shards,
            total_rate=total,
            imbalance=imbalance,
            skewed=skewed,
            reason=reason,
        )

    def rebalance(
        self,
        engine: ShardedStreamEngine,
        system_overhead: float = 0.5,
        tuple_size: float = 1.0,
    ) -> tuple[float, ...]:
        """Re-price every shard's chain from its own measured statistics.

        Under key skew the shards see different arrival rates; each shard is
        therefore rebalanced with its *own* whole-session estimate, falling
        back to the merged global view (scaled to one shard's share) for
        quantities a thin shard could not measure.  Requires the session to
        run with ``collect_statistics=True``.
        """
        snapshots = engine.shard_snapshots()
        merged = engine.merged_statistics(snapshots)
        fallback = merged.scaled(1.0 / engine.shards)
        plans: list[tuple[ChainCostParameters, StreamStatistics]] = []
        for stats in engine.shard_statistics(snapshots):
            if stats.join_selectivity is None:
                stats = replace(stats, join_selectivity=merged.join_selectivity)
            rates = dict(fallback.arrival_rates)
            rates.update(stats.arrival_rates)
            stats = replace(stats, arrival_rates=rates)
            params = stats.chain_parameters(
                system_overhead=system_overhead,
                tuple_size=tuple_size,
                default_rate=max(sum(rates.values()), 1e-9),
            )
            plans.append((params, stats))
        return engine.rebalance_shards(plans)
