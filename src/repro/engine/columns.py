"""Columnar (struct-of-arrays) blocks for the hot path.

The sliced joins historically kept each slice's per-stream state as a deque
of tuple objects and walked it attribute-lookup by attribute-lookup.  This
module provides :class:`ColumnarState`: the same logical container laid out
as parallel columns —

* ``timestamps`` — a ``float64`` array, used by cross-purging.  Because the
  state is timestamp-ordered, the purge predicate ``now - t >= end`` is
  monotone in ``t`` and the purge cut can be found by binary search over the
  column using the *exact* scalar expression the tuple-at-a-time path
  evaluates, so purge decisions are bit-identical.
* ``keys`` — a ``float64`` array of the join-key attribute, used by
  vectorized probing (see ``match_mask`` in :mod:`repro.query.predicates`).
  Only values whose Python comparison semantics are exactly representable in
  a double go into the column (bools, ints with ``|v| <= 2**53``, floats);
  the first value outside that set permanently invalidates the column and
  probing falls back to per-tuple checks, so correctness never depends on
  lossy conversions.
* ``refs`` — the parallel Python list of the resident
  :class:`~repro.streams.tuples.StreamTuple` payload references.  Columns
  are an internal acceleration structure: everything that leaves the state
  (purged tuples, join outputs, extracted keyed state) is materialized from
  ``refs``, and state always crosses migration boundaries as plain tuple
  lists (see ``docs/invariants.md``).

The container is deque-compatible (``append``/``popleft``/``__getitem__``/
iteration) so the per-tuple execution path and the keyed-state migration
protocol work on it unchanged; the batched join path uses the columnar
accessors (:meth:`purge_cut`, :meth:`take`, :meth:`columns`).
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

import numpy as np

__all__ = ["ColumnarState", "key_level", "INT_EXACT_MAX", "FLOAT_EXACT_MAX"]

#: Integers up to this magnitude survive float64 *arithmetic* (modular
#: matching adds two keys and reduces mod the domain) without rounding.
INT_EXACT_MAX = 2**40
#: Integers up to this magnitude are exactly representable in a float64,
#: which is all equality probing needs.
FLOAT_EXACT_MAX = 2**53

#: Initial column capacity (entries).
_MIN_CAPACITY = 16
#: Compact the consumed prefix away once it is this long and at least half
#: of the backing storage.
_COMPACT_AT = 64

_MISSING = object()


def key_level(value: Any) -> int:
    """Classify a join-key value for columnar storage.

    Returns ``0`` when the value is an int/bool small enough for exact
    float64 *arithmetic* (safe for modular matching), ``1`` when it is only
    safe for exact float64 *equality* (floats, larger ints), and ``2`` when
    it must not enter a float column at all (strings, huge ints, arbitrary
    objects) — level 2 invalidates the key column and forces per-tuple
    probing.
    """
    kind = type(value)
    if kind is bool:
        return 0
    if kind is int:
        if -INT_EXACT_MAX <= value <= INT_EXACT_MAX:
            return 0
        if -FLOAT_EXACT_MAX <= value <= FLOAT_EXACT_MAX:
            return 1
        return 2
    if kind is float:
        return 1
    return 2


class ColumnarState:
    """A timestamp-ordered slice state stored as parallel columns.

    Parameters
    ----------
    key_attribute:
        Attribute to maintain as the key column, or ``None`` when the join
        condition has no columnar form (the key column is skipped entirely
        and probing uses the per-tuple fallback).
    tuples:
        Initial resident tuples, oldest first.
    """

    __slots__ = ("key_attribute", "_refs", "_ts", "_keys", "_head", "_key_level")

    def __init__(self, key_attribute: str | None = None, tuples: Iterable[Any] = ()) -> None:
        self.key_attribute = key_attribute
        self.load(tuples)

    # -- bulk (re)build -------------------------------------------------------
    def load(self, tuples: Iterable[Any]) -> None:
        """Replace the resident set, rebuilding every column in one pass."""
        refs = list(tuples)
        self._refs = refs
        self._head = 0
        n = len(refs)
        capacity = max(_MIN_CAPACITY, n)
        ts = np.empty(capacity, dtype=np.float64)
        if n:
            ts[:n] = [ref.timestamp for ref in refs]
        self._ts = ts
        self._keys = None
        self._key_level = 0
        attribute = self.key_attribute
        if attribute is None:
            return
        level = 0
        values: list[float] = []
        for ref in refs:
            value = ref.values.get(attribute, _MISSING)
            value_level = key_level(value)
            if value_level > level:
                level = value_level
                if level >= 2:
                    return  # column stays invalid (self._keys is None)
            values.append(float(value))
        keys = np.empty(capacity, dtype=np.float64)
        if n:
            keys[:n] = values
        self._keys = keys
        self._key_level = level

    # -- deque-compatible surface --------------------------------------------
    def __len__(self) -> int:
        return len(self._refs) - self._head

    def __iter__(self) -> Iterator[Any]:
        return iter(self._refs[self._head :])

    def __getitem__(self, index: int) -> Any:
        if index < 0:
            index += len(self)
        position = self._head + index
        if position < self._head or position >= len(self._refs):
            raise IndexError("state index out of range")
        return self._refs[position]

    def append(self, ref: Any) -> None:
        refs = self._refs
        n = len(refs)
        if n == self._ts.shape[0]:
            self._ensure_room()
            refs = self._refs
            n = len(refs)
        refs.append(ref)
        self._ts[n] = ref.timestamp
        keys = self._keys
        if keys is not None:
            value = ref.values.get(self.key_attribute, _MISSING)
            value_level = key_level(value)
            if value_level >= 2:
                self._keys = None
            else:
                if value_level > self._key_level:
                    self._key_level = value_level
                keys[n] = value

    def popleft(self) -> Any:
        head = self._head
        refs = self._refs
        if head >= len(refs):
            raise IndexError("pop from an empty state")
        ref = refs[head]
        refs[head] = None
        self._head = head + 1
        self._maybe_compact()
        return ref

    # -- columnar accessors ---------------------------------------------------
    def purge_cut(self, now: float, end: float) -> int:
        """Number of head tuples with ``now - t >= end``.

        Evaluates the *exact* scalar expression of the tuple-at-a-time purge
        loop at each probe point; the predicate is monotone in ``t`` over the
        timestamp-ordered column, so a binary search finds the same cut the
        linear scan would.
        """
        head = self._head
        n = len(self._refs)
        if head >= n:
            return 0
        ts = self._ts
        if n - head <= 32:
            i = head
            while i < n and now - ts[i] >= end:
                i += 1
            return i - head
        lo, hi = head, n
        while lo < hi:
            mid = (lo + hi) // 2
            if now - ts[mid] >= end:
                lo = mid + 1
            else:
                hi = mid
        return lo - head

    def take(self, count: int) -> list[Any]:
        """Remove and return the ``count`` oldest resident tuples."""
        if count <= 0:
            return []
        head = self._head
        refs = self._refs
        taken = refs[head : head + count]
        for i in range(head, head + count):
            refs[i] = None
        self._head = head + count
        self._maybe_compact()
        return taken

    def columns(self) -> tuple[list[Any], int, Any, Any, bool]:
        """Live-region views: ``(refs, offset, timestamps, keys, int_keys)``.

        ``refs[offset + i]`` is the tuple behind row ``i`` of the views;
        ``keys`` is ``None`` when the key column is absent or was invalidated,
        and ``int_keys`` reports whether every key is arithmetic-safe
        (:data:`INT_EXACT_MAX`), which modular matching requires.
        """
        head = self._head
        n = len(self._refs)
        keys = self._keys
        return (
            self._refs,
            head,
            self._ts[head:n],
            keys[head:n] if keys is not None else None,
            self._key_level == 0,
        )

    # -- storage management ---------------------------------------------------
    def _maybe_compact(self) -> None:
        head = self._head
        if head >= _COMPACT_AT and head * 2 >= len(self._refs):
            self._compact()

    def _compact(self) -> None:
        head = self._head
        if not head:
            return
        n = len(self._refs)
        live = n - head
        del self._refs[:head]
        self._ts[:live] = self._ts[head:n].copy()
        if self._keys is not None:
            self._keys[:live] = self._keys[head:n].copy()
        self._head = 0

    def _ensure_room(self) -> None:
        n = len(self._refs)
        if n < self._ts.shape[0]:
            return
        head = self._head
        if head and head * 2 >= n:
            self._compact()
            return
        capacity = max(_MIN_CAPACITY, 2 * self._ts.shape[0])
        ts = np.empty(capacity, dtype=np.float64)
        ts[:n] = self._ts[:n]
        self._ts = ts
        if self._keys is not None:
            keys = np.empty(capacity, dtype=np.float64)
            keys[:n] = self._keys[:n]
            self._keys = keys

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<ColumnarState key={self.key_attribute!r} size={len(self)}>"
