"""Single-producer single-consumer ring over ``multiprocessing.shared_memory``.

The sharded engine's process mode historically round-tripped every batch
through a pickled pipe *call* — one send, one reply, one wakeup per batch —
which left worker processes slower than the serial baseline.
:class:`SpscRing` replaces the arrival direction with a lock-free byte ring
in shared memory: the parent pushes length-prefixed records (columnar batch
encodings, see :func:`repro.streams.tuples.encode_batch`), the worker drains
them without any syscall or copy of the parent's Python objects.

Layout
------
The segment starts with a 24-byte header of little-endian ``u64`` fields::

    [0:8)    write_pos  — monotonically increasing byte offset (producer-owned)
    [8:16)   read_pos   — monotonically increasing byte offset (consumer-owned)
    [16:24)  capacity   — size of the data region in bytes (set at creation)

followed by ``capacity`` bytes of data region.  A record is a ``u32`` length
prefix plus payload, stored contiguously: when a record does not fit in the
tail of the region, the producer writes a ``0xFFFFFFFF`` wrap marker (when
at least 4 tail bytes exist) and restarts at offset 0; the consumer skips
tails shorter than 4 bytes unconditionally.  ``capacity`` travels in the
header because the kernel may round the segment itself up to a page size,
and both sides must agree on the modulus.

Correctness model: one producer and one consumer, each caching its own
offset locally and reading the other side's from the header.  Offsets are
aligned 8-byte stores (atomic on every platform CPython runs on), the
producer publishes ``write_pos`` only after the payload bytes are in place,
and the sharded engine additionally orders ring traffic against pipe
commands (a command is only executed after the worker drained the ring), so
the ring never needs locks.  Stale reads of the opposite offset are safe:
they only under-estimate the available space/data.

Rings are picklable by segment name, so a ring created in the parent can be
handed to a worker through ``multiprocessing.Process`` args under any start
method; the attached copy initialises its local offset caches from the
header.
"""

from __future__ import annotations

import struct
from multiprocessing import shared_memory

__all__ = ["SpscRing", "DEFAULT_RING_CAPACITY"]

#: Default data-region size (bytes) of one arrival ring.
DEFAULT_RING_CAPACITY = 1 << 20

_HEADER = 24
_WRAP = 0xFFFFFFFF
_U64 = struct.Struct("<Q")
_U32 = struct.Struct("<I")


class SpscRing:
    """A lock-free SPSC byte ring in a shared-memory segment."""

    def __init__(self, capacity: int = DEFAULT_RING_CAPACITY) -> None:
        if capacity < 64:
            raise ValueError(f"ring capacity must be at least 64 bytes, got {capacity}")
        self._shm = shared_memory.SharedMemory(create=True, size=_HEADER + capacity)
        buf = self._shm.buf
        _U64.pack_into(buf, 0, 0)
        _U64.pack_into(buf, 8, 0)
        _U64.pack_into(buf, 16, capacity)
        self.capacity = capacity
        self._write = 0
        self._read = 0

    @classmethod
    def attach(cls, name: str) -> "SpscRing":
        """Attach to an existing ring by shared-memory segment name."""
        ring = cls.__new__(cls)
        ring._shm = shared_memory.SharedMemory(name=name)
        buf = ring._shm.buf
        ring.capacity = _U64.unpack_from(buf, 16)[0]
        ring._write = _U64.unpack_from(buf, 0)[0]
        ring._read = _U64.unpack_from(buf, 8)[0]
        return ring

    def __reduce__(self):
        return (SpscRing.attach, (self._shm.name,))

    @property
    def name(self) -> str:
        return self._shm.name

    # -- producer side --------------------------------------------------------
    def try_push(self, payload: bytes) -> bool:
        """Append one record; ``False`` when the ring lacks space right now.

        Raises :class:`ValueError` for records that could *never* fit, so the
        caller can fall back to its oversize transport (the pipe) instead of
        spinning forever.
        """
        buf = self._shm.buf
        capacity = self.capacity
        length = len(payload)
        needed = 4 + length
        if needed + 4 > capacity:
            raise ValueError(
                f"record of {length} bytes cannot fit a ring of {capacity} bytes"
            )
        write = self._write
        read = _U64.unpack_from(buf, 8)[0]
        free = capacity - (write - read)
        pos = write - (write // capacity) * capacity
        tail = capacity - pos
        if tail < needed:
            if tail + needed > free:
                return False
            if tail >= 4:
                _U32.pack_into(buf, _HEADER + pos, _WRAP)
            write += tail
            pos = 0
        elif needed > free:
            return False
        _U32.pack_into(buf, _HEADER + pos, length)
        start = _HEADER + pos + 4
        buf[start : start + length] = payload
        write += needed
        self._write = write
        # Publishing the offset *after* the payload is what makes the record
        # visible-atomically to the consumer.
        _U64.pack_into(buf, 0, write)
        return True

    # -- consumer side --------------------------------------------------------
    def try_pop(self) -> bytes | None:
        """Remove and return the oldest record, or ``None`` when empty."""
        buf = self._shm.buf
        capacity = self.capacity
        read = self._read
        write = _U64.unpack_from(buf, 0)[0]
        if read == write:
            return None
        pos = read - (read // capacity) * capacity
        tail = capacity - pos
        if tail < 4:
            read += tail
            pos = 0
        elif _U32.unpack_from(buf, _HEADER + pos)[0] == _WRAP:
            read += tail
            pos = 0
        length = _U32.unpack_from(buf, _HEADER + pos)[0]
        start = _HEADER + pos + 4
        payload = bytes(buf[start : start + length])
        read += 4 + length
        self._read = read
        _U64.pack_into(buf, 8, read)
        return payload

    def __len__(self) -> int:
        """Bytes currently enqueued (including framing), from either side."""
        buf = self._shm.buf
        return _U64.unpack_from(buf, 0)[0] - _U64.unpack_from(buf, 8)[0]

    # -- lifecycle ------------------------------------------------------------
    def close(self) -> None:
        """Detach this process's mapping (both sides call this)."""
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - exported memoryview still alive
            pass

    def unlink(self) -> None:
        """Destroy the segment (creator calls this exactly once)."""
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already destroyed
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<SpscRing {self._shm.name} capacity={self.capacity}>"
