"""Inter-operator queues.

Operators in a query plan are connected by FIFO queues.  The push-based
executor uses them only transiently, but the scheduled executor keeps items
buffered between operator invocations, which makes queue occupancy (the
paper's "queue memory") observable.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Iterable, Iterator, Optional

__all__ = ["OperatorQueue"]


class OperatorQueue:
    """A FIFO queue feeding one input port of one operator.

    The queue records its high-water mark so experiments can report queue
    memory in addition to state memory.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._items: deque[Any] = deque()
        self.max_size = 0
        self.total_enqueued = 0

    def push(self, item: Any) -> None:
        self._items.append(item)
        self.total_enqueued += 1
        if len(self._items) > self.max_size:
            self.max_size = len(self._items)

    def extend(self, items: Iterable[Any]) -> None:
        added = items if isinstance(items, (list, tuple)) else list(items)
        if not added:
            return
        self._items.extend(added)
        self.total_enqueued += len(added)
        if len(self._items) > self.max_size:
            self.max_size = len(self._items)

    def pop(self) -> Any:
        return self._items.popleft()

    def pop_run(self, max_items: int) -> list[Any]:
        """Pop up to ``max_items`` items from the head, preserving FIFO order.

        Batch-aware consumers (the scheduled executor, the runtime engine)
        use this to hand a whole run to
        :meth:`~repro.engine.operator.Operator.process_batch` instead of
        popping one item per invocation.
        """
        items = self._items
        count = min(max_items, len(items))
        run = [items.popleft() for _ in range(count)]
        return run

    def peek(self) -> Optional[Any]:
        return self._items[0] if self._items else None

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._items)

    def clear(self) -> None:
        self._items.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"OperatorQueue({self.name!r}, size={len(self._items)})"
