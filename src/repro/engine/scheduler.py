"""Operator-at-a-time scheduling with explicit inter-operator queues.

The CAPE prototype used by the paper runs operators under a round-robin
scheduler (Section 7.1).  :class:`ScheduledExecutor` reproduces that model:
arriving tuples are appended to the entry queues, and operators are invoked
in scheduler order, each invocation consuming a bounded batch of items from
the operator's input queues (oldest timestamp first).

This executor exposes effects that the push-based executor hides — most
importantly queue memory and the asynchronous window movement that makes the
states of independently-scheduled joins drift apart (the reason the
selection push-down strategy cannot share state, Section 3.2).
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.engine.clock import VirtualClock
from repro.engine.errors import ExecutionError, SchedulingError
from repro.engine.metrics import MetricsCollector, RunReport
from repro.engine.plan import QueryPlan
from repro.engine.queues import OperatorQueue
from repro.streams.tuples import StreamTuple

__all__ = ["RoundRobinScheduler", "ScheduledExecutor"]


class RoundRobinScheduler:
    """Cycles over operator names in a fixed order."""

    def __init__(self, operator_names: list[str]) -> None:
        if not operator_names:
            raise SchedulingError("cannot schedule an empty operator list")
        self._names = list(operator_names)
        self._next = 0

    def next_operator(self) -> str:
        name = self._names[self._next]
        self._next = (self._next + 1) % len(self._names)
        return name

    def __len__(self) -> int:
        return len(self._names)


class ScheduledExecutor:
    """Queue-based executor with a round-robin operator scheduler.

    Parameters
    ----------
    plan:
        The validated query plan.
    metrics:
        Shared metrics collector.
    invocations_per_arrival:
        Service capacity: how many operator invocations the scheduler
        performs after each arriving tuple.  Small values let queues build
        up (an overloaded system); large values approach the synchronous
        behaviour of :class:`~repro.engine.executor.ImmediateExecutor`.
    batch_size:
        Maximum number of items an operator consumes per invocation.
    """

    def __init__(
        self,
        plan: QueryPlan,
        metrics: MetricsCollector | None = None,
        invocations_per_arrival: int = 8,
        batch_size: int = 4,
        memory_sample_interval: int = 1,
    ) -> None:
        plan.validate()
        self.plan = plan
        self.metrics = metrics if metrics is not None else MetricsCollector()
        self.plan.bind_metrics(self.metrics)
        self.clock = VirtualClock()
        self.invocations_per_arrival = max(1, int(invocations_per_arrival))
        self.batch_size = max(1, int(batch_size))
        self.memory_sample_interval = max(1, int(memory_sample_interval))
        self.results: dict[str, list[Any]] = {name: [] for name in plan.output_names()}
        order = [operator.name for operator in plan.topological_order()]
        self.scheduler = RoundRobinScheduler(order)
        #: One queue per (operator, input port) pair.
        self.queues: dict[tuple[str, str], OperatorQueue] = {}
        for name, operator in plan.operators.items():
            for port in operator.input_ports:
                self.queues[(name, port)] = OperatorQueue(f"{name}.{port}")
        self._arrivals_seen = 0
        self._last_sampled_arrival = 0
        self._last_timestamp = 0.0

    # -- public API ---------------------------------------------------------------
    def run(self, tuples: Iterable[StreamTuple], strategy: str = "") -> RunReport:
        for tup in tuples:
            self.process_arrival(tup)
        self.drain()
        self._flush()
        if self._arrivals_seen and self._arrivals_seen != self._last_sampled_arrival:
            # The final state size must be sampled even when the arrival
            # count is not a multiple of the sampling stride, matching
            # ImmediateExecutor.finish — peak-memory numbers must not be
            # stride-dependent.
            self.metrics.sample_memory(
                self._last_timestamp, self.plan.total_state_size()
            )
            self._last_sampled_arrival = self._arrivals_seen
        return RunReport(
            strategy=strategy or self.plan.name,
            metrics=self.metrics,
            results=self.results,
            duration=self._last_timestamp,
        )

    def process_arrival(self, tup: StreamTuple) -> None:
        entries = self.plan.entries_for(tup.stream)
        if not entries:
            raise ExecutionError(
                f"no entry point registered for stream {tup.stream!r} in plan "
                f"{self.plan.name!r}"
            )
        self.clock.observe(tup.timestamp)
        self.metrics.record_ingest()
        for entry in entries:
            self.queues[(entry.operator, entry.port)].push(tup)
        for _ in range(self.invocations_per_arrival):
            self._invoke(self.scheduler.next_operator())
        self._arrivals_seen += 1
        self._last_timestamp = tup.timestamp
        if self._arrivals_seen % self.memory_sample_interval == 0:
            self.metrics.sample_memory(tup.timestamp, self.plan.total_state_size())
            self._last_sampled_arrival = self._arrivals_seen

    def drain(self) -> None:
        """Run the scheduler until every queue is empty."""
        idle_rounds = 0
        while idle_rounds < len(self.scheduler):
            name = self.scheduler.next_operator()
            if self._invoke(name) == 0:
                idle_rounds += 1
            else:
                idle_rounds = 0

    def queue_memory(self) -> int:
        """Total number of items currently buffered in inter-operator queues."""
        return sum(len(queue) for queue in self.queues.values())

    def max_queue_memory(self) -> int:
        return sum(queue.max_size for queue in self.queues.values())

    # -- internals ------------------------------------------------------------------
    def _invoke(self, operator_name: str) -> int:
        """Run one scheduled invocation of ``operator_name``.

        Returns the number of items consumed.  Items are consumed from the
        operator's input queues in global timestamp order to respect the
        ordering assumption of the sliced-join chain.  Consecutive items
        from the same port are handed to the operator as one
        ``process_batch`` run; because plans are acyclic an operator never
        feeds its own queues, so the port picks are identical to popping one
        item at a time.
        """
        operator = self.plan.operator(operator_name)
        ports = operator.input_ports
        consumed = 0
        if len(ports) == 1:
            # Single input port: the whole scheduling quantum is one run.
            queue = self.queues[(operator_name, ports[0])]
            run = queue.pop_run(self.batch_size)
            if run:
                consumed = len(run)
                for out_port, out_item in operator.process_batch(run, ports[0]):
                    self._route(operator_name, out_port, out_item)
            return consumed
        while consumed < self.batch_size:
            port = self._pick_port(operator_name, ports)
            if port is None:
                break
            queue = self.queues[(operator_name, port)]
            run = [queue.pop()]
            consumed += 1
            while consumed < self.batch_size and self._pick_port(operator_name, ports) == port:
                run.append(queue.pop())
                consumed += 1
            for out_port, out_item in operator.process_batch(run, port):
                self._route(operator_name, out_port, out_item)
        return consumed

    def _pick_port(self, operator_name: str, ports: tuple[str, ...]) -> str | None:
        """Choose the input port whose queue head has the oldest timestamp."""
        best_port = None
        best_key: tuple[float, int] | None = None
        for port in ports:
            queue = self.queues[(operator_name, port)]
            head = queue.peek()
            if head is None:
                continue
            timestamp = getattr(head, "timestamp", 0.0)
            seqno = getattr(head, "seqno", 0)
            key = (timestamp, seqno)
            if best_key is None or key < best_key:
                best_key = key
                best_port = port
        return best_port

    def _route(self, operator_name: str, port: str, item: Any) -> None:
        for output in self.plan.outputs_at(operator_name, port):
            self.results[output.name].append(item)
            self.metrics.record_emission(output.name)
        for edge in self.plan.downstream(operator_name, port):
            self.queues[(edge.target, edge.target_port)].push(item)

    def _flush(self) -> None:
        for operator in self.plan.topological_order():
            for port, item in operator.flush():
                self._route(operator.name, port, item)
            self.drain()
