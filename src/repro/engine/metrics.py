"""Cost accounting for the simulated DSMS.

The paper measures two resources:

* **State memory** — the number of tuples resident in join states
  (Section 7: "the number of tuples staying in the states of the joins").
* **CPU** — the count of comparisons per time unit (Section 3: value
  comparisons and timestamp comparisons are assumed equally expensive and to
  dominate CPU cost), plus a per-operator-invocation system overhead factor
  ``Csys`` (Section 5.2).

:class:`MetricsCollector` is shared by every operator in a plan and counts
each category of comparison separately so experiments can attribute cost to
probing, purging, routing, filtering, splitting and merging — exactly the
cost decomposition the paper's equations 1-3 use.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Mapping

__all__ = [
    "CostCategory",
    "MetricsCollector",
    "MetricsSnapshot",
    "StateMemorySample",
    "RunReport",
]


class CostCategory:
    """Names of the CPU cost categories used throughout the package."""

    PROBE = "probe"
    PURGE = "purge"
    ROUTE = "route"
    SELECT = "select"
    SPLIT = "split"
    UNION = "union"
    INSERT = "insert"
    OTHER = "other"

    ALL = (PROBE, PURGE, ROUTE, SELECT, SPLIT, UNION, INSERT, OTHER)


@dataclass(frozen=True, slots=True)
class StateMemorySample:
    """Snapshot of the total number of tuples resident in all join states.

    ``resident_bytes`` / ``spilled_bytes`` split the estimated footprint by
    tier for memory-budgeted sessions (PR 8): resident is what occupies
    core (hot slices plus the spill tail buffers and segment metadata),
    spilled is what lives in the disk tier's segment files.  Unbudgeted
    sessions report their whole estimate as resident.
    """

    timestamp: float
    tuples_in_state: int
    resident_bytes: float = 0.0
    spilled_bytes: float = 0.0


class MetricsSnapshot(dict):
    """A point-in-time copy of a collector's counters.

    Behaves as a flat ``{key: float}`` dictionary (so existing report code
    keeps working) and adds :meth:`diff`, which turns two snapshots taken
    around a stream window into the *windowed* counter deltas — the raw
    material for online rate/selectivity estimation
    (:mod:`repro.core.statistics`) without resetting the collector.
    """

    #: Key prefixes that denote monotone counters (safe to subtract).
    _COUNTER_PREFIXES = (
        "comparisons.",
        "invocations.",
        "emitted.",
        "ingested.",
        "observations.",
        "reshard.",
        "respawn.",
    )
    _COUNTER_KEYS = ("cpu_cost",)

    @staticmethod
    def _is_counter(key: str) -> bool:
        return key in MetricsSnapshot._COUNTER_KEYS or key.startswith(
            MetricsSnapshot._COUNTER_PREFIXES
        )

    def diff(self, earlier: "MetricsSnapshot") -> "MetricsSnapshot":
        """Counter deltas between ``earlier`` and this (later) snapshot.

        Monotone counters (comparisons, invocations, emissions, ingests,
        observations, ``cpu_cost``) are subtracted; keys absent from
        ``earlier`` count from zero.  ``service_rate`` is recomputed from the
        deltas (the windowed service rate), ``time.last`` keeps the later
        value, and ``time.elapsed`` is added as the stream-time span of the
        window.  Gauges that cannot be windowed (``memory.average``,
        ``memory.max``) keep the later snapshot's value.
        """
        delta = MetricsSnapshot()
        for key, value in self.items():
            if self._is_counter(key):
                delta[key] = value - earlier.get(key, 0.0)
            else:
                delta[key] = value
        delta["time.elapsed"] = self.get("time.last", 0.0) - earlier.get("time.last", 0.0)
        cost = delta.get("cpu_cost", 0.0)
        delta["service_rate"] = delta.get("emitted.total", 0.0) / cost if cost > 0 else 0.0
        return delta

    def rate(self, key: str, per: str = "time.elapsed") -> float:
        """A windowed rate: ``self[key] / self[per]`` guarding zero spans."""
        denominator = self.get(per, 0.0)
        if denominator <= 0:
            return 0.0
        return self.get(key, 0.0) / denominator

    #: Gauges that sum across disjoint collectors: each shard's join states
    #: are disjoint partitions of one logical session, so total resident
    #: memory is the sum of the per-shard occupancies.
    _ADDITIVE_GAUGES = (
        "memory.average",
        "memory.max",
        "memory.resident_bytes",
        "memory.spilled_bytes",
        "memory.max_resident_bytes",
    )
    #: Time-axis keys: every shard observes the same stream clock, so the
    #: aggregate keeps the furthest point reached (not the sum).
    _TIME_KEYS = ("time.last", "time.elapsed")

    @classmethod
    def aggregate(cls, snapshots: "Iterable[MetricsSnapshot]") -> "MetricsSnapshot":
        """Fold per-shard snapshots (or windowed diffs) into one global view.

        Monotone counters and memory gauges are summed — the inputs must
        come from *disjoint* collectors, one per shard of a partitioned
        session, so sums are the true global quantities.  Time-axis keys
        (``time.last``, ``time.elapsed``) take the maximum, since all shards
        run on the same stream clock; ``service_rate`` is recomputed from
        the aggregated totals.  Works on plain :meth:`MetricsCollector.snapshot`
        values and on :meth:`diff` windows alike.
        """
        merged = cls()
        for snapshot in snapshots:
            for key, value in snapshot.items():
                if cls._is_counter(key) or key in cls._ADDITIVE_GAUGES:
                    merged[key] = merged.get(key, 0.0) + value
                elif key in cls._TIME_KEYS:
                    merged[key] = max(merged.get(key, 0.0), value)
                elif key not in merged:
                    merged[key] = value
        cost = merged.get("cpu_cost", 0.0)
        merged["service_rate"] = (
            merged.get("emitted.total", 0.0) / cost if cost > 0 else 0.0
        )
        return merged


class MetricsCollector:
    """Accumulates comparison counts, invocations and state-memory samples."""

    def __init__(self, system_overhead: float = 0.0) -> None:
        #: Per-category comparison counters.
        self.comparisons: dict[str, int] = defaultdict(int)
        #: Number of operator invocations, keyed by operator name.
        self.invocations: dict[str, int] = defaultdict(int)
        #: Number of tuples emitted per named query output.
        self.emitted: dict[str, int] = defaultdict(int)
        #: Periodic samples of total join-state occupancy.
        self.memory_samples: list[StateMemorySample] = []
        #: The paper's ``Csys`` factor: CPU cost charged per operator invocation.
        self.system_overhead = float(system_overhead)
        #: Number of input tuples fed into the plan.
        self.tuples_ingested = 0
        #: Per-stream ingest counters (populated when callers pass a stream).
        self.ingested: dict[str, int] = defaultdict(int)
        #: Free-form monotone counters used by online estimators (e.g. the
        #: adaptive policy's match/opportunity and filter pass/seen counts).
        #: Observations are bookkeeping, not simulated work: they never enter
        #: ``cpu_cost``.
        self.observations: dict[str, float] = defaultdict(float)
        #: Latest stream timestamp observed (advanced by memory samples and
        #: :meth:`observe_time`); gives snapshots a stream-time axis.
        self.last_timestamp = 0.0
        #: Live reshard events recorded against this collector.
        self.reshards = 0
        #: Resident tuples moved between shards across all reshard events.
        self.reshard_tuples_moved = 0
        #: Crashed shard workers respawned (state recovered) by this session.
        self.respawns = 0

    # -- CPU accounting -----------------------------------------------------
    def count(self, category: str, amount: int = 1) -> None:
        """Record ``amount`` comparisons of the given category."""
        if amount:
            self.comparisons[category] += amount

    def record_invocation(self, operator_name: str, amount: int = 1) -> None:
        """Record ``amount`` operator invocations.

        Batched operators pass ``amount=len(batch)`` so the simulated system
        overhead (``Csys`` per invocation) stays identical to per-tuple
        execution.
        """
        if amount:
            self.invocations[operator_name] += amount

    def record_emission(self, output_name: str, amount: int = 1) -> None:
        self.emitted[output_name] += amount

    def record_ingest(self, amount: int = 1, stream: str | None = None) -> None:
        self.tuples_ingested += amount
        if stream is not None:
            self.ingested[stream] += amount

    def observe(self, name: str, amount: float = 1) -> None:
        """Record ``amount`` estimator observations (not CPU cost)."""
        if amount:
            self.observations[name] += amount

    def observe_time(self, timestamp: float) -> None:
        """Advance the stream-time axis without sampling memory."""
        if timestamp > self.last_timestamp:
            self.last_timestamp = timestamp

    def record_reshard(self, tuples_moved: int) -> None:
        """Record one live reshard and the resident tuples it repartitioned.

        Moved-tuple accounting is bookkeeping, not simulated work: like
        estimator observations it never enters ``cpu_cost`` (the wall-clock
        price of a reshard is what ``benchmarks/test_resharding.py``
        measures).  Snapshots expose the counters as ``reshard.count`` and
        ``reshard.moved`` — monotone, so windowed :meth:`MetricsSnapshot.diff`
        views report reshards per estimation window.
        """
        self.reshards += 1
        self.reshard_tuples_moved += int(tuples_moved)

    def record_respawn(self) -> None:
        """Record one crashed-worker respawn (sharded process mode).

        Snapshots expose the counter as ``respawn.count`` so callers can see
        how often a session paid the state-recovery price.
        """
        self.respawns += 1

    # -- memory accounting ----------------------------------------------------
    def sample_memory(
        self,
        timestamp: float,
        tuples_in_state: int,
        resident_bytes: float = 0.0,
        spilled_bytes: float = 0.0,
    ) -> None:
        self.memory_samples.append(
            StateMemorySample(timestamp, tuples_in_state, resident_bytes, spilled_bytes)
        )
        self.observe_time(timestamp)

    # -- derived quantities -----------------------------------------------------
    @property
    def total_comparisons(self) -> int:
        return sum(self.comparisons.values())

    @property
    def total_invocations(self) -> int:
        return sum(self.invocations.values())

    @property
    def total_emitted(self) -> int:
        return sum(self.emitted.values())

    def cpu_cost(self, system_overhead: float | None = None) -> float:
        """Total CPU cost = comparisons + Csys * operator invocations."""
        overhead = self.system_overhead if system_overhead is None else system_overhead
        return self.total_comparisons + overhead * self.total_invocations

    def average_state_memory(self) -> float:
        """Time-averaged number of tuples resident in join states."""
        if not self.memory_samples:
            return 0.0
        return sum(s.tuples_in_state for s in self.memory_samples) / len(
            self.memory_samples
        )

    def max_state_memory(self) -> int:
        if not self.memory_samples:
            return 0
        return max(s.tuples_in_state for s in self.memory_samples)

    def steady_state_memory(self, warmup_fraction: float = 0.5) -> float:
        """Average state memory over the tail of the run.

        The paper starts every experiment with empty states; the interesting
        figure is the occupancy once windows have filled, so the first
        ``warmup_fraction`` of samples is discarded.
        """
        if not self.memory_samples:
            return 0.0
        start = int(len(self.memory_samples) * warmup_fraction)
        tail = self.memory_samples[start:] or self.memory_samples
        return sum(s.tuples_in_state for s in tail) / len(tail)

    def service_rate(self, system_overhead: float | None = None) -> float:
        """Output tuples produced per unit of CPU cost.

        The paper defines service rate as total throughput divided by running
        time on fixed hardware; with a deterministic cost model the analogous
        quantity is throughput per simulated CPU cost unit.  Relative
        comparisons between strategies (which is all the paper's figures show)
        are preserved.
        """
        cost = self.cpu_cost(system_overhead)
        if cost <= 0:
            return 0.0
        return self.total_emitted / cost

    def merge(self, other: "MetricsCollector") -> None:
        """Fold another collector's counters into this one."""
        for key, value in other.comparisons.items():
            self.comparisons[key] += value
        for key, value in other.invocations.items():
            self.invocations[key] += value
        for key, value in other.emitted.items():
            self.emitted[key] += value
        for key, value in other.ingested.items():
            self.ingested[key] += value
        for key, value in other.observations.items():
            self.observations[key] += value
        self.memory_samples.extend(other.memory_samples)
        self.tuples_ingested += other.tuples_ingested
        self.reshards += other.reshards
        self.reshard_tuples_moved += other.reshard_tuples_moved
        self.respawns += other.respawns
        self.observe_time(other.last_timestamp)

    def snapshot(self) -> MetricsSnapshot:
        """Point-in-time view of every counter (a flat ``{key: float}`` map).

        Two snapshots taken around a stream window can be subtracted with
        :meth:`MetricsSnapshot.diff` to obtain windowed per-operator and
        per-stream rates without resetting this collector.
        """
        data = MetricsSnapshot(
            {
                f"comparisons.{category}": float(self.comparisons.get(category, 0))
                for category in CostCategory.ALL
            }
        )
        data["comparisons.total"] = float(self.total_comparisons)
        for name, value in self.invocations.items():
            data[f"invocations.{name}"] = float(value)
        data["invocations.total"] = float(self.total_invocations)
        for name, value in self.emitted.items():
            data[f"emitted.{name}"] = float(value)
        data["emitted.total"] = float(self.total_emitted)
        for stream, value in self.ingested.items():
            data[f"ingested.{stream}"] = float(value)
        data["ingested.total"] = float(self.tuples_ingested)
        for name, value in self.observations.items():
            data[f"observations.{name}"] = float(value)
        if self.reshards:
            data["reshard.count"] = float(self.reshards)
            data["reshard.moved"] = float(self.reshard_tuples_moved)
        if self.respawns:
            data["respawn.count"] = float(self.respawns)
        data["memory.average"] = self.average_state_memory()
        data["memory.max"] = float(self.max_state_memory())
        samples = self.memory_samples
        data["memory.resident_bytes"] = samples[-1].resident_bytes if samples else 0.0
        data["memory.spilled_bytes"] = samples[-1].spilled_bytes if samples else 0.0
        data["memory.max_resident_bytes"] = (
            max(sample.resident_bytes for sample in samples) if samples else 0.0
        )
        data["cpu_cost"] = self.cpu_cost()
        data["service_rate"] = self.service_rate()
        data["time.last"] = self.last_timestamp
        return data


@dataclass
class RunReport:
    """Result of executing one shared plan over one workload."""

    strategy: str
    metrics: MetricsCollector
    results: Mapping[str, list] = field(default_factory=dict)
    duration: float = 0.0

    @property
    def average_state_memory(self) -> float:
        return self.metrics.average_state_memory()

    @property
    def steady_state_memory(self) -> float:
        return self.metrics.steady_state_memory()

    @property
    def max_state_memory(self) -> int:
        return self.metrics.max_state_memory()

    @property
    def cpu_cost(self) -> float:
        return self.metrics.cpu_cost()

    @property
    def service_rate(self) -> float:
        return self.metrics.service_rate()

    @property
    def total_output(self) -> int:
        return sum(len(tuples) for tuples in self.results.values())

    def output_counts(self) -> dict[str, int]:
        return {name: len(tuples) for name, tuples in self.results.items()}

    def summary(self) -> dict[str, float]:
        data = self.metrics.snapshot()
        data["strategy"] = self.strategy  # type: ignore[assignment]
        data["output.total"] = float(self.total_output)
        return data


def total_output(reports: Iterable[RunReport]) -> int:
    """Sum of output tuples across several run reports."""
    return sum(report.total_output for report in reports)
