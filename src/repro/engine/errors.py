"""Exception hierarchy for the repro DSMS.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything raised by this package with a single except clause while
still being able to distinguish configuration errors from runtime errors.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SchemaError",
    "PlanError",
    "QueryError",
    "ParseError",
    "ExecutionError",
    "SchedulingError",
    "ChainError",
    "MigrationError",
    "ConfigurationError",
    "ShardingError",
]


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class SchemaError(ReproError):
    """A stream schema was malformed or an attribute reference is invalid."""


class PlanError(ReproError):
    """A query plan DAG is malformed (cycles, dangling ports, bad wiring)."""


class QueryError(ReproError):
    """A continuous-query specification is invalid."""


class ParseError(QueryError):
    """The SQL-like query text could not be parsed."""


class ExecutionError(ReproError):
    """The executor encountered an inconsistent runtime condition."""


class SchedulingError(ExecutionError):
    """The scheduler was asked to do something impossible."""


class ChainError(ReproError):
    """A sliced-join chain specification is invalid (bad slice boundaries)."""


class MigrationError(ReproError):
    """An online chain migration (split/merge) could not be applied."""


class ConfigurationError(ReproError):
    """An experiment or generator configuration is invalid."""


class ShardingError(ReproError):
    """A workload cannot be key-partitioned across engine shards.

    Hash partitioning both streams on the equi-join key is answer-preserving
    only when every query shares one equi-join condition over time-based
    windows; other workloads must run unsharded (``shards=1``)."""
