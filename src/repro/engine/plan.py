"""Query plan DAG.

A :class:`QueryPlan` wires operators together:

* **entries** map stream names to the operator input ports where newly
  arriving tuples of that stream are injected;
* **edges** connect an operator output port to a downstream operator input
  port;
* **outputs** name the operator output ports whose emissions are collected
  as the answer of a registered continuous query.

A shared plan serving N queries is a DAG with N outputs — one per query —
exactly as described in Section 2 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.engine.errors import PlanError
from repro.engine.metrics import MetricsCollector
from repro.engine.operator import Operator

__all__ = ["Edge", "Entry", "Output", "QueryPlan"]


@dataclass(frozen=True, slots=True)
class Edge:
    """A directed connection from an output port to an input port."""

    source: str
    source_port: str
    target: str
    target_port: str


@dataclass(frozen=True, slots=True)
class Entry:
    """An injection point: arriving tuples of ``stream`` enter ``(operator, port)``."""

    stream: str
    operator: str
    port: str


@dataclass(frozen=True, slots=True)
class Output:
    """A named query output fed by ``(operator, port)`` emissions."""

    name: str
    operator: str
    port: str


class QueryPlan:
    """A DAG of operators implementing one or more continuous queries."""

    def __init__(self, name: str = "plan") -> None:
        self.name = name
        self._operators: dict[str, Operator] = {}
        self._edges: list[Edge] = []
        self._entries: list[Entry] = []
        self._outputs: list[Output] = []

    # -- construction -----------------------------------------------------------
    def add_operator(self, operator: Operator) -> Operator:
        if operator.name in self._operators:
            raise PlanError(f"duplicate operator name {operator.name!r} in plan {self.name!r}")
        self._operators[operator.name] = operator
        return operator

    def add_operators(self, operators: Iterable[Operator]) -> None:
        for operator in operators:
            self.add_operator(operator)

    def connect(
        self,
        source: Operator | str,
        source_port: str,
        target: Operator | str,
        target_port: str,
    ) -> Edge:
        source_name = source.name if isinstance(source, Operator) else source
        target_name = target.name if isinstance(target, Operator) else target
        src = self.operator(source_name)
        dst = self.operator(target_name)
        src.check_port(source_port, "output")
        dst.check_port(target_port, "input")
        edge = Edge(source_name, source_port, target_name, target_port)
        self._edges.append(edge)
        return edge

    def add_entry(self, stream: str, operator: Operator | str, port: str) -> Entry:
        operator_name = operator.name if isinstance(operator, Operator) else operator
        self.operator(operator_name).check_port(port, "input")
        entry = Entry(stream, operator_name, port)
        self._entries.append(entry)
        return entry

    def add_output(self, name: str, operator: Operator | str, port: str) -> Output:
        operator_name = operator.name if isinstance(operator, Operator) else operator
        self.operator(operator_name).check_port(port, "output")
        if any(output.name == name for output in self._outputs):
            raise PlanError(f"duplicate output name {name!r} in plan {self.name!r}")
        output = Output(name, operator_name, port)
        self._outputs.append(output)
        return output

    # -- lookup -------------------------------------------------------------------
    def operator(self, name: str) -> Operator:
        try:
            return self._operators[name]
        except KeyError:
            raise PlanError(
                f"plan {self.name!r} has no operator named {name!r}; "
                f"known operators: {sorted(self._operators)}"
            ) from None

    @property
    def operators(self) -> dict[str, Operator]:
        return dict(self._operators)

    @property
    def edges(self) -> list[Edge]:
        return list(self._edges)

    @property
    def entries(self) -> list[Entry]:
        return list(self._entries)

    @property
    def outputs(self) -> list[Output]:
        return list(self._outputs)

    def output_names(self) -> list[str]:
        return [output.name for output in self._outputs]

    def entries_for(self, stream: str) -> list[Entry]:
        return [entry for entry in self._entries if entry.stream == stream]

    def downstream(self, operator: str, port: str) -> list[Edge]:
        """Edges leaving ``(operator, port)``."""
        return [
            edge
            for edge in self._edges
            if edge.source == operator and edge.source_port == port
        ]

    def upstream(self, operator: str, port: str) -> list[Edge]:
        """Edges entering ``(operator, port)``."""
        return [
            edge
            for edge in self._edges
            if edge.target == operator and edge.target_port == port
        ]

    def outputs_at(self, operator: str, port: str) -> list[Output]:
        return [
            output
            for output in self._outputs
            if output.operator == operator and output.port == port
        ]

    # -- analysis -------------------------------------------------------------------
    def bind_metrics(self, metrics: MetricsCollector) -> None:
        for operator in self._operators.values():
            operator.bind_metrics(metrics)

    def total_state_size(self) -> int:
        """Total number of tuples currently held in operator states."""
        return sum(operator.state_size() for operator in self._operators.values())

    def stateful_operators(self) -> list[Operator]:
        return [op for op in self._operators.values() if op._declares_state()]

    def topological_order(self) -> list[Operator]:
        """Operators in a topological order; raises :class:`PlanError` on cycles."""
        indegree = {name: 0 for name in self._operators}
        for edge in self._edges:
            indegree[edge.target] += 1
        ready = sorted(name for name, degree in indegree.items() if degree == 0)
        order: list[str] = []
        remaining = dict(indegree)
        while ready:
            name = ready.pop(0)
            order.append(name)
            for edge in self._edges:
                if edge.source != name:
                    continue
                remaining[edge.target] -= 1
                if remaining[edge.target] == 0:
                    ready.append(edge.target)
            ready.sort()
        if len(order) != len(self._operators):
            cyclic = sorted(set(self._operators) - set(order))
            raise PlanError(f"plan {self.name!r} contains a cycle involving {cyclic}")
        return [self._operators[name] for name in order]

    def validate(self) -> None:
        """Check structural consistency of the plan.

        Raises :class:`PlanError` when the plan has no entries, no outputs,
        contains a cycle, or has operators that are completely disconnected.
        """
        if not self._entries:
            raise PlanError(f"plan {self.name!r} has no entry points")
        if not self._outputs:
            raise PlanError(f"plan {self.name!r} has no outputs")
        self.topological_order()
        connected = set()
        for edge in self._edges:
            connected.add(edge.source)
            connected.add(edge.target)
        for entry in self._entries:
            connected.add(entry.operator)
        for output in self._outputs:
            connected.add(output.operator)
        dangling = sorted(set(self._operators) - connected)
        if dangling:
            raise PlanError(
                f"plan {self.name!r} has disconnected operators: {dangling}"
            )

    # -- presentation -----------------------------------------------------------------
    def describe(self) -> str:
        """Readable multi-line description of the plan topology."""
        lines = [f"QueryPlan {self.name!r}"]
        lines.append("  entries:")
        for entry in self._entries:
            lines.append(f"    {entry.stream} -> {entry.operator}.{entry.port}")
        lines.append("  operators:")
        for operator in self.topological_order():
            lines.append(f"    {operator.name}: {operator.describe()}")
        lines.append("  edges:")
        for edge in self._edges:
            lines.append(
                f"    {edge.source}.{edge.source_port} -> {edge.target}.{edge.target_port}"
            )
        lines.append("  outputs:")
        for output in self._outputs:
            lines.append(f"    {output.name} <- {output.operator}.{output.port}")
        return "\n".join(lines)

    def __iter__(self) -> Iterator[Operator]:
        return iter(self._operators.values())

    def __len__(self) -> int:
        return len(self._operators)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"QueryPlan({self.name!r}, operators={len(self._operators)}, "
            f"edges={len(self._edges)}, outputs={len(self._outputs)})"
        )
