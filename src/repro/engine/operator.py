"""Base class for stream operators.

Every operator in a query plan derives from :class:`Operator`.  An operator
declares its input and output ports, processes one item at a time and
returns the items it emits as ``(output_port, item)`` pairs.  The executor
is responsible for routing emissions to downstream operators according to
the plan's edges.

Operators do not talk to each other directly; they only see items and the
shared :class:`~repro.engine.metrics.MetricsCollector` used for cost
accounting.  This keeps operators independently testable.
"""

from __future__ import annotations

import itertools
from typing import Any, Iterable, Optional

from repro.engine.errors import PlanError
from repro.engine.metrics import MetricsCollector

__all__ = ["Operator", "Emission"]

#: An emission is a pair of (output port name, item).
Emission = tuple[str, Any]

_operator_counter = itertools.count()


class Operator:
    """Base class for all stream operators.

    Subclasses must define :attr:`input_ports` and :attr:`output_ports`
    (tuples of port names) and implement :meth:`process`.

    Parameters
    ----------
    name:
        Unique operator name within a plan.  When omitted a name is derived
        from the class name and a global counter.
    """

    #: Names of the input ports accepted by this operator type.
    input_ports: tuple[str, ...] = ("in",)
    #: Names of the output ports produced by this operator type.
    output_ports: tuple[str, ...] = ("out",)
    #: Whether the interleaving of items arriving from *different* upstream
    #: edges on the same input port affects this operator's output.  True for
    #: almost everything (a bag union forwards in arrival order); operators
    #: that re-order by timestamp anyway (the punctuation-driven ordered
    #: union) set this to False, which lets the batched executor keep them
    #: outside the per-tuple ingest region.
    merge_order_sensitive: bool = True
    #: Input ports whose items may be delivered, interleaved, on any single
    #: one of them: the operator decides what to do with each item from the
    #: item itself (e.g. its stream name), not from the port.  The sliced
    #: binary join declares ``("left", "right")`` — a raw arrival is captured
    #: as male/female reference copies regardless of the port — which lets
    #: the batched executor feed the head of a chain one ordered
    #: mixed-stream batch instead of one tuple at a time.
    interchangeable_input_ports: tuple[str, ...] = ()

    def __init__(self, name: Optional[str] = None) -> None:
        if name is None:
            name = f"{type(self).__name__.lower()}#{next(_operator_counter)}"
        self.name = name
        self.metrics: MetricsCollector = MetricsCollector()

    # -- wiring ---------------------------------------------------------------
    def bind_metrics(self, metrics: MetricsCollector) -> None:
        """Attach the shared metrics collector (called by the plan/executor)."""
        self.metrics = metrics

    def check_port(self, port: str, direction: str = "input") -> None:
        ports = self.input_ports if direction == "input" else self.output_ports
        if port not in ports:
            raise PlanError(
                f"operator {self.name!r} has no {direction} port {port!r}; "
                f"known ports: {list(ports)}"
            )

    # -- execution --------------------------------------------------------------
    def process(self, item: Any, port: str) -> list[Emission]:
        """Process one input item arriving on ``port``.

        Returns the emitted items as a list of ``(output_port, item)`` pairs
        in emission order.  The order is significant: the executor delivers
        emissions downstream in exactly this order, which the sliced-join
        chain relies on (purged tuples must precede the propagated probe
        tuple).
        """
        raise NotImplementedError

    def process_batch(self, items: Iterable[Any], port: str) -> list[Emission]:
        """Process a FIFO batch of items arriving on ``port``.

        Must be equivalent to concatenating ``process(item, port)`` for every
        item in order — same emissions, same metric totals.  The default does
        exactly that; hot operators override it with a vectorized loop that
        hoists attribute lookups and counts metrics in bulk.
        """
        emissions: list[Emission] = []
        for item in items:
            emissions.extend(self.process(item, port))
        return emissions

    def flush(self) -> list[Emission]:
        """Emit any items buffered inside the operator at end of stream.

        The default implementation emits nothing.  Operators that buffer
        (for example the order-preserving union) override this.
        """
        return []

    # -- introspection --------------------------------------------------------
    def state_size(self) -> int:
        """Number of tuples currently resident in this operator's state."""
        return 0

    def is_stateful(self) -> bool:
        return self.state_size() > 0 or self._declares_state()

    def _declares_state(self) -> bool:
        """Whether this operator type keeps state even when currently empty."""
        return False

    def describe(self) -> str:
        """One-line human-readable description used by plan pretty-printing."""
        return type(self).__name__

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<{type(self).__name__} {self.name!r}>"


class PassThrough(Operator):
    """Trivial operator forwarding every item unchanged (useful in tests)."""

    def process(self, item: Any, port: str) -> list[Emission]:
        self.metrics.record_invocation(self.name)
        return [("out", item)]

    def process_batch(self, items: Iterable[Any], port: str) -> list[Emission]:
        batch = list(items)
        self.metrics.record_invocation(self.name, len(batch))
        return [("out", item) for item in batch]
