"""Disk tier for cold sliced window state (memory-budgeted sessions).

The lazy-purge sliced chain stratifies its state by age: the head slice
holds the youngest tuples and sees every probe, while tail slices hold
progressively older tuples whose only traffic is the steady trickle of
cross-purged females moving down the chain plus the per-male probe of their
(usually small) matching subset.  That access skew is exactly what a
hot/cold tier exploits.  This module provides the cold half:

* :class:`SpillStore` — one per engine: a lazily-created temporary
  directory holding append-only segment files, plus the session-wide spill
  counters (segments written, slice evictions, cold rows decoded).

* :class:`SpilledState` — a drop-in replacement for one stream's slice
  state (the ``deque`` / :class:`~repro.engine.columns.ColumnarState`
  surface: ``append`` / ``popleft`` / ``__len__`` / ``__iter__`` /
  ``__getitem__``).  Resident tuples are encoded row-by-row with the PR-6
  columnar wire format (:func:`~repro.streams.tuples.encode_batch`) into
  mmap'd segment files; per segment an in-memory ``float64`` timestamp
  column drives the cross-purge cut by binary search (the *exact* scalar
  predicate of the in-core purge loop, so purge decisions are bit-identical)
  and a compact ``key -> row ordinals`` index lets equi-probes decode only
  the matching rows.  A small resident tail buffer absorbs appends and is
  flushed to a new segment once it reaches ``flush_rows``.

* :class:`SpillableJoinMixin` — the slice-operator surface: ``spill()``
  moves both stream states of a join to the disk tier, ``memory_bytes()``
  reports (resident, spilled) byte estimates, and materialization back to
  core happens through the joins' ordinary ``load_state`` (which releases a
  replaced spilled state), so every existing migration primitive — merge,
  split, keyed extract/ingest, probe switching — re-materializes spilled
  slices without new code paths (see ``docs/invariants.md``).

Everything that leaves a spilled state is decoded back to the original
:class:`~repro.streams.tuples.StreamTuple` objects (the wire format
round-trips streams, timestamps, payloads and seqnos exactly), and every
probe candidate the key index yields is re-checked with the join
condition's bound predicate, so answers never depend on the tier a slice
happens to live in.
"""

from __future__ import annotations

import mmap
import os
import shutil
import sys
import tempfile
import weakref
from array import array
from collections import defaultdict
from collections import deque as _deque
from typing import Any, Iterable, Iterator

from repro.streams.tuples import StreamTuple, decode_batch, encode_batch

__all__ = [
    "SpillStore",
    "SpilledState",
    "SpillableJoinMixin",
    "estimate_tuple_bytes",
    "parse_memory_budget",
    "DEFAULT_FLUSH_ROWS",
]

_ABSENT = object()

#: Appends buffered in core before a spilled state flushes them to a new
#: segment.  Bounds the resident overhead of one spilled slice to roughly
#: ``DEFAULT_FLUSH_ROWS * tuple_bytes`` per stream.
DEFAULT_FLUSH_ROWS = 128

#: Estimated in-core bytes per spilled row kept as segment metadata (one
#: float64 timestamp, one int64 offset, index slots).
_ROW_METADATA_BYTES = 32

_SUFFIXES = {"": 1, "K": 1024, "M": 1024**2, "G": 1024**3}


def parse_memory_budget(text: str | int | None) -> int | None:
    """Parse a ``--memory-budget`` value: plain bytes or ``64K/64M/1G``."""
    if text is None:
        return None
    if isinstance(text, int):
        budget = text
    else:
        raw = str(text).strip().upper()
        if raw.endswith("B"):
            raw = raw[:-1]
        suffix = raw[-1:] if raw[-1:] in ("K", "M", "G") else ""
        try:
            budget = int(float(raw[: len(raw) - len(suffix)] or "x")) * _SUFFIXES[suffix]
        except ValueError:
            raise ValueError(f"unparseable memory budget {text!r}") from None
    if budget <= 0:
        raise ValueError(f"memory budget must be positive, got {text!r}")
    return budget


def estimate_tuple_bytes(tup: StreamTuple) -> int:
    """Shallow in-core byte estimate of one resident stream tuple.

    Counts the tuple record, its payload dict and the payload entries
    (attribute names are usually interned and shared, so this slightly
    overestimates — the safe direction for a budget).
    """
    values = tup.values
    size = sys.getsizeof(tup) + sys.getsizeof(values) + 64  # container slot + ts/seqno
    for key, value in values.items():
        size += sys.getsizeof(key) + sys.getsizeof(value)
    return size


class SpillStore:
    """Holder of one engine's spill segments and spill counters.

    The backing directory is created lazily on the first segment write and
    removed by :meth:`close` (or by garbage collection, via a finalizer —
    segments are an execution-time cache, never a persistence layer).
    """

    def __init__(self) -> None:
        self._directory: str | None = None
        self._finalizer: weakref.finalize | None = None
        self._sequence = 0
        #: Segment files written over the store's lifetime (monotone).
        self.segments_written = 0
        #: Slices moved to the disk tier by budget enforcement (monotone).
        self.evictions = 0
        #: Rows decoded back from segment files (monotone).
        self.cold_reads = 0

    @property
    def directory(self) -> str | None:
        """The backing directory, or ``None`` before the first write."""
        return self._directory

    def _ensure_directory(self) -> str:
        if self._directory is None:
            self._directory = tempfile.mkdtemp(prefix="repro-spill-")
            self._finalizer = weakref.finalize(
                self, shutil.rmtree, self._directory, True
            )
        return self._directory

    def new_segment_path(self) -> str:
        self._sequence += 1
        self.segments_written += 1
        return os.path.join(self._ensure_directory(), f"seg-{self._sequence:08d}.bin")

    def close(self) -> None:
        """Delete every segment of this store (idempotent)."""
        if self._finalizer is not None:
            self._finalizer()
            self._finalizer = None
        self._directory = None

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"<SpillStore dir={self._directory!r} segments={self.segments_written} "
            f"cold_reads={self.cold_reads}>"
        )


class _Segment:
    """One immutable append-only run of encoded rows, oldest first.

    The file holds the concatenated per-row :func:`encode_batch` payloads;
    row boundaries, the timestamp column and the optional key index live in
    memory (a store is process-local, so nothing needs to be recoverable
    from the bytes alone).
    """

    __slots__ = ("path", "offsets", "timestamps", "index", "consumed", "_mmap", "_file")

    def __init__(
        self,
        path: str,
        rows: list[StreamTuple],
        key_attribute: str | None,
    ) -> None:
        self.path = path
        offsets = array("q", [0])
        timestamps = array("d")
        index: dict[Any, array] | None = {} if key_attribute is not None else None
        with open(path, "wb") as handle:
            position = 0
            for ordinal, tup in enumerate(rows):
                payload = encode_batch((tup,))
                handle.write(payload)
                position += len(payload)
                offsets.append(position)
                timestamps.append(tup.timestamp)
                if index is not None:
                    key = tup.values.get(key_attribute, _ABSENT)
                    try:
                        bucket = index.get(key)
                        if bucket is None:
                            index[key] = bucket = array("q")
                        bucket.append(ordinal)
                    except TypeError:
                        # Unhashable key: the whole segment falls back to
                        # full scans (probes re-check the condition anyway).
                        index = None
        self.offsets = offsets
        self.timestamps = timestamps
        self.index = index
        self.consumed = 0
        self._mmap: mmap.mmap | None = None
        self._file = None

    def __len__(self) -> int:
        return len(self.timestamps) - self.consumed

    @property
    def total_rows(self) -> int:
        return len(self.timestamps)

    def remaining_bytes(self) -> int:
        return self.offsets[-1] - self.offsets[self.consumed]

    def _view(self) -> mmap.mmap:
        if self._mmap is None:
            self._file = open(self.path, "rb")
            self._mmap = mmap.mmap(self._file.fileno(), 0, access=mmap.ACCESS_READ)
        return self._mmap

    def row(self, ordinal: int) -> StreamTuple:
        view = self._view()
        return decode_batch(view[self.offsets[ordinal] : self.offsets[ordinal + 1]])[0]

    def rows(self, start: int, stop: int) -> list[StreamTuple]:
        view = self._view()
        offsets = self.offsets
        return [
            decode_batch(view[offsets[i] : offsets[i + 1]])[0]
            for i in range(start, stop)
        ]

    def purge_cut(self, now: float, end: float) -> int:
        """Rows past the head with ``now - t >= end`` (exact scalar predicate).

        The column is timestamp-ordered, so the predicate is monotone and a
        binary search finds the same cut a linear scan would — the same
        contract as :meth:`ColumnarState.purge_cut`.
        """
        timestamps = self.timestamps
        head = self.consumed
        n = len(timestamps)
        if n - head <= 32:
            i = head
            while i < n and now - timestamps[i] >= end:
                i += 1
            return i - head
        lo, hi = head, n
        while lo < hi:
            mid = (lo + hi) // 2
            if now - timestamps[mid] >= end:
                lo = mid + 1
            else:
                hi = mid
        return lo - head

    def release(self) -> None:
        if self._mmap is not None:
            self._mmap.close()
            self._mmap = None
        if self._file is not None:
            self._file.close()
            self._file = None
        try:
            os.unlink(self.path)
        except OSError:
            pass


class SpilledState:
    """One stream's slice state living (mostly) on the disk tier.

    Deque-compatible for everything that materializes state (iteration,
    keyed extract, migrations) and offering :meth:`purge` / :meth:`probe`
    for the joins' cold hot path.  Rows keep global arrival order: segments
    oldest-first, then the resident tail buffer.
    """

    __slots__ = ("store", "key_attribute", "flush_rows", "_segments", "_tail", "_length")

    def __init__(
        self,
        store: SpillStore,
        key_attribute: str | None = None,
        tuples: Iterable[StreamTuple] = (),
        flush_rows: int = DEFAULT_FLUSH_ROWS,
    ) -> None:
        self.store = store
        self.key_attribute = key_attribute
        self.flush_rows = int(flush_rows)
        self._segments: list[_Segment] = []
        self._tail: list[StreamTuple] = list(tuples)
        self._length = len(self._tail)
        if self._tail:
            self.flush()

    # -- deque-compatible surface --------------------------------------------
    def __len__(self) -> int:
        return self._length

    def __iter__(self) -> Iterator[StreamTuple]:
        read = 0
        for segment in self._segments:
            remaining = len(segment)
            if remaining:
                read += remaining
                yield from segment.rows(segment.consumed, segment.total_rows)
        if read:
            self.store.cold_reads += read
        yield from self._tail

    def __getitem__(self, index: int) -> StreamTuple:
        if index < 0:
            index += self._length
        if not 0 <= index < self._length:
            raise IndexError("state index out of range")
        for segment in self._segments:
            remaining = len(segment)
            if index < remaining:
                self.store.cold_reads += 1
                return segment.row(segment.consumed + index)
            index -= remaining
        return self._tail[index]

    def append(self, tup: StreamTuple) -> None:
        self._tail.append(tup)
        self._length += 1
        if len(self._tail) >= self.flush_rows:
            self.flush()

    def popleft(self) -> StreamTuple:
        if not self._length:
            raise IndexError("pop from an empty state")
        self._length -= 1
        segments = self._segments
        while segments:
            segment = segments[0]
            if len(segment):
                self.store.cold_reads += 1
                tup = segment.row(segment.consumed)
                segment.consumed += 1
                if not len(segment):
                    segment.release()
                    del segments[0]
                return tup
            segment.release()
            del segments[0]
        return self._tail.pop(0)

    # -- cold hot path ---------------------------------------------------------
    def purge(self, now: float, end: float) -> tuple[list[StreamTuple], int]:
        """Expel every head tuple with ``now - t >= end``.

        Returns ``(purged tuples oldest-first, comparison count)``; the
        count reproduces the in-core scan loop exactly (one per purged head
        plus the failing check when tuples remain).
        """
        purged: list[StreamTuple] = []
        segments = self._segments
        while segments:
            segment = segments[0]
            cut = segment.purge_cut(now, end)
            if cut:
                self.store.cold_reads += cut
                purged.extend(segment.rows(segment.consumed, segment.consumed + cut))
                segment.consumed += cut
            if len(segment):
                break
            segment.release()
            del segments[0]
        else:
            tail = self._tail
            drop = 0
            while drop < len(tail) and now - tail[drop].timestamp >= end:
                drop += 1
            if drop:
                purged.extend(tail[:drop])
                del tail[:drop]
        self._length -= len(purged)
        comparisons = len(purged) + (1 if self._length else 0)
        return purged, comparisons

    def probe(self, key: Any = _ABSENT) -> list[StreamTuple]:
        """Decode the probe candidates for ``key``, in arrival order.

        With a key index (equi-joins) only the matching rows of each
        segment are decoded; ``_ABSENT`` (or an unindexable key) falls back
        to a full scan.  Candidates may over-select — the caller re-checks
        every one with the join condition's bound predicate, exactly like
        the in-core hash-bucket probe.
        """
        attribute = self.key_attribute
        use_index = attribute is not None and key is not _ABSENT
        candidates: list[StreamTuple] = []
        read = 0
        for segment in self._segments:
            if not len(segment):
                continue
            index = segment.index if use_index else None
            if index is not None:
                try:
                    bucket = index.get(key)
                except TypeError:
                    bucket = None
                    index = None
                if index is not None:
                    if bucket:
                        consumed = segment.consumed
                        live = [o for o in bucket if o >= consumed]
                        if live:
                            read += len(live)
                            candidates.extend(segment.row(o) for o in live)
                    continue
            read += len(segment)
            candidates.extend(segment.rows(segment.consumed, segment.total_rows))
        if read:
            self.store.cold_reads += read
        tail = self._tail
        if tail:
            if use_index:
                candidates.extend(
                    tup
                    for tup in tail
                    if tup.values.get(attribute, _ABSENT) == key
                )
            else:
                candidates.extend(tail)
        return candidates

    # -- tiering management ----------------------------------------------------
    def flush(self) -> None:
        """Move the resident tail buffer into a new segment file."""
        if not self._tail:
            return
        path = self.store.new_segment_path()
        self._segments.append(_Segment(path, self._tail, self.key_attribute))
        self._tail = []

    def release(self) -> None:
        """Delete every segment of this state (called when it is replaced)."""
        for segment in self._segments:
            segment.release()
        self._segments = []
        self._tail = []
        self._length = 0

    def resident_bytes(self, tuple_bytes: float) -> int:
        """In-core footprint: tail buffer plus per-row segment metadata."""
        rows = self._length - len(self._tail)
        return int(len(self._tail) * tuple_bytes) + rows * _ROW_METADATA_BYTES

    def spilled_bytes(self) -> int:
        """Bytes of live (unconsumed) rows on the disk tier."""
        return sum(segment.remaining_bytes() for segment in self._segments)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"<SpilledState rows={self._length} segments={len(self._segments)} "
            f"tail={len(self._tail)}>"
        )


class SpillableJoinMixin:
    """Tiering surface shared by the time- and count-sliced binary joins.

    Assumes the host class keeps its per-stream states in ``self._states``,
    its optional hash index in ``self._indexes`` and exposes ``condition``,
    ``left_stream`` / ``right_stream`` and ``load_state`` — the same duck
    surface :class:`~repro.operators.sliced_join.KeyedStateMixin` relies on.
    """

    def _spill_key_attrs(self) -> dict[str, str | None]:
        """Per-stream key attribute for the cold tier's segment index.

        Only a plain equi-join may use the equality index (its dict-lookup
        semantics are exactly those of the in-core hash probe); any other
        condition — including value-based ones that expose key attributes —
        gets full scans, with the bound predicate doing the matching.
        """
        from repro.query.predicates import EquiJoinCondition

        condition = self.condition
        if not isinstance(condition, EquiJoinCondition):
            return {self.left_stream: None, self.right_stream: None}
        return {
            self.left_stream: condition.left_attribute,
            self.right_stream: condition.right_attribute,
        }

    def is_spilled(self) -> bool:
        return any(
            isinstance(state, SpilledState) for state in self._states.values()
        )

    def spill(self, store: SpillStore) -> None:
        """Move both stream states of this slice to the disk tier."""
        if self.is_spilled():
            return
        attrs = self._spill_key_attrs()
        for stream in list(self._states):
            self._states[stream] = SpilledState(
                store, attrs[stream], list(self._states[stream])
            )
        if self._indexes is not None:
            # The resident hash index would pin every spilled tuple in core;
            # the spilled probe path uses the per-segment key index instead,
            # and load_state rebuilds this one on re-materialization.
            self._indexes = {
                stream: defaultdict(_deque) for stream in self._states
            }

    def spill_flush(self) -> None:
        """Flush the resident tail buffers of every spilled state."""
        for state in self._states.values():
            if isinstance(state, SpilledState):
                state.flush()

    def release_spill(self) -> None:
        """Delete this slice's segments (the slice is being discarded)."""
        for state in self._states.values():
            if isinstance(state, SpilledState):
                state.release()

    def memory_bytes(self, tuple_bytes: float) -> tuple[int, int]:
        """(resident, spilled) byte estimate of this slice's states."""
        resident = 0
        spilled = 0
        for state in self._states.values():
            if isinstance(state, SpilledState):
                resident += state.resident_bytes(tuple_bytes)
                spilled += state.spilled_bytes()
            else:
                resident += int(len(state) * tuple_bytes)
        return resident, spilled
