"""Virtual time for the simulated DSMS.

The engine is a discrete-event simulation: time advances only when a tuple
with a later timestamp is processed.  :class:`VirtualClock` tracks the
current simulated time and enforces monotonicity, which the paper's global
timestamp ordering assumption requires.
"""

from __future__ import annotations

from repro.engine.errors import ExecutionError

__all__ = ["VirtualClock"]


class VirtualClock:
    """Monotonically advancing simulated clock (seconds)."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._start = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def elapsed(self) -> float:
        """Simulated time elapsed since the clock was created or reset."""
        return self._now - self._start

    def advance_to(self, timestamp: float) -> float:
        """Advance the clock to ``timestamp``.

        Going backwards raises :class:`ExecutionError` because it would
        violate the global ordering of tuple timestamps that the sliced-join
        purging logic relies on.
        """
        if timestamp < self._now:
            raise ExecutionError(
                f"clock cannot move backwards: now={self._now}, requested={timestamp}"
            )
        self._now = float(timestamp)
        return self._now

    def observe(self, timestamp: float) -> float:
        """Advance the clock if ``timestamp`` is newer; never move backwards."""
        if timestamp > self._now:
            self._now = float(timestamp)
        return self._now

    def reset(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._start = float(start)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"VirtualClock(now={self._now:g})"
