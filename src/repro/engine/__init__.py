"""DSMS micro-kernel: operators, plans, executors and cost accounting."""

from repro.engine.clock import VirtualClock
from repro.engine.errors import (
    ChainError,
    ConfigurationError,
    ExecutionError,
    MigrationError,
    ParseError,
    PlanError,
    QueryError,
    ReproError,
    SchedulingError,
    SchemaError,
)
from repro.engine.executor import ImmediateExecutor, execute_plan
from repro.engine.metrics import CostCategory, MetricsCollector, RunReport, StateMemorySample
from repro.engine.operator import Operator, PassThrough
from repro.engine.plan import Edge, Entry, Output, QueryPlan
from repro.engine.queues import OperatorQueue
from repro.engine.scheduler import RoundRobinScheduler, ScheduledExecutor

__all__ = [
    "VirtualClock",
    "ReproError",
    "SchemaError",
    "PlanError",
    "QueryError",
    "ParseError",
    "ExecutionError",
    "SchedulingError",
    "ChainError",
    "MigrationError",
    "ConfigurationError",
    "ImmediateExecutor",
    "execute_plan",
    "CostCategory",
    "MetricsCollector",
    "RunReport",
    "StateMemorySample",
    "Operator",
    "PassThrough",
    "Edge",
    "Entry",
    "Output",
    "QueryPlan",
    "OperatorQueue",
    "RoundRobinScheduler",
    "ScheduledExecutor",
]
