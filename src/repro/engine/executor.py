"""Plan executors.

Two executors are provided:

* :class:`ImmediateExecutor` — a push-based executor that fully processes
  each arriving tuple (and every item it transitively produces) before the
  next arrival.  It is deterministic, matches the synchronous execution the
  paper's analysis assumes, and is the executor used by the correctness
  tests and the benchmark harness.

* :class:`ScheduledExecutor` (see :mod:`repro.engine.scheduler`) — an
  operator-at-a-time executor with explicit inter-operator queues and a
  round-robin scheduler, mirroring how the CAPE prototype runs operators.
  It exposes asynchronous effects such as queue build-up.

Both return a :class:`~repro.engine.metrics.RunReport`.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Iterable

from repro.engine.clock import VirtualClock
from repro.engine.errors import ExecutionError
from repro.engine.metrics import MetricsCollector, RunReport
from repro.engine.plan import QueryPlan
from repro.streams.tuples import StreamTuple

__all__ = ["ImmediateExecutor", "execute_plan"]


class ImmediateExecutor:
    """Push-based executor: every arrival is fully propagated before the next.

    Parameters
    ----------
    plan:
        The (validated) query plan to execute.
    metrics:
        Shared metrics collector; a fresh one is created when omitted.
    memory_sample_interval:
        Sample the total join-state occupancy every N arrivals.  Sampling on
        every arrival is exact but slows large runs; the default of 1 keeps
        the correctness tests exact while benchmarks pass a larger stride.
    retain_results:
        When False, query outputs are only counted (via the metrics
        collector), not stored.  Long benchmark runs producing millions of
        joined tuples use this to bound memory.
    """

    def __init__(
        self,
        plan: QueryPlan,
        metrics: MetricsCollector | None = None,
        memory_sample_interval: int = 1,
        retain_results: bool = True,
    ) -> None:
        plan.validate()
        self.plan = plan
        self.metrics = metrics if metrics is not None else MetricsCollector()
        self.plan.bind_metrics(self.metrics)
        self.clock = VirtualClock()
        self.memory_sample_interval = max(1, int(memory_sample_interval))
        self.retain_results = retain_results
        self.results: dict[str, list[Any]] = {name: [] for name in plan.output_names()}
        self._arrivals_seen = 0

    # -- public API -----------------------------------------------------------
    def run(self, tuples: Iterable[StreamTuple], strategy: str = "") -> RunReport:
        """Process all ``tuples`` (must be in timestamp order) and flush."""
        last_timestamp = 0.0
        for tup in tuples:
            self.process_arrival(tup)
            last_timestamp = tup.timestamp
        self.finish()
        return RunReport(
            strategy=strategy or self.plan.name,
            metrics=self.metrics,
            results=self.results,
            duration=last_timestamp,
        )

    def process_arrival(self, tup: StreamTuple) -> None:
        """Inject one arriving stream tuple and propagate it fully."""
        entries = self.plan.entries_for(tup.stream)
        if not entries:
            raise ExecutionError(
                f"no entry point registered for stream {tup.stream!r} in plan "
                f"{self.plan.name!r}"
            )
        self.clock.observe(tup.timestamp)
        self.metrics.record_ingest()
        work: deque[tuple[str, str, Any]] = deque()
        for entry in entries:
            work.append((entry.operator, entry.port, tup))
        self._drain(work)
        self._arrivals_seen += 1
        if self._arrivals_seen % self.memory_sample_interval == 0:
            self.metrics.sample_memory(tup.timestamp, self.plan.total_state_size())

    def finish(self) -> None:
        """Flush buffered operator state (for example pending union output)."""
        work: deque[tuple[str, str, Any]] = deque()
        for operator in self.plan.topological_order():
            for port, item in operator.flush():
                self._route(operator.name, port, item, work)
            self._drain(work)

    # -- internals ----------------------------------------------------------------
    def _drain(self, work: deque[tuple[str, str, Any]]) -> None:
        """Deliver queued work items in FIFO order until quiescent."""
        while work:
            operator_name, port, item = work.popleft()
            operator = self.plan.operator(operator_name)
            emissions = operator.process(item, port)
            for out_port, out_item in emissions:
                self._route(operator_name, out_port, out_item, work)

    def _route(
        self,
        operator_name: str,
        port: str,
        item: Any,
        work: deque[tuple[str, str, Any]],
    ) -> None:
        """Send an emitted item to downstream operators and query outputs."""
        for output in self.plan.outputs_at(operator_name, port):
            if self.retain_results:
                self.results[output.name].append(item)
            self.metrics.record_emission(output.name)
        for edge in self.plan.downstream(operator_name, port):
            work.append((edge.target, edge.target_port, item))


def execute_plan(
    plan: QueryPlan,
    tuples: Iterable[StreamTuple],
    strategy: str = "",
    system_overhead: float = 0.0,
    memory_sample_interval: int = 1,
    retain_results: bool = True,
) -> RunReport:
    """Convenience wrapper: build an :class:`ImmediateExecutor` and run it."""
    metrics = MetricsCollector(system_overhead=system_overhead)
    executor = ImmediateExecutor(
        plan,
        metrics=metrics,
        memory_sample_interval=memory_sample_interval,
        retain_results=retain_results,
    )
    return executor.run(tuples, strategy=strategy)
