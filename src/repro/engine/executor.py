"""Plan executors.

Two executors are provided:

* :class:`ImmediateExecutor` — a push-based executor that fully processes
  each arriving tuple (and every item it transitively produces) before the
  next arrival.  It is deterministic, matches the synchronous execution the
  paper's analysis assumes, and is the executor used by the correctness
  tests and the benchmark harness.  With ``batch_size > 1`` it amortizes
  per-item dispatch by grouping consecutive arrivals into batches and
  driving operators through their vectorized
  :meth:`~repro.engine.operator.Operator.process_batch` path (see
  "Batched execution" below).

* :class:`ScheduledExecutor` (see :mod:`repro.engine.scheduler`) — an
  operator-at-a-time executor with explicit inter-operator queues and a
  round-robin scheduler, mirroring how the CAPE prototype runs operators.
  It exposes asynchronous effects such as queue build-up.

Both return a :class:`~repro.engine.metrics.RunReport`.

Batched execution
-----------------
Correctness of the sliced joins depends on tuples reaching every join's
raw-input ports in global timestamp order (Lemma 1), so arrivals cannot
simply be partitioned per entry port.  The batched mode therefore splits
each plan once, at construction time, into:

* the **ingest region** — every operator that is (or feeds, directly or
  transitively) an operator with two or more *connected* input ports, whose
  cross-port input order is semantically significant (the head of a sliced
  chain, the raw joins of the baselines).  Arrivals traverse this region
  one at a time, exactly as in per-tuple mode.
* the **batchable region** — everything downstream.  Each operator there
  has a single connected input port, so FIFO per-port delivery is the only
  ordering requirement.  Items produced by the ingest phase are buffered
  per target operator, tagged with the index of the arrival that produced
  them, and drained in one topological sweep per batch with
  ``process_batch``.

Within a batch the sweep delivers every buffer sorted stably by arrival
tag, which reproduces the per-tuple arrival order at each operator.  Query
outputs are identical to per-tuple execution (the order-preserving union
releases results strictly by timestamp in both modes); the equivalence is
asserted for batch sizes {1, 7, 64} by ``tests/test_batch_execution.py``.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Any, Iterable

from repro.engine.clock import VirtualClock
from repro.engine.errors import ExecutionError
from repro.engine.metrics import MetricsCollector, RunReport
from repro.engine.plan import QueryPlan
from repro.streams.tuples import Punctuation, StreamTuple

__all__ = ["ImmediateExecutor", "execute_plan"]


class ImmediateExecutor:
    """Push-based executor: every arrival is fully propagated before the next.

    Parameters
    ----------
    plan:
        The (validated) query plan to execute.
    metrics:
        Shared metrics collector; a fresh one is created when omitted.
    memory_sample_interval:
        Sample the total join-state occupancy every N arrivals.  Sampling on
        every arrival is exact but slows large runs; the default of 1 keeps
        the correctness tests exact while benchmarks pass a larger stride.
        Regardless of the stride, the state size after the final arrival is
        always sampled (by :meth:`finish`), so peak-memory numbers are not
        stride-dependent.
    retain_results:
        When False, query outputs are only counted (via the metrics
        collector), not stored.  Long benchmark runs producing millions of
        joined tuples use this to bound memory.
    batch_size:
        Number of consecutive arrivals grouped into one execution batch.
        1 (the default) is the classic per-tuple mode; larger values enable
        the vectorized ``process_batch`` path for all operators downstream
        of the plan's ingest region.  Query outputs are independent of the
        batch size.  Memory sampling, however, happens at batch boundaries
        (state cannot be observed mid-batch), so the effective sampling
        stride becomes ``max(memory_sample_interval, batch_size)``;
        measurement runs that need fine-grained memory series should use
        per-tuple mode.
    """

    def __init__(
        self,
        plan: QueryPlan,
        metrics: MetricsCollector | None = None,
        memory_sample_interval: int = 1,
        retain_results: bool = True,
        batch_size: int = 1,
    ) -> None:
        plan.validate()
        self.plan = plan
        self.metrics = metrics if metrics is not None else MetricsCollector()
        self.plan.bind_metrics(self.metrics)
        self.clock = VirtualClock()
        self.memory_sample_interval = max(1, int(memory_sample_interval))
        self.retain_results = retain_results
        self.batch_size = max(1, int(batch_size))
        self.results: dict[str, list[Any]] = {name: [] for name in plan.output_names()}
        self._arrivals_seen = 0
        self._last_sampled_arrival = 0
        self._last_timestamp = 0.0
        self._pending: list[StreamTuple] = []
        # Precomputed lookup tables: the naive per-emission scans over the
        # plan's edge/output lists dominate the routing cost otherwise.
        # Downstream destinations carry both the real input port (used by
        # per-item delivery) and the canonical port (used by batch buffers:
        # interchangeable ports of one operator collapse onto one buffer run).
        self._operators = plan.operators
        canonical: dict[tuple[str, str], str] = {}
        for name, operator in self._operators.items():
            ports = operator.interchangeable_input_ports
            if len(ports) > 1:
                for port in ports:
                    canonical[(name, port)] = ports[0]
        self._entries: dict[str, list[tuple[str, str, str]]] = defaultdict(list)
        for entry in plan.entries:
            self._entries[entry.stream].append(
                (
                    entry.operator,
                    entry.port,
                    canonical.get((entry.operator, entry.port), entry.port),
                )
            )
        self._routes: dict[
            tuple[str, str], tuple[list[str], list[tuple[str, str, str]]]
        ] = {}
        for name, operator in self._operators.items():
            for port in operator.output_ports:
                self._routes[(name, port)] = (
                    [output.name for output in plan.outputs_at(name, port)],
                    [
                        (
                            edge.target,
                            edge.target_port,
                            canonical.get((edge.target, edge.target_port), edge.target_port),
                        )
                        for edge in plan.downstream(name, port)
                    ],
                )
        self._topo_names = [operator.name for operator in plan.topological_order()]
        self._ingest_region = self._compute_ingest_region()

    # -- public API -----------------------------------------------------------
    def run(self, tuples: Iterable[StreamTuple], strategy: str = "") -> RunReport:
        """Process all ``tuples`` (must be in timestamp order) and flush."""
        for tup in tuples:
            self.process_arrival(tup)
        self.finish()
        return RunReport(
            strategy=strategy or self.plan.name,
            metrics=self.metrics,
            results=self.results,
            duration=self._last_timestamp,
        )

    def process_arrival(self, tup: StreamTuple) -> None:
        """Inject one arriving stream tuple.

        In per-tuple mode the tuple is propagated fully before returning; in
        batched mode it is buffered and propagated when the batch fills (or
        on :meth:`finish`).
        """
        if self.batch_size == 1:
            self._process_single(tup)
            return
        self._pending.append(tup)
        if len(self._pending) >= self.batch_size:
            self._flush_pending()

    def finish(self) -> None:
        """Flush pending batches and buffered operator state (e.g. unions)."""
        self._flush_pending()
        work: deque[tuple[str, str, Any]] = deque()
        for operator in self.plan.topological_order():
            for port, item in operator.flush():
                self._route(operator.name, port, item, work)
            self._drain(work)
        if self._arrivals_seen and self._arrivals_seen != self._last_sampled_arrival:
            # The final state size must be sampled even when the arrival
            # count is not a multiple of the sampling stride.
            self._sample_memory()

    # -- per-tuple path -------------------------------------------------------
    def _process_single(self, tup: StreamTuple) -> None:
        entries = self._entries_for(tup.stream)
        self.clock.observe(tup.timestamp)
        self.metrics.record_ingest()
        work: deque[tuple[str, str, Any]] = deque()
        for operator_name, port, _canon in entries:
            work.append((operator_name, port, tup))
        self._drain(work)
        self._arrivals_seen += 1
        self._last_timestamp = tup.timestamp
        if self._arrivals_seen % self.memory_sample_interval == 0:
            self._sample_memory()

    def _drain(self, work: deque[tuple[str, str, Any]]) -> None:
        """Deliver queued work items in FIFO order until quiescent."""
        operators = self._operators
        while work:
            operator_name, port, item = work.popleft()
            emissions = operators[operator_name].process(item, port)
            for out_port, out_item in emissions:
                self._route(operator_name, out_port, out_item, work)

    def _route(
        self,
        operator_name: str,
        port: str,
        item: Any,
        work: deque[tuple[str, str, Any]],
    ) -> None:
        """Send an emitted item to downstream operators and query outputs."""
        output_names, downstream = self._routes[(operator_name, port)]
        for output_name in output_names:
            if self.retain_results:
                self.results[output_name].append(item)
            self.metrics.record_emission(output_name)
        for target, target_port, _canon in downstream:
            work.append((target, target_port, item))

    # -- batched path ---------------------------------------------------------
    def _compute_ingest_region(self) -> frozenset[str]:
        """Operators whose cross-port input order must follow arrival order.

        An operator with two or more *connected* input ports (edges or
        entries) consumes an interleaved sequence whose order is
        semantically significant — e.g. the head of a sliced chain must see
        left/right arrivals in global timestamp order.  The same holds for a
        merge-order-sensitive operator fed by several upstream edges on one
        port (a bag union forwards in arrival order).  Such operators stay
        per-item.  An operator whose multiple connected ports are declared
        *interchangeable* (the sliced binary join) can itself be batched —
        its buffer runs collapse onto one canonical port, preserving global
        item order — but its upstream operators must still run per-item so
        that buffered items carry exact per-arrival tags.  In both cases
        every operator that can reach an order-sensitive one is processed
        per-item during the ingest phase; the region is ancestor-closed, so
        the batched sweep never routes an item back into it.
        """
        connected: dict[str, set[str]] = {name: set() for name in self._operators}
        fan_in: dict[tuple[str, str], int] = defaultdict(int)
        for edge in self.plan.edges:
            connected[edge.target].add(edge.target_port)
            fan_in[(edge.target, edge.target_port)] += 1
        for entry in self.plan.entries:
            connected[entry.operator].add(entry.port)
            fan_in[(entry.operator, entry.port)] += 1
        sensitive: set[str] = set()
        #: Operators whose buffered input must carry exact per-arrival tags.
        tag_exact: set[str] = set()
        for name, ports in connected.items():
            if len(ports) > 1:
                tag_exact.add(name)
                if not set(ports) <= set(
                    self._operators[name].interchangeable_input_ports
                ):
                    sensitive.add(name)
        sensitive.update(
            name
            for (name, _port), count in fan_in.items()
            if count > 1 and self._operators[name].merge_order_sensitive
        )
        tag_exact.update(sensitive)
        successors: dict[str, set[str]] = defaultdict(set)
        for edge in self.plan.edges:
            successors[edge.source].add(edge.target)
        # Walk the topological order backwards: a single reverse sweep marks
        # every strict ancestor of an order-sensitive or tag-exact operator.
        region = set(sensitive)
        for name in reversed(self._topo_names):
            if name not in region and any(
                successor in region or successor in tag_exact
                for successor in successors[name]
            ):
                region.add(name)
        return frozenset(region)

    def _flush_pending(self) -> None:
        """Propagate the buffered arrival batch through the plan."""
        batch = self._pending
        if not batch:
            return
        self._pending = []
        operators = self._operators
        ingest_region = self._ingest_region
        metrics = self.metrics
        observe = self.clock.observe
        #: Per-operator buffers of (arrival_tag, input_port, item).
        buffers: dict[str, list[tuple[int, str, Any]]] = defaultdict(list)
        work: deque[tuple[str, str, Any]] = deque()
        if not ingest_region:
            # Fast path: the whole plan is batchable (e.g. a state-slice
            # chain, whose head accepts mixed-stream arrival batches), so
            # arrivals buffer straight into the sweep and the per-tuple
            # clock/ingest bookkeeping is hoisted out of the loop (entry
            # lookups are memoized per stream — a batch holds two streams).
            entries_by_stream: dict[str, list[tuple[str, str, str]]] = {}
            for tag, tup in enumerate(batch):
                entries = entries_by_stream.get(tup.stream)
                if entries is None:
                    entries = entries_by_stream[tup.stream] = self._entries_for(
                        tup.stream
                    )
                for operator_name, _port, canon_port in entries:
                    buffers[operator_name].append((tag, canon_port, tup))
            observe(batch[-1].timestamp)
            metrics.record_ingest(len(batch))
            self._finish_batch(batch, buffers)
            return
        for tag, tup in enumerate(batch):
            entries = self._entries_for(tup.stream)
            observe(tup.timestamp)
            metrics.record_ingest()
            for operator_name, port, canon_port in entries:
                if operator_name in ingest_region:
                    work.append((operator_name, port, tup))
                else:
                    buffers[operator_name].append((tag, canon_port, tup))
            # Ingest phase: per-item propagation through the order-sensitive
            # region; emissions leaving the region are buffered for the sweep.
            while work:
                operator_name, port, item = work.popleft()
                emissions = operators[operator_name].process(item, port)
                for out_port, out_item in emissions:
                    output_names, downstream = self._routes[(operator_name, out_port)]
                    for output_name in output_names:
                        if self.retain_results:
                            self.results[output_name].append(out_item)
                        metrics.record_emission(output_name)
                    for target, target_port, canon_port in downstream:
                        if target in ingest_region:
                            work.append((target, target_port, out_item))
                        else:
                            buffers[target].append((tag, canon_port, out_item))
        self._finish_batch(batch, buffers)

    def _entries_for(self, stream: str) -> list[tuple[str, str, str]]:
        entries = self._entries.get(stream)
        if not entries:
            raise ExecutionError(
                f"no entry point registered for stream {stream!r} in plan "
                f"{self.plan.name!r}"
            )
        return entries

    def _finish_batch(
        self,
        batch: list[StreamTuple],
        buffers: dict[str, list[tuple[int, str, Any]]],
    ) -> None:
        """Sweep the batch buffers and do the per-batch bookkeeping."""
        self._arrivals_seen += len(batch)
        self._last_timestamp = batch[-1].timestamp
        self._sweep(buffers)
        interval = self.memory_sample_interval
        if self._arrivals_seen // interval > self._last_sampled_arrival // interval:
            self._sample_memory()

    def _sweep(self, buffers: dict[str, list[tuple[int, str, Any]]]) -> None:
        """Drain the batch buffers in one topological pass with process_batch.

        Operators outside the ingest region have exactly one connected input
        port (or interchangeable ports collapsed onto one), so after the
        stable per-tag sort each buffer is consumed as a handful of maximal
        same-port runs (usually one).

        Punctuations sort *after* data items of the same arrival tag.  A
        punctuation asserts that every result with a smaller timestamp has
        already been emitted; inside one sweep a join's punctuations reach a
        union directly while the corresponding results take an extra hop
        through a router, so delivering them in raw buffer order would let a
        punctuation overtake the results it vouches for and prematurely
        advance the union's release threshold.  Because arrivals are
        timestamp-ordered, every result a batch's punctuations cover is
        produced within the same batch, so the data-before-punctuation
        delivery restores the punctuation contract exactly.
        """
        operators = self._operators
        routes = self._routes
        metrics = self.metrics
        retain = self.retain_results
        results = self.results
        for operator_name in self._topo_names:
            pending = buffers.get(operator_name)
            if not pending:
                continue
            buffers[operator_name] = []
            pending.sort(
                key=lambda entry: (entry[0], isinstance(entry[2], Punctuation))
            )
            operator = operators[operator_name]
            index = 0
            total = len(pending)
            while index < total:
                port = pending[index][1]
                run: list[Any] = []
                while index < total and pending[index][1] == port:
                    run.append(pending[index][2])
                    index += 1
                run_tag = pending[index - 1][0]
                emissions = operator.process_batch(run, port)
                for out_port, out_item in emissions:
                    output_names, downstream = routes[(operator_name, out_port)]
                    for output_name in output_names:
                        if retain:
                            results[output_name].append(out_item)
                        metrics.record_emission(output_name)
                    for target, _target_port, canon_port in downstream:
                        buffers[target].append((run_tag, canon_port, out_item))

    # -- shared internals -----------------------------------------------------
    def _sample_memory(self) -> None:
        self.metrics.sample_memory(self._last_timestamp, self.plan.total_state_size())
        self._last_sampled_arrival = self._arrivals_seen


def execute_plan(
    plan: QueryPlan,
    tuples: Iterable[StreamTuple],
    strategy: str = "",
    system_overhead: float = 0.0,
    memory_sample_interval: int = 1,
    retain_results: bool = True,
    batch_size: int = 1,
) -> RunReport:
    """Convenience wrapper: build an :class:`ImmediateExecutor` and run it."""
    metrics = MetricsCollector(system_overhead=system_overhead)
    executor = ImmediateExecutor(
        plan,
        metrics=metrics,
        memory_sample_interval=memory_sample_interval,
        retain_results=retain_results,
        batch_size=batch_size,
    )
    return executor.run(tuples, strategy=strategy)
