"""Unit tests for the query plan DAG and the two executors."""

from __future__ import annotations

import pytest

from repro.engine.errors import ExecutionError, PlanError
from repro.engine.executor import ImmediateExecutor, execute_plan
from repro.engine.metrics import MetricsCollector
from repro.engine.operator import PassThrough
from repro.engine.plan import QueryPlan
from repro.engine.scheduler import RoundRobinScheduler, ScheduledExecutor
from repro.operators.join import SlidingWindowJoin
from repro.operators.selection import Selection
from repro.query.predicates import CrossProductCondition, attribute_gt
from repro.streams.generators import generate_join_workload
from repro.streams.tuples import make_tuple
from tests.conftest import joined_keys, regular_join_reference


def simple_plan() -> QueryPlan:
    """A -> selection -> join <- B, output 'Q'."""
    plan = QueryPlan("simple")
    selection = Selection(attribute_gt("value", 0.25, 0.75), name="sel")
    join = SlidingWindowJoin(2.0, 2.0, CrossProductCondition(), name="join")
    plan.add_operators([selection, join])
    plan.add_entry("A", selection, "in")
    plan.add_entry("B", join, "right")
    plan.connect(selection, "out", join, "left")
    plan.add_output("Q", join, "output")
    return plan


class TestQueryPlan:
    def test_duplicate_operator_name_rejected(self):
        plan = QueryPlan()
        plan.add_operator(PassThrough(name="x"))
        with pytest.raises(PlanError):
            plan.add_operator(PassThrough(name="x"))

    def test_connect_validates_ports(self):
        plan = QueryPlan()
        a = plan.add_operator(PassThrough(name="a"))
        b = plan.add_operator(PassThrough(name="b"))
        with pytest.raises(PlanError):
            plan.connect(a, "bogus", b, "in")
        with pytest.raises(PlanError):
            plan.connect(a, "out", b, "bogus")
        plan.connect(a, "out", b, "in")
        assert len(plan.edges) == 1

    def test_unknown_operator_lookup(self):
        plan = QueryPlan("p")
        with pytest.raises(PlanError):
            plan.operator("missing")

    def test_duplicate_output_name_rejected(self):
        plan = QueryPlan()
        a = plan.add_operator(PassThrough(name="a"))
        plan.add_output("Q", a, "out")
        with pytest.raises(PlanError):
            plan.add_output("Q", a, "out")

    def test_validate_requires_entries_and_outputs(self):
        plan = QueryPlan()
        a = plan.add_operator(PassThrough(name="a"))
        with pytest.raises(PlanError):
            plan.validate()
        plan.add_entry("A", a, "in")
        with pytest.raises(PlanError):
            plan.validate()
        plan.add_output("Q", a, "out")
        plan.validate()

    def test_validate_detects_cycles(self):
        plan = QueryPlan()
        a = plan.add_operator(PassThrough(name="a"))
        b = plan.add_operator(PassThrough(name="b"))
        plan.connect(a, "out", b, "in")
        plan.connect(b, "out", a, "in")
        plan.add_entry("A", a, "in")
        plan.add_output("Q", b, "out")
        with pytest.raises(PlanError):
            plan.validate()

    def test_validate_detects_disconnected_operators(self):
        plan = QueryPlan()
        a = plan.add_operator(PassThrough(name="a"))
        plan.add_operator(PassThrough(name="orphan"))
        plan.add_entry("A", a, "in")
        plan.add_output("Q", a, "out")
        with pytest.raises(PlanError):
            plan.validate()

    def test_topological_order(self):
        plan = simple_plan()
        order = [op.name for op in plan.topological_order()]
        assert order.index("sel") < order.index("join")

    def test_describe_mentions_every_operator(self):
        plan = simple_plan()
        text = plan.describe()
        assert "sel" in text and "join" in text and "Q" in text

    def test_downstream_upstream_and_outputs_at(self):
        plan = simple_plan()
        assert len(plan.downstream("sel", "out")) == 1
        assert len(plan.upstream("join", "left")) == 1
        assert plan.outputs_at("join", "output")[0].name == "Q"

    def test_total_state_size_counts_join_states(self):
        plan = simple_plan()
        executor = ImmediateExecutor(plan)
        executor.process_arrival(make_tuple("A", 0.0, value=0.9))
        executor.process_arrival(make_tuple("B", 0.5, value=0.9))
        assert plan.total_state_size() == 2


class TestImmediateExecutor:
    def test_unknown_stream_raises(self):
        executor = ImmediateExecutor(simple_plan())
        with pytest.raises(ExecutionError):
            executor.process_arrival(make_tuple("C", 0.0, value=1.0))

    def test_selection_filters_left_inputs(self):
        plan = simple_plan()
        tuples = [
            make_tuple("A", 0.0, value=0.1),   # filtered out
            make_tuple("A", 0.5, value=0.9),   # kept
            make_tuple("B", 1.0, value=0.5),   # joins with the kept tuple only
        ]
        report = execute_plan(plan, tuples)
        assert len(report.results["Q"]) == 1

    def test_results_match_reference_join(self, small_stream_data):
        plan = simple_plan()
        report = execute_plan(plan, small_stream_data.tuples)
        reference = regular_join_reference(
            small_stream_data.tuples,
            window=2.0,
            condition=CrossProductCondition(),
            left_filter=attribute_gt("value", 0.25),
        )
        assert joined_keys(report.results["Q"]) == reference

    def test_retain_results_false_only_counts(self, small_stream_data):
        plan = simple_plan()
        report = execute_plan(plan, small_stream_data.tuples, retain_results=False)
        assert report.results["Q"] == []
        assert report.metrics.emitted["Q"] > 0

    def test_memory_sampling_interval(self, small_stream_data):
        plan = simple_plan()
        dense = execute_plan(plan, small_stream_data.tuples, memory_sample_interval=1)
        sparse = execute_plan(simple_plan(), small_stream_data.tuples, memory_sample_interval=10)
        assert len(dense.metrics.memory_samples) > len(sparse.metrics.memory_samples)

    def test_duration_is_last_timestamp(self):
        plan = simple_plan()
        tuples = [make_tuple("A", 0.5, value=0.9), make_tuple("B", 2.25, value=0.9)]
        report = execute_plan(plan, tuples)
        assert report.duration == pytest.approx(2.25)


class TestScheduledExecutor:
    def test_round_robin_scheduler_cycles(self):
        scheduler = RoundRobinScheduler(["a", "b", "c"])
        picks = [scheduler.next_operator() for _ in range(5)]
        assert picks == ["a", "b", "c", "a", "b"]

    def test_scheduled_matches_immediate_results(self):
        data = generate_join_workload(rate_a=10, rate_b=10, duration=5.0, seed=4)
        immediate = execute_plan(simple_plan(), data.tuples)
        scheduled = ScheduledExecutor(
            simple_plan(), invocations_per_arrival=2, batch_size=1
        ).run(data.tuples)
        assert joined_keys(scheduled.results["Q"]) == joined_keys(immediate.results["Q"])

    def test_queue_memory_tracks_buffered_items(self):
        data = generate_join_workload(rate_a=20, rate_b=20, duration=3.0, seed=4)
        executor = ScheduledExecutor(
            simple_plan(), invocations_per_arrival=1, batch_size=1
        )
        executor.run(data.tuples)
        assert executor.max_queue_memory() > 0
        assert executor.queue_memory() == 0  # fully drained at the end

    def test_metrics_shared_with_plan(self):
        metrics = MetricsCollector()
        executor = ScheduledExecutor(simple_plan(), metrics=metrics)
        data = generate_join_workload(rate_a=10, rate_b=10, duration=2.0, seed=4)
        executor.run(data.tuples)
        assert metrics.total_comparisons > 0
