"""Unit tests for the regular sliding-window join operators (Figure 1)."""

from __future__ import annotations

import pytest

from repro.engine.errors import PlanError
from repro.engine.metrics import CostCategory, MetricsCollector
from repro.operators.join import OneWayWindowJoin, SlidingWindowJoin
from repro.query.predicates import (
    CrossProductCondition,
    EquiJoinCondition,
    selectivity_join,
)
from repro.streams.generators import generate_join_workload
from repro.streams.tuples import Punctuation, make_tuple
from tests.conftest import joined_keys, regular_join_reference


def run_binary_join(join: SlidingWindowJoin, tuples) -> list:
    results = []
    for tup in tuples:
        port = "left" if tup.stream == "A" else "right"
        results.extend(item for _, item in join.process(tup, port))
    return results


class TestOneWayWindowJoin:
    def test_joins_within_window_only(self):
        join = OneWayWindowJoin(window=2.0, condition=CrossProductCondition(), name="j")
        join.process(make_tuple("A", 0.0, k=1), "left")
        join.process(make_tuple("A", 1.5, k=2), "left")
        out = join.process(make_tuple("B", 2.5, k=1), "right")
        # The tuple at t=0 has age 2.5 >= 2 and is purged before probing.
        assert len(out) == 1
        assert out[0][1].left.timestamp == 1.5

    def test_right_tuples_are_not_stored(self):
        join = OneWayWindowJoin(window=5.0, condition=CrossProductCondition(), name="j")
        join.process(make_tuple("B", 0.0, k=1), "right")
        assert join.state_size() == 0
        join.process(make_tuple("A", 1.0, k=1), "left")
        assert join.state_size() == 1

    def test_join_condition_is_applied(self):
        join = OneWayWindowJoin(window=5.0, condition=EquiJoinCondition("k", "k"), name="j")
        join.process(make_tuple("A", 0.0, k=1), "left")
        join.process(make_tuple("A", 0.5, k=2), "left")
        out = join.process(make_tuple("B", 1.0, k=2), "right")
        assert len(out) == 1
        assert out[0][1].left["k"] == 2

    def test_window_must_be_positive(self):
        with pytest.raises(PlanError):
            OneWayWindowJoin(window=0, condition=CrossProductCondition())

    def test_punctuations_are_ignored(self):
        join = OneWayWindowJoin(window=1.0, condition=CrossProductCondition(), name="j")
        assert join.process(Punctuation(1.0), "left") == []


class TestSlidingWindowJoin:
    def test_matches_reference_implementation(self):
        data = generate_join_workload(rate_a=20, rate_b=20, duration=5.0, seed=3)
        condition = selectivity_join(0.3)
        join = SlidingWindowJoin(1.5, 1.5, condition, name="j")
        results = run_binary_join(join, data.tuples)
        reference = regular_join_reference(data.tuples, window=1.5, condition=condition)
        assert joined_keys(results) == reference

    def test_asymmetric_windows(self):
        condition = CrossProductCondition()
        join = SlidingWindowJoin(window_left=1.0, window_right=3.0, condition=condition)
        join.process(make_tuple("A", 0.0, k=1), "left")
        join.process(make_tuple("B", 0.0, k=1), "right")
        # A tuple arriving at t=2: the B window (3s) still holds the old B
        # tuple; the A window (1s) no longer admits the old A tuple when a B
        # tuple arrives at t=2.
        out_a = join.process(make_tuple("A", 2.0, k=1), "left")
        assert len(out_a) == 1
        out_b = join.process(make_tuple("B", 2.0, k=1), "right")
        assert {item.left.timestamp for _, item in out_b} == {2.0}

    def test_hash_and_nested_loop_agree(self):
        data = generate_join_workload(rate_a=25, rate_b=25, duration=4.0, seed=8)
        condition = EquiJoinCondition("join_key", "join_key", key_domain=50)
        nested = SlidingWindowJoin(2.0, 2.0, condition, algorithm="nested_loop")
        hashed = SlidingWindowJoin(2.0, 2.0, condition, algorithm="hash")
        assert joined_keys(run_binary_join(nested, data.tuples)) == joined_keys(
            run_binary_join(hashed, data.tuples)
        )

    def test_hash_probing_is_cheaper(self):
        data = generate_join_workload(rate_a=25, rate_b=25, duration=4.0, seed=8)
        condition = EquiJoinCondition("join_key", "join_key", key_domain=50)
        nested_metrics, hashed_metrics = MetricsCollector(), MetricsCollector()
        nested = SlidingWindowJoin(2.0, 2.0, condition, algorithm="nested_loop")
        nested.bind_metrics(nested_metrics)
        hashed = SlidingWindowJoin(2.0, 2.0, condition, algorithm="hash")
        hashed.bind_metrics(hashed_metrics)
        run_binary_join(nested, data.tuples)
        run_binary_join(hashed, data.tuples)
        assert (
            hashed_metrics.comparisons[CostCategory.PROBE]
            < nested_metrics.comparisons[CostCategory.PROBE]
        )

    def test_hash_requires_equi_join(self):
        with pytest.raises(PlanError):
            SlidingWindowJoin(1.0, 1.0, CrossProductCondition(), algorithm="hash")

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(PlanError):
            SlidingWindowJoin(1.0, 1.0, CrossProductCondition(), algorithm="sort-merge")

    def test_state_size_counts_both_sides(self):
        join = SlidingWindowJoin(10.0, 10.0, CrossProductCondition())
        join.process(make_tuple("A", 0.0, k=1), "left")
        join.process(make_tuple("B", 1.0, k=1), "right")
        join.process(make_tuple("B", 2.0, k=1), "right")
        assert join.state_size() == 3
        assert len(join.left_state_tuples()) == 1
        assert len(join.right_state_tuples()) == 2

    def test_cross_purge_removes_expired_tuples(self):
        join = SlidingWindowJoin(1.0, 1.0, CrossProductCondition())
        join.process(make_tuple("A", 0.0, k=1), "left")
        join.process(make_tuple("B", 5.0, k=1), "right")
        assert join.left_state_tuples() == []

    def test_probe_cost_counted_per_candidate(self):
        metrics = MetricsCollector()
        join = SlidingWindowJoin(10.0, 10.0, CrossProductCondition())
        join.bind_metrics(metrics)
        for i in range(3):
            join.process(make_tuple("A", float(i), k=i), "left")
        join.process(make_tuple("B", 3.0, k=0), "right")
        assert metrics.comparisons[CostCategory.PROBE] == 3

    def test_unexpected_port_rejected(self):
        join = SlidingWindowJoin(1.0, 1.0, CrossProductCondition())
        with pytest.raises(PlanError):
            join.process(make_tuple("A", 0.0, k=1), "middle")
