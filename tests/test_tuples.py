"""Unit tests for the stream tuple model."""

from __future__ import annotations

import pytest

from repro.streams.tuples import (
    FEMALE,
    MALE,
    JoinedTuple,
    Punctuation,
    RefTuple,
    StreamTuple,
    make_tuple,
)


class TestStreamTuple:
    def test_make_tuple_sets_stream_and_timestamp(self):
        tup = make_tuple("A", 3.5, x=1, y="v")
        assert tup.stream == "A"
        assert tup.timestamp == 3.5
        assert tup["x"] == 1
        assert tup["y"] == "v"

    def test_getitem_missing_attribute_raises(self):
        tup = make_tuple("A", 0.0, x=1)
        with pytest.raises(KeyError):
            tup["missing"]

    def test_get_with_default(self):
        tup = make_tuple("A", 0.0, x=1)
        assert tup.get("x") == 1
        assert tup.get("missing", 42) == 42

    def test_sequence_numbers_are_unique_and_increasing(self):
        first = make_tuple("A", 0.0, x=1)
        second = make_tuple("A", 0.0, x=1)
        assert second.seqno > first.seqno

    def test_with_values_returns_modified_copy(self):
        tup = make_tuple("A", 1.0, x=1, y=2)
        updated = tup.with_values(y=99)
        assert updated["y"] == 99
        assert updated["x"] == 1
        assert tup["y"] == 2
        assert updated.timestamp == tup.timestamp

    def test_age_relative_to_clock(self):
        tup = make_tuple("A", 2.0, x=1)
        assert tup.age(5.0) == pytest.approx(3.0)

    def test_attributes_iterates_names(self):
        tup = make_tuple("A", 0.0, x=1, y=2)
        assert sorted(tup.attributes()) == ["x", "y"]


class TestJoinedTuple:
    def test_timestamp_is_max_of_components(self):
        a = make_tuple("A", 1.0, x=1)
        b = make_tuple("B", 4.0, x=1)
        assert JoinedTuple(a, b).timestamp == 4.0
        assert JoinedTuple(b, a).timestamp == 4.0

    def test_values_are_prefixed_with_stream_names(self):
        a = make_tuple("A", 1.0, x=1)
        b = make_tuple("B", 2.0, y=7)
        joined = JoinedTuple(a, b)
        assert joined.values == {"A.x": 1, "B.y": 7}

    def test_key_identifies_the_pair(self):
        a = make_tuple("A", 1.0, x=1)
        b = make_tuple("B", 2.0, x=1)
        assert JoinedTuple(a, b).key() == (a.seqno, b.seqno)


class TestRefTuple:
    def test_male_and_female_share_the_base_tuple(self):
        base = make_tuple("A", 1.0, x=1)
        male = RefTuple(base, MALE)
        female = RefTuple(base, FEMALE)
        assert male.is_male() and not male.is_female()
        assert female.is_female() and not female.is_male()
        assert male.base is female.base
        assert male.timestamp == female.timestamp == 1.0
        assert male.stream == "A"
        assert male.seqno == base.seqno

    def test_values_delegate_to_base(self):
        base = make_tuple("A", 1.0, x=5)
        assert RefTuple(base, MALE).values["x"] == 5


class TestPunctuation:
    def test_carries_timestamp_and_source(self):
        punct = Punctuation(4.5, source="slice_2")
        assert punct.timestamp == 4.5
        assert punct.source == "slice_2"

    def test_default_source_is_empty(self):
        assert Punctuation(1.0).source == ""
