"""Unit tests for predicates and join conditions."""

from __future__ import annotations

import random

import pytest

from repro.engine.errors import QueryError
from repro.query.predicates import (
    AndPredicate,
    ComparisonPredicate,
    CrossProductCondition,
    EquiJoinCondition,
    FalsePredicate,
    FunctionPredicate,
    ModularMatchCondition,
    NotPredicate,
    OrPredicate,
    ThetaJoinCondition,
    TruePredicate,
    attribute_eq,
    attribute_ge,
    attribute_gt,
    attribute_le,
    attribute_lt,
    conjunction,
    disjunction,
    selectivity_filter,
    selectivity_join,
)
from repro.streams.tuples import make_tuple


def tup(**values):
    return make_tuple("A", 0.0, **values)


class TestComparisonPredicates:
    def test_operators(self):
        assert attribute_gt("x", 5).matches(tup(x=6))
        assert not attribute_gt("x", 5).matches(tup(x=5))
        assert attribute_ge("x", 5).matches(tup(x=5))
        assert attribute_lt("x", 5).matches(tup(x=4))
        assert attribute_le("x", 5).matches(tup(x=5))
        assert attribute_eq("x", 5).matches(tup(x=5))
        assert not attribute_eq("x", 5).matches(tup(x=6))

    def test_unknown_operator_rejected(self):
        with pytest.raises(QueryError):
            ComparisonPredicate("x", "~", 1)

    def test_selectivity_bounds_enforced(self):
        with pytest.raises(QueryError):
            ComparisonPredicate("x", ">", 1, selectivity=1.5)

    def test_describe_is_readable(self):
        assert attribute_gt("value", 10).describe() == "value > 10"

    def test_callable_protocol(self):
        predicate = attribute_gt("x", 1)
        assert predicate(tup(x=2))


class TestTrivialAndComposite:
    def test_true_false(self):
        assert TruePredicate().matches(tup(x=0))
        assert not FalsePredicate().matches(tup(x=0))
        assert TruePredicate().selectivity == 1.0
        assert FalsePredicate().selectivity == 0.0

    def test_and_or_not(self):
        p = attribute_gt("x", 0) & attribute_lt("x", 10)
        assert p.matches(tup(x=5))
        assert not p.matches(tup(x=20))
        q = attribute_lt("x", 0) | attribute_gt("x", 10)
        assert q.matches(tup(x=20))
        assert not q.matches(tup(x=5))
        assert (~attribute_gt("x", 0)).matches(tup(x=-1))

    def test_composite_selectivities(self):
        a = attribute_gt("x", 0, selectivity=0.5)
        b = attribute_gt("y", 0, selectivity=0.4)
        assert AndPredicate((a, b)).selectivity == pytest.approx(0.2)
        assert OrPredicate((a, b)).selectivity == pytest.approx(0.7)
        assert NotPredicate(a).selectivity == pytest.approx(0.5)

    def test_empty_composites_rejected(self):
        with pytest.raises(QueryError):
            AndPredicate(())
        with pytest.raises(QueryError):
            OrPredicate(())

    def test_function_predicate(self):
        predicate = FunctionPredicate(lambda t: t["x"] % 2 == 0, selectivity=0.5, label="even")
        assert predicate.matches(tup(x=4))
        assert not predicate.matches(tup(x=3))
        assert predicate.describe() == "even"


class TestDisjunctionConjunctionHelpers:
    def test_disjunction_simplifications(self):
        a = attribute_gt("x", 0, selectivity=0.5)
        assert isinstance(disjunction([]), TruePredicate)
        assert isinstance(disjunction([TruePredicate(), a]), TruePredicate)
        assert isinstance(disjunction([FalsePredicate()]), FalsePredicate)
        assert disjunction([a]) is a
        assert disjunction([FalsePredicate(), a]) is a

    def test_disjunction_deduplicates_identical_predicates(self):
        a = selectivity_filter(0.5)
        b = selectivity_filter(0.5)
        combined = disjunction([a, b])
        assert combined.describe() == a.describe()

    def test_conjunction_simplifications(self):
        a = attribute_gt("x", 0, selectivity=0.5)
        assert isinstance(conjunction([]), TruePredicate)
        assert isinstance(conjunction([FalsePredicate(), a]), FalsePredicate)
        assert conjunction([TruePredicate(), a]) is a
        assert conjunction([a, a]) is a

    def test_selectivity_filter_extremes(self):
        assert isinstance(selectivity_filter(1.0), TruePredicate)
        assert isinstance(selectivity_filter(0.0), FalsePredicate)
        with pytest.raises(QueryError):
            selectivity_filter(1.5)

    def test_selectivity_filter_empirical(self):
        predicate = selectivity_filter(0.3)
        rng = random.Random(0)
        hits = sum(predicate.matches(tup(value=rng.random())) for _ in range(5000))
        assert hits / 5000 == pytest.approx(0.3, abs=0.03)


class TestJoinConditions:
    def test_cross_product_matches_everything(self):
        condition = CrossProductCondition()
        assert condition.matches(tup(x=1), tup(x=2))
        assert condition.selectivity == 1.0

    def test_equi_join(self):
        condition = EquiJoinCondition("k", "k", key_domain=10)
        assert condition.matches(tup(k=3), tup(k=3))
        assert not condition.matches(tup(k=3), tup(k=4))
        assert condition.selectivity == pytest.approx(0.1)

    def test_equi_join_domain_validation(self):
        with pytest.raises(QueryError):
            EquiJoinCondition("k", "k", key_domain=0)

    def test_modular_match_selectivity_is_exact(self):
        condition = ModularMatchCondition(threshold=250, domain=1000)
        rng = random.Random(7)
        trials = 4000
        hits = sum(
            condition.matches(
                tup(join_key=rng.randrange(1000)), tup(join_key=rng.randrange(1000))
            )
            for _ in range(trials)
        )
        assert condition.selectivity == pytest.approx(0.25)
        assert hits / trials == pytest.approx(0.25, abs=0.03)

    def test_modular_match_validation(self):
        with pytest.raises(QueryError):
            ModularMatchCondition(threshold=-1, domain=100)
        with pytest.raises(QueryError):
            ModularMatchCondition(threshold=10, domain=0)

    def test_theta_join(self):
        condition = ThetaJoinCondition(lambda a, b: a["x"] < b["x"], selectivity=0.5)
        assert condition.matches(tup(x=1), tup(x=2))
        assert not condition.matches(tup(x=2), tup(x=1))

    def test_selectivity_join_factory(self):
        assert isinstance(selectivity_join(1.0), CrossProductCondition)
        condition = selectivity_join(0.4)
        assert condition.selectivity == pytest.approx(0.4)
        with pytest.raises(QueryError):
            selectivity_join(0.0)
        with pytest.raises(QueryError):
            selectivity_join(0.0001, domain=100)
