"""Tests for the runtime sliced-join chain: the equivalence theorems and the
online migration primitives (Sections 4, 5.1 and 5.3)."""

from __future__ import annotations

import pytest

from repro.core.chain import SlicedJoinChain
from repro.engine.errors import ChainError, MigrationError
from repro.engine.metrics import MetricsCollector
from repro.operators.join import SlidingWindowJoin
from repro.query.predicates import CrossProductCondition, EquiJoinCondition, selectivity_join
from repro.streams.generators import generate_join_workload
from tests.conftest import joined_keys, regular_join_reference


def chain_results(chain: SlicedJoinChain, tuples):
    return [joined for _, joined in chain.process_all(tuples)]


def reference(tuples, window, condition):
    return regular_join_reference(tuples, window=window, condition=condition)


class TestChainConstruction:
    def test_boundaries_must_start_at_zero(self):
        with pytest.raises(ChainError):
            SlicedJoinChain([1.0, 2.0], CrossProductCondition())

    def test_boundaries_must_increase(self):
        with pytest.raises(ChainError):
            SlicedJoinChain([0.0, 2.0, 2.0], CrossProductCondition())

    def test_needs_at_least_one_slice(self):
        with pytest.raises(ChainError):
            SlicedJoinChain([0.0], CrossProductCondition())

    def test_describe_lists_every_slice(self):
        chain = SlicedJoinChain([0.0, 1.0, 2.5], CrossProductCondition())
        assert chain.slice_count() == 2
        assert "[0, 1)" in chain.describe()
        assert chain.boundaries == [0.0, 1.0, 2.5]


class TestTheorem2Equivalence:
    """The union of a chain's slice outputs equals the regular window join."""

    @pytest.mark.parametrize(
        "boundaries",
        [
            [0.0, 2.0],
            [0.0, 1.0, 2.0],
            [0.0, 0.5, 1.0, 1.5, 2.0],
            [0.0, 0.3, 2.0],
        ],
    )
    def test_equivalence_for_various_slicings(self, boundaries):
        data = generate_join_workload(rate_a=18, rate_b=18, duration=5.0, seed=13)
        condition = EquiJoinCondition("join_key", "join_key", key_domain=15)
        chain = SlicedJoinChain(boundaries, condition)
        results = chain_results(chain, data.tuples)
        assert joined_keys(results) == reference(data.tuples, boundaries[-1], condition)

    def test_no_duplicate_results_across_slices(self):
        data = generate_join_workload(rate_a=15, rate_b=15, duration=5.0, seed=21)
        chain = SlicedJoinChain([0.0, 0.7, 1.4, 2.1], CrossProductCondition())
        keys = joined_keys(chain_results(chain, data.tuples))
        assert len(keys) == len(set(keys))

    def test_states_are_disjoint_throughout_execution(self):
        data = generate_join_workload(rate_a=15, rate_b=15, duration=4.0, seed=2)
        chain = SlicedJoinChain([0.0, 0.5, 1.5, 3.0], CrossProductCondition())
        for tup in data.tuples:
            chain.process(tup)
            assert chain.states_are_disjoint()

    def test_chain_results_tagged_with_producing_slice(self):
        data = generate_join_workload(rate_a=15, rate_b=15, duration=4.0, seed=2)
        chain = SlicedJoinChain([0.0, 1.0, 2.0], CrossProductCondition())
        for index, joined in chain.process_all(data.tuples):
            gap = abs(joined.left.timestamp - joined.right.timestamp)
            slice_spec = chain.joins[index].slice
            assert slice_spec.start <= gap < slice_spec.end


class TestTheorem3Memory:
    """Total chain state equals the state of the single largest-window join."""

    def test_total_state_matches_single_join(self):
        data = generate_join_workload(rate_a=20, rate_b=20, duration=5.0, seed=17)
        condition = CrossProductCondition()
        chain = SlicedJoinChain([0.0, 0.5, 1.0, 2.0], condition)
        single = SlidingWindowJoin(2.0, 2.0, condition)
        for tup in data.tuples:
            chain.process(tup)
            port = "left" if tup.stream == "A" else "right"
            single.process(tup, port)
            assert chain.state_size() == single.state_size()

    def test_per_query_answers_from_prefixes(self):
        data = generate_join_workload(rate_a=15, rate_b=15, duration=5.0, seed=19)
        condition = selectivity_join(0.5)
        chain = SlicedJoinChain([0.0, 0.8, 1.6], condition)
        results = chain.process_all(data.tuples)
        for window in (0.8, 1.6):
            answer = chain.results_for_window(results, window)
            assert joined_keys(answer) == reference(data.tuples, window, condition)


class TestOnlineMigration:
    def test_split_requires_interior_boundary(self):
        chain = SlicedJoinChain([0.0, 2.0], CrossProductCondition())
        with pytest.raises(MigrationError):
            chain.split_slice(0, 2.5)
        with pytest.raises(MigrationError):
            chain.split_slice(5, 1.0)

    def test_merge_requires_a_successor(self):
        chain = SlicedJoinChain([0.0, 1.0, 2.0], CrossProductCondition())
        with pytest.raises(MigrationError):
            chain.merge_slices(1)

    def test_split_mid_stream_preserves_results(self):
        data = generate_join_workload(rate_a=18, rate_b=18, duration=5.0, seed=23)
        condition = CrossProductCondition()
        chain = SlicedJoinChain([0.0, 2.0], condition)
        results = []
        for index, tup in enumerate(data.tuples):
            if index == len(data.tuples) // 2:
                chain.split_slice(0, 1.0)
                assert chain.boundaries == [0.0, 1.0, 2.0]
            results.extend(joined for _, joined in chain.process(tup))
        assert joined_keys(results) == reference(data.tuples, 2.0, condition)

    def test_merge_mid_stream_preserves_results(self):
        data = generate_join_workload(rate_a=18, rate_b=18, duration=5.0, seed=29)
        condition = CrossProductCondition()
        chain = SlicedJoinChain([0.0, 0.7, 2.0], condition)
        results = []
        for index, tup in enumerate(data.tuples):
            if index == len(data.tuples) // 3:
                chain.merge_slices(0)
                assert chain.boundaries == [0.0, 2.0]
            results.extend(joined for _, joined in chain.process(tup))
        assert joined_keys(results) == reference(data.tuples, 2.0, condition)

    def test_split_then_merge_roundtrip(self):
        data = generate_join_workload(rate_a=15, rate_b=15, duration=6.0, seed=31)
        condition = CrossProductCondition()
        chain = SlicedJoinChain([0.0, 1.5], condition)
        results = []
        third = len(data.tuples) // 3
        for index, tup in enumerate(data.tuples):
            if index == third:
                chain.split_slice(0, 0.5)
            if index == 2 * third:
                chain.merge_slices(0)
            results.extend(joined for _, joined in chain.process(tup))
        assert joined_keys(results) == reference(data.tuples, 1.5, condition)
        assert chain.states_are_disjoint()

    def test_metrics_are_shared_across_slices(self):
        metrics = MetricsCollector()
        chain = SlicedJoinChain([0.0, 1.0, 2.0], CrossProductCondition(), metrics=metrics)
        data = generate_join_workload(rate_a=10, rate_b=10, duration=3.0, seed=37)
        chain.process_all(data.tuples)
        assert metrics.total_comparisons > 0
