"""Tests for the key-partitioned sharded runtime.

Four properties carry the sharded engine's correctness story:

1. **Partitioner** — :func:`shard_for_key` is a pure, stable function of
   ``(key, shards)`` (identical across runs and processes) and spreads
   random key domains evenly (frequency bound, hypothesis-checked).
2. **Equivalence** — a sharded session delivers exactly the single-engine
   answer under admissions, removals, selections and rebalances (the
   per-scenario differential family lives in ``test_fuzz_differential.py``;
   scripted cases here keep the failure surface small).
3. **Fan-out invariants** — every shard keeps identical chain boundaries
   and the merged output is in deterministic global order.
4. **Planner** — the merged statistics view sizes N with the measured
   load, and hot keys are reported as skew.

The optional process-parallel driver is smoke-tested for correctness
against the serial driver (same protocol, same merged answers).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.merge_graph import ChainCostParameters
from repro.core.statistics import StreamStatistics
from repro.engine.errors import ShardingError
from repro.engine.metrics import MetricsCollector, MetricsSnapshot
from repro.query.predicates import (
    CrossProductCondition,
    EquiJoinCondition,
    attribute_gt,
)
from repro.runtime import (
    ShardedStreamEngine,
    ShardPlanner,
    StreamEngine,
    shard_for_key,
)
from repro.streams.generators import generate_join_workload
from repro.streams.tuples import make_tuple

CONDITION = EquiJoinCondition("join_key", "join_key", key_domain=24)
DATA = generate_join_workload(rate_a=30, rate_b=30, duration=6.0, seed=21)


def pairs(results):
    return sorted((j.left.seqno, j.right.seqno) for j in results)


# ---------------------------------------------------------------------------
# 1. The partitioner
# ---------------------------------------------------------------------------
def test_partitioner_is_deterministic_and_in_range():
    for key in (0, 7, -3, 10**12, "sensor-17", 3.25, b"raw"):
        for shards in (1, 2, 3, 8):
            first = shard_for_key(key, shards)
            assert 0 <= first < shards
            assert all(shard_for_key(key, shards) == first for _ in range(3))


def test_partitioner_single_shard_short_circuits():
    assert shard_for_key("anything", 1) == 0
    assert shard_for_key(42, 0) == 0  # degenerate counts clamp to shard 0


def test_partitioner_cross_type_equal_keys_co_shard():
    """Keys that compare equal must land on the same shard.

    EquiJoinCondition matches `1 == 1.0 == True`, so mixed int/float/bool
    key sources must co-shard or the sharded engine would silently drop
    pairs the single engine emits."""
    for shards in (2, 3, 4, 8):
        for key in (0, 1, 7, 10**9):
            expected = shard_for_key(key, shards)
            assert shard_for_key(float(key), shards) == expected
        assert shard_for_key(True, shards) == shard_for_key(1, shards)
        assert shard_for_key(False, shards) == shard_for_key(0, shards)
    # non-integral floats keep their own identity
    assert shard_for_key(1.5, 4) == shard_for_key(1.5, 4)


def test_sharded_joins_mixed_int_float_keys():
    single = StreamEngine(CONDITION, batch_size=4)
    sharded = ShardedStreamEngine(CONDITION, shards=4, batch_size=4)
    arrivals = [
        make_tuple("A", 0.1, join_key=1, value=0.5),
        make_tuple("B", 0.2, join_key=1.0, value=0.5),
        make_tuple("A", 0.3, join_key=2.0, value=0.5),
        make_tuple("B", 0.4, join_key=2, value=0.5),
    ]
    for engine in (single, sharded):
        engine.add_query("Q", 5.0)
        engine.process_many(arrivals)
        engine.flush()
    assert pairs(sharded.results("Q")) == pairs(single.results("Q"))
    assert len(sharded.results("Q")) == 2


@settings(max_examples=60, deadline=None)
@given(
    shards=st.integers(min_value=2, max_value=8),
    seed=st.integers(min_value=0, max_value=2**31),
    consecutive=st.booleans(),
)
def test_partitioner_balance_bound(shards, seed, consecutive):
    """Frequency bound over random key domains.

    With ≥64 distinct keys per shard, no shard's share may exceed 1.6× the
    mean (CRC-32 measures ≤1.25× empirically; the slack keeps the property
    robust without weakening it into vacuity).
    """
    import random

    rng = random.Random(seed)
    count = 64 * shards + rng.randrange(0, 512)
    if consecutive:
        base = rng.randrange(10**6)
        keys = range(base, base + count)
    else:
        keys = [rng.randrange(10**7) for _ in range(count)]
    counts = [0] * shards
    for key in keys:
        counts[shard_for_key(key, shards)] += 1
    mean = count / shards
    assert max(counts) <= 1.6 * mean, counts


# ---------------------------------------------------------------------------
# 2./3. Sharded vs single engine, fan-out invariants
# ---------------------------------------------------------------------------
def _run_session(engine, admit_at=150, remove_at=300):
    """One scripted session: umbrella + mid-stream σ-query add/remove."""
    engine.add_query("umbrella", 4.0)
    removed = None
    for index, tup in enumerate(DATA.tuples):
        if index == admit_at:
            engine.add_query(
                "Q2", 2.0, left_filter=attribute_gt("value", 0.4, selectivity=0.6)
            )
        if index == remove_at:
            removed = engine.remove_query("Q2")
        engine.process(tup)
    engine.flush()
    return removed


@pytest.mark.parametrize("shards", [1, 2, 4])
def test_sharded_equals_single_engine(shards):
    single = StreamEngine(CONDITION, batch_size=16)
    sharded = ShardedStreamEngine(CONDITION, shards=shards, batch_size=16)
    removed_single = _run_session(single)
    removed_sharded = _run_session(sharded)
    assert pairs(removed_sharded) == pairs(removed_single)
    assert pairs(sharded.results("umbrella")) == pairs(single.results("umbrella"))
    assert sharded.stats.arrivals == single.stats.arrivals
    assert sharded.states_are_disjoint()


def test_merged_output_order_is_deterministic():
    sharded = ShardedStreamEngine(CONDITION, shards=3, batch_size=7)
    _run_session(sharded)
    merged = sharded.results("umbrella")
    key = lambda j: (j.timestamp, j.left.seqno, j.right.seqno)  # noqa: E731
    assert merged == sorted(merged, key=key)
    # pop_results drains every shard
    assert pairs(sharded.pop_results("umbrella")) == pairs(merged)
    assert sharded.results("umbrella") == []


def test_fanout_keeps_shard_boundaries_identical():
    sharded = ShardedStreamEngine(CONDITION, shards=4, batch_size=16)
    sharded.add_query("big", 4.0)
    sharded.add_query("small", 1.5)
    assert sharded.shard_boundaries() == [(0.0, 1.5, 4.0)] * 4
    sharded.process_many(DATA.tuples[:200])
    sharded.remove_query("small")
    assert sharded.shard_boundaries() == [(0.0, 4.0)] * 4
    assert sharded.boundaries == (0.0, 4.0)
    assert sharded.slice_count() == 1


def test_rebalance_fans_out_with_scaled_rates():
    sharded = ShardedStreamEngine(CONDITION, shards=4, batch_size=16)
    sharded.add_query("big", 4.0)
    sharded.add_query(
        "small", 1.0, left_filter=attribute_gt("value", 0.8, selectivity=0.2)
    )
    sharded.process_many(DATA.tuples[:300])
    params = ChainCostParameters(
        arrival_rate_left=30.0, arrival_rate_right=30.0, system_overhead=0.5
    )
    boundaries = sharded.rebalance(params)
    assert sharded.shard_boundaries() == [boundaries] * 4
    # still answer-identical to a single engine after the migration
    single = StreamEngine(CONDITION, batch_size=16)
    single.add_query("big", 4.0)
    single.add_query(
        "small", 1.0, left_filter=attribute_gt("value", 0.8, selectivity=0.2)
    )
    single.process_many(DATA.tuples[:300])
    single.rebalance(params)
    sharded.process_many(DATA.tuples[300:])
    single.process_many(DATA.tuples[300:])
    for name in ("big", "small"):
        assert pairs(sharded.results(name)) == pairs(single.results(name))


def test_unsupported_workloads_raise_or_fall_back():
    cross = CrossProductCondition()
    with pytest.raises(ShardingError):
        ShardedStreamEngine(cross, shards=2)
    with pytest.raises(ShardingError):
        ShardedStreamEngine(CONDITION, shards=2, window_kind="count")
    fallback = ShardedStreamEngine(cross, shards=4, on_unsupported="fallback")
    assert fallback.shards == 1
    fallback.add_query("Q", 2.0)
    fallback.process_many(DATA.tuples[:50])
    single = StreamEngine(cross, batch_size=32)
    single.add_query("Q", 2.0)
    single.process_many(DATA.tuples[:50])
    assert pairs(fallback.results("Q")) == pairs(single.results("Q"))


def test_admission_surface_validation():
    sharded = ShardedStreamEngine(CONDITION, shards=2)
    sharded.add_query("Q", 2.0)
    from repro.engine.errors import QueryError

    with pytest.raises(QueryError):
        sharded.add_query("Q", 3.0)
    with pytest.raises(QueryError):
        sharded.remove_query("missing")
    with pytest.raises(QueryError):
        sharded.results("missing")
    with pytest.raises(QueryError):
        sharded.process(make_tuple("C", 1.0, join_key=1))


# ---------------------------------------------------------------------------
# 4. Statistics aggregation and the planner
# ---------------------------------------------------------------------------
def test_snapshot_aggregation_sums_counters():
    left = MetricsCollector()
    right = MetricsCollector()
    left.count("probe", 10)
    right.count("probe", 5)
    left.record_ingest(4, "A")
    right.record_ingest(6, "A")
    left.record_emission("Q", 3)
    left.sample_memory(2.0, 7)
    right.sample_memory(3.0, 5)
    merged = MetricsSnapshot.aggregate([left.snapshot(), right.snapshot()])
    assert merged["comparisons.probe"] == 15.0
    assert merged["ingested.A"] == 10.0
    assert merged["emitted.total"] == 3.0
    assert merged["memory.max"] == 12.0  # disjoint states: occupancies add
    assert merged["time.last"] == 3.0  # shared stream clock: max, not sum
    assert merged["service_rate"] == pytest.approx(3.0 / merged["cpu_cost"])


def test_merged_statistics_global_rates():
    sharded = ShardedStreamEngine(
        CONDITION, shards=4, batch_size=16, collect_statistics=True
    )
    sharded.add_query("Q", 3.0)
    sharded.process_many(DATA.tuples)
    sharded.flush()
    merged = sharded.merged_statistics()
    # Global rates survive the partitioning: ~30/s per stream.
    assert merged.rate("A") == pytest.approx(30.0, rel=0.25)
    assert merged.rate("B") == pytest.approx(30.0, rel=0.25)
    per_shard = sharded.shard_statistics()
    assert len(per_shard) == 4
    assert sum(s.rate("A", 0.0) for s in per_shard) == pytest.approx(
        merged.rate("A"), rel=0.05
    )


def test_shard_windows_aggregate_matches_engine_view():
    empty = MetricsCollector().snapshot()
    sharded = ShardedStreamEngine(
        CONDITION, shards=2, batch_size=16, collect_statistics=True
    )
    sharded.add_query("Q", 3.0)
    sharded.process_many(DATA.tuples[:200])
    stats = StreamStatistics.from_shard_windows(
        [(empty, snapshot) for snapshot in sharded.shard_snapshots()]
    )
    merged = sharded.merged_statistics()
    assert stats.arrival_rates == merged.arrival_rates
    assert stats.join_selectivity == merged.join_selectivity


def test_planner_recommend_and_skew():
    planner = ShardPlanner(max_shards=8, target_rate_per_shard=25.0)
    stats = StreamStatistics(arrival_rates={"A": 60.0, "B": 60.0})
    assert planner.recommend(stats) == 5
    assert planner.recommend(StreamStatistics()) == 1
    assert planner.recommend(StreamStatistics(arrival_rates={"A": 1000.0})) == 8

    assert planner.imbalance([100, 100, 100, 100]) == 1.0
    assert planner.imbalance([400, 0, 0, 0]) == 4.0
    assert planner.imbalance([]) == 1.0


def test_planner_plan_flags_hot_keys():
    planner = ShardPlanner(target_rate_per_shard=15.0, skew_threshold=1.8)
    sharded = ShardedStreamEngine(
        CONDITION, shards=4, batch_size=16, collect_statistics=True
    )
    sharded.add_query("Q", 2.0)
    # every arrival carries the same key -> one hot shard
    hot = [
        make_tuple(tup.stream, tup.timestamp, join_key=7, value=0.5)
        for tup in DATA.tuples[:240]
    ]
    sharded.process_many(hot)
    plan = planner.plan(sharded)
    assert plan.skewed
    assert plan.imbalance == pytest.approx(4.0)
    assert "hot keys" in plan.reason
    assert plan.shards >= 1
    assert "skewed" in plan.describe()


def test_planner_rebalance_reprices_each_shard():
    planner = ShardPlanner()
    sharded = ShardedStreamEngine(
        CONDITION, shards=2, batch_size=16, collect_statistics=True
    )
    sharded.add_query("big", 4.0)
    sharded.add_query(
        "small", 1.0, left_filter=attribute_gt("value", 0.8, selectivity=0.2)
    )
    sharded.process_many(DATA.tuples)
    boundaries = planner.rebalance(sharded, system_overhead=0.5)
    assert boundaries[0] == 0.0
    assert sharded.shard_boundaries() == [boundaries] * 2


# ---------------------------------------------------------------------------
# Process-parallel driver (correctness smoke)
# ---------------------------------------------------------------------------
def test_process_mode_matches_serial():
    serial = ShardedStreamEngine(CONDITION, shards=2, batch_size=16)
    removed_serial = _run_session(serial)
    with ShardedStreamEngine(
        CONDITION, shards=2, shard_mode="process", batch_size=16
    ) as process:
        removed_process = _run_session(process)
        assert pairs(removed_process) == pairs(removed_serial)
        assert pairs(process.results("umbrella")) == pairs(
            serial.results("umbrella")
        )
        assert process.stats.arrivals == serial.stats.arrivals
        assert process.state_size() == serial.state_size()
        assert process.shard_boundaries() == serial.shard_boundaries()
        snapshot = process.merged_snapshot()
        assert snapshot["ingested.total"] == len(DATA.tuples)


def test_process_mode_rejects_use_after_close():
    from repro.engine.errors import ExecutionError

    engine = ShardedStreamEngine(CONDITION, shards=2, shard_mode="process")
    engine.add_query("Q", 1.0)
    engine.close()
    engine.close()  # idempotent
    with pytest.raises(ExecutionError):
        engine.process(DATA.tuples[0])
    # introspection raises the API's error, not a raw pipe OSError
    with pytest.raises(ExecutionError):
        engine.state_size()
    with pytest.raises(ExecutionError):
        engine.stats  # noqa: B018 - the property performs the round-trip
    with pytest.raises(ExecutionError):
        engine.shard_boundaries()


def test_process_mode_introspection_flushes_buffers():
    """stats/state_size must reflect arrivals already handed to process()."""
    with ShardedStreamEngine(
        CONDITION, shards=2, shard_mode="process", batch_size=1000
    ) as engine:
        engine.add_query("Q", 3.0)
        engine.process_many(DATA.tuples[:50])  # far below the batch size
        assert engine.stats.arrivals == 50
        assert engine.state_size() > 0


def test_process_mode_worker_kill_mid_stream_recovers():
    """A worker killed mid-stream (no reshard involved) is respawned and the
    session's final answer is exactly the serial driver's."""
    half = len(DATA.tuples) // 2
    serial = ShardedStreamEngine(CONDITION, shards=2, batch_size=16)
    serial.add_query("Q", 3.0)
    serial.process_many(DATA.tuples)
    serial.flush()
    with ShardedStreamEngine(
        CONDITION, shards=2, shard_mode="process", batch_size=16
    ) as engine:
        engine.add_query("Q", 3.0)
        engine.process_many(DATA.tuples[:half])
        engine.flush()
        engine._workers[1].terminate()
        engine._workers[1].join(timeout=5)
        engine.process_many(DATA.tuples[half:])
        engine.flush()
        assert pairs(engine.results("Q")) == pairs(serial.results("Q"))
        assert engine.metrics.respawns == 1
        assert engine.merged_snapshot()["respawn.count"] == 1.0


# ---------------------------------------------------------------------------
# Per-shard probe choice
# ---------------------------------------------------------------------------
def test_set_shard_probes_preserves_answers_serially():
    uniform = ShardedStreamEngine(CONDITION, shards=3, batch_size=16)
    uniform.add_query("Q", 3.0)
    uniform.process_many(DATA.tuples)
    uniform.flush()

    mixed = ShardedStreamEngine(CONDITION, shards=3, batch_size=16)
    mixed.add_query("Q", 3.0)
    mixed.process_many(DATA.tuples[:200])
    mixed.set_shard_probes(["hash", "nested_loop", "hash"])
    assert mixed.shard_probes == ["hash", "nested_loop", "hash"]
    mixed.process_many(DATA.tuples[200:])
    mixed.flush()
    assert pairs(mixed.results("Q")) == pairs(uniform.results("Q"))

    with pytest.raises(ShardingError):
        mixed.set_shard_probes(["hash"])  # one probe per shard


def test_set_shard_probes_process_mode_and_respawn():
    """Per-shard probes reach the workers and survive a respawn."""
    with ShardedStreamEngine(
        CONDITION, shards=2, shard_mode="process", batch_size=16
    ) as engine:
        engine.add_query("Q", 3.0)
        engine.process_many(DATA.tuples[:150])
        engine.set_shard_probes(["hash", "nested_loop"])
        engine._workers[0].terminate()
        engine._workers[0].join(timeout=5)
        engine.process_many(DATA.tuples[150:])
        engine.flush()
        assert engine.shard_probes == ["hash", "nested_loop"]
        assert engine.metrics.respawns == 1

        serial = ShardedStreamEngine(CONDITION, shards=2, batch_size=16)
        serial.add_query("Q", 3.0)
        serial.process_many(DATA.tuples)
        serial.flush()
        assert pairs(engine.results("Q")) == pairs(serial.results("Q"))


def test_shard_probes_reset_by_reshard():
    engine = ShardedStreamEngine(CONDITION, shards=2, batch_size=16)
    engine.add_query("Q", 2.0)
    engine.process_many(DATA.tuples[:100])
    engine.set_shard_probes(["hash", "hash"])
    engine.reshard(3)
    # per-shard statistics do not survive a modulus change
    assert engine.shard_probes == [engine.probe] * 3


def test_planner_recommend_probes_from_measured_density():
    planner = ShardPlanner()
    engine = ShardedStreamEngine(CONDITION, shards=2, batch_size=16)
    engine.add_query("Q", 2.0)
    dense = MetricsSnapshot({"ingested.total": 100.0, "comparisons.probe": 2000.0})
    sparse = MetricsSnapshot({"ingested.total": 100.0, "comparisons.probe": 80.0})
    assert planner.recommend_probes(engine, [dense, sparse]) == [
        "hash",
        "nested_loop",
    ]
    # a shard that ingested nothing has no evidence for an index
    empty = MetricsSnapshot({"ingested.total": 0.0, "comparisons.probe": 0.0})
    assert planner.recommend_probes(engine, [empty, dense]) == [
        "nested_loop",
        "hash",
    ]

    # a non-equi session has no hashable key: every shard stays nested-loop
    # (the fallback also collapses it to one shard)
    non_equi = ShardedStreamEngine(
        CrossProductCondition(), shards=2, batch_size=16, on_unsupported="fallback"
    )
    assert non_equi.shards == 1
    assert planner.recommend_probes(non_equi, [dense]) == ["nested_loop"]


def test_planner_rebalance_tune_probes_applies_recommendation():
    planner = ShardPlanner()
    engine = ShardedStreamEngine(
        CONDITION, shards=2, batch_size=16, collect_statistics=True
    )
    engine.add_query("Q", 3.0)
    # every arrival carries one key: shard_for_key(7, 2) is hot, the other idle
    hot = [
        make_tuple(tup.stream, tup.timestamp, join_key=7, value=0.5)
        for tup in DATA.tuples[:240]
    ]
    engine.process_many(hot)
    engine.flush()
    planner.rebalance(engine, tune_probes=True)
    probes = engine.shard_probes
    hot_shard = shard_for_key(7, 2)
    assert probes[hot_shard] == "hash"
    assert probes[1 - hot_shard] == "nested_loop"


# ---------------------------------------------------------------------------
# Batched result pulls
# ---------------------------------------------------------------------------
def test_pop_results_all_matches_per_query_pops():
    for mode in ("serial", "process"):
        reference = ShardedStreamEngine(CONDITION, shards=2, batch_size=16)
        reference.add_query("Q1", 2.0)
        reference.add_query("Q2", 3.0)
        reference.process_many(DATA.tuples)
        reference.flush()
        expected = {
            name: pairs(reference.pop_results(name)) for name in ("Q1", "Q2")
        }
        with ShardedStreamEngine(
            CONDITION, shards=2, shard_mode=mode, batch_size=16
        ) as engine:
            engine.add_query("Q1", 2.0)
            engine.add_query("Q2", 3.0)
            engine.process_many(DATA.tuples)
            engine.flush()
            popped = engine.pop_results_all()
            assert {name: pairs(res) for name, res in popped.items()} == expected
            # destructive: a second pull is empty
            assert engine.pop_results_all() == {"Q1": [], "Q2": []}
            assert engine.results("Q1") == []


def test_process_mode_tiny_ring_uses_pipe_fallback():
    """Batches that cannot fit the arrival ring take the marked pipe path
    without reordering against ring traffic."""
    serial = ShardedStreamEngine(CONDITION, shards=2, batch_size=16)
    serial.add_query("Q", 3.0)
    serial.process_many(DATA.tuples)
    serial.flush()
    with ShardedStreamEngine(
        CONDITION, shards=2, shard_mode="process", batch_size=16, ring_capacity=64
    ) as engine:
        engine.add_query("Q", 3.0)
        engine.process_many(DATA.tuples)
        engine.flush()
        assert pairs(engine.results("Q")) == pairs(serial.results("Q"))
