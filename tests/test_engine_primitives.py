"""Unit tests for the engine primitives: clock, metrics, queues, operator base."""

from __future__ import annotations

import pytest

from repro.engine.clock import VirtualClock
from repro.engine.errors import ExecutionError, PlanError
from repro.engine.metrics import CostCategory, MetricsCollector, RunReport
from repro.engine.operator import Operator, PassThrough
from repro.engine.queues import OperatorQueue
from repro.streams.tuples import make_tuple


class TestVirtualClock:
    def test_advance_to_moves_forward(self):
        clock = VirtualClock()
        assert clock.now == 0.0
        clock.advance_to(2.5)
        assert clock.now == 2.5
        assert clock.elapsed == 2.5

    def test_advance_backwards_raises(self):
        clock = VirtualClock(start=5.0)
        with pytest.raises(ExecutionError):
            clock.advance_to(4.0)

    def test_observe_never_moves_backwards(self):
        clock = VirtualClock()
        clock.observe(3.0)
        clock.observe(1.0)
        assert clock.now == 3.0

    def test_reset(self):
        clock = VirtualClock()
        clock.observe(9.0)
        clock.reset(1.0)
        assert clock.now == 1.0
        assert clock.elapsed == 0.0


class TestMetricsCollector:
    def test_counts_by_category(self):
        metrics = MetricsCollector()
        metrics.count(CostCategory.PROBE, 3)
        metrics.count(CostCategory.PURGE)
        metrics.count(CostCategory.PROBE)
        assert metrics.comparisons[CostCategory.PROBE] == 4
        assert metrics.total_comparisons == 5

    def test_zero_amount_not_recorded(self):
        metrics = MetricsCollector()
        metrics.count(CostCategory.PROBE, 0)
        assert metrics.total_comparisons == 0

    def test_cpu_cost_includes_system_overhead(self):
        metrics = MetricsCollector(system_overhead=0.5)
        metrics.count(CostCategory.PROBE, 10)
        metrics.record_invocation("op")
        metrics.record_invocation("op")
        assert metrics.cpu_cost() == pytest.approx(11.0)
        assert metrics.cpu_cost(system_overhead=0.0) == pytest.approx(10.0)

    def test_memory_statistics(self):
        metrics = MetricsCollector()
        for timestamp, size in [(1.0, 10), (2.0, 20), (3.0, 30), (4.0, 40)]:
            metrics.sample_memory(timestamp, size)
        assert metrics.average_state_memory() == pytest.approx(25.0)
        assert metrics.max_state_memory() == 40
        assert metrics.steady_state_memory(warmup_fraction=0.5) == pytest.approx(35.0)

    def test_memory_statistics_empty(self):
        metrics = MetricsCollector()
        assert metrics.average_state_memory() == 0.0
        assert metrics.max_state_memory() == 0
        assert metrics.steady_state_memory() == 0.0

    def test_service_rate(self):
        metrics = MetricsCollector()
        metrics.count(CostCategory.PROBE, 100)
        metrics.record_emission("Q1", 20)
        assert metrics.service_rate() == pytest.approx(0.2)

    def test_service_rate_zero_cost(self):
        assert MetricsCollector().service_rate() == 0.0

    def test_merge_folds_counters(self):
        first = MetricsCollector()
        first.count(CostCategory.PROBE, 5)
        first.record_emission("Q1", 2)
        second = MetricsCollector()
        second.count(CostCategory.PROBE, 7)
        second.record_invocation("op")
        second.sample_memory(1.0, 3)
        first.merge(second)
        assert first.comparisons[CostCategory.PROBE] == 12
        assert first.total_invocations == 1
        assert len(first.memory_samples) == 1

    def test_snapshot_contains_expected_keys(self):
        metrics = MetricsCollector()
        snapshot = metrics.snapshot()
        assert "comparisons.total" in snapshot
        assert "memory.average" in snapshot
        assert "service_rate" in snapshot

    def test_run_report_properties(self):
        metrics = MetricsCollector()
        metrics.count(CostCategory.PROBE, 10)
        metrics.record_emission("Q1", 3)
        report = RunReport(strategy="x", metrics=metrics, results={"Q1": [1, 2, 3]})
        assert report.total_output == 3
        assert report.output_counts() == {"Q1": 3}
        assert report.cpu_cost == 10
        assert report.summary()["output.total"] == 3.0


class TestOperatorQueue:
    def test_fifo_order(self):
        queue = OperatorQueue("q")
        queue.push(1)
        queue.push(2)
        queue.extend([3, 4])
        assert queue.pop() == 1
        assert queue.peek() == 2
        assert len(queue) == 3
        assert list(queue) == [2, 3, 4]

    def test_high_water_mark(self):
        queue = OperatorQueue()
        for value in range(5):
            queue.push(value)
        queue.pop()
        queue.pop()
        assert queue.max_size == 5
        assert queue.total_enqueued == 5

    def test_empty_queue_behaviour(self):
        queue = OperatorQueue()
        assert not queue
        assert queue.peek() is None
        queue.push("x")
        assert queue
        queue.clear()
        assert len(queue) == 0


class TestOperatorBase:
    def test_names_are_unique_by_default(self):
        first = PassThrough()
        second = PassThrough()
        assert first.name != second.name

    def test_check_port_rejects_unknown_ports(self):
        operator = PassThrough(name="p")
        operator.check_port("in", "input")
        operator.check_port("out", "output")
        with pytest.raises(PlanError):
            operator.check_port("bogus", "input")
        with pytest.raises(PlanError):
            operator.check_port("bogus", "output")

    def test_process_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Operator(name="abstract").process(make_tuple("A", 0.0, x=1), "in")

    def test_passthrough_forwards_items(self):
        operator = PassThrough(name="p")
        tup = make_tuple("A", 0.0, x=1)
        assert operator.process(tup, "in") == [("out", tup)]

    def test_default_state_is_empty(self):
        operator = PassThrough(name="p")
        assert operator.state_size() == 0
        assert not operator.is_stateful()
        assert operator.flush() == []
