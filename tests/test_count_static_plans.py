"""Differential checks for count-window plans in the static layers.

The runtime layer has supported count windows since PR 2; this suite covers
the static builders added by the statistics-plane PR: ``plan_builder`` and
all three baselines must build count-window plans whose per-query answers
are identical to each other, to the per-query unshared reference, and to a
live :class:`CountStreamEngine` session over the same arrivals.
"""

from __future__ import annotations

import pytest

from repro.baselines.pullup import build_pullup_plan
from repro.baselines.pushdown import build_pushdown_plan
from repro.baselines.unshared import build_unshared_plan
from repro.core.plan_builder import build_state_slice_plan
from repro.core.slices import ChainSpec, SliceSpec
from repro.engine.errors import ChainError, ConfigurationError, QueryError
from repro.engine.executor import execute_plan
from repro.query.predicates import (
    EquiJoinCondition,
    selectivity_filter,
    selectivity_join,
)
from repro.query.query import ContinuousQuery, QueryWorkload
from repro.runtime import CountStreamEngine
from repro.streams.generators import SelectivityValueGenerator, generate_join_workload
from tests.conftest import joined_keys, result_keys

BUILDERS = {
    "unshared": build_unshared_plan,
    "selection-pullup": build_pullup_plan,
    "selection-pushdown": build_pushdown_plan,
}


def count_workload(with_selections: bool = True) -> QueryWorkload:
    condition = selectivity_join(0.2)
    sigma = selectivity_filter(0.5) if with_selections else None
    queries = [
        ContinuousQuery("Q1", window=4, join_condition=condition),
        ContinuousQuery(
            "Q2",
            window=9,
            join_condition=condition,
            **({"left_filter": sigma} if sigma else {}),
        ),
        ContinuousQuery(
            "Q3",
            window=15,
            join_condition=condition,
            **({"left_filter": sigma} if sigma else {}),
        ),
    ]
    return QueryWorkload(queries)


@pytest.fixture(scope="module")
def stream_data():
    return generate_join_workload(rate_a=18, rate_b=18, duration=7.0, seed=23)


class TestCountDifferential:
    @pytest.mark.parametrize("with_selections", [True, False])
    def test_all_strategies_agree_with_unshared(self, stream_data, with_selections):
        workload = count_workload(with_selections)
        reference = execute_plan(
            build_unshared_plan(workload, window_kind="count"), stream_data.tuples
        )
        expected = result_keys(reference.results)
        assert all(len(keys) > 0 for keys in expected.values())
        for name, builder in BUILDERS.items():
            report = execute_plan(
                builder(workload, window_kind="count"), stream_data.tuples
            )
            assert result_keys(report.results) == expected, name
        sliced = execute_plan(
            build_state_slice_plan(workload, window_kind="count"), stream_data.tuples
        )
        assert result_keys(sliced.results) == expected

    def test_state_slice_agrees_at_larger_batch_sizes(self, stream_data):
        workload = count_workload()
        per_tuple = execute_plan(
            build_state_slice_plan(workload, window_kind="count"), stream_data.tuples
        )
        batched = execute_plan(
            build_state_slice_plan(workload, window_kind="count"),
            stream_data.tuples,
            batch_size=16,
        )
        assert result_keys(batched.results) == result_keys(per_tuple.results)

    def test_static_plan_matches_runtime_count_engine(self, stream_data):
        workload = count_workload()
        report = execute_plan(
            build_state_slice_plan(workload, window_kind="count"), stream_data.tuples
        )
        engine = CountStreamEngine(workload.join_condition, batch_size=8)
        for query in workload:
            engine.add_query(
                query.name,
                query.window,
                left_filter=query.left_filter,
                right_filter=query.right_filter,
            )
        engine.process_many(stream_data.tuples)
        engine.flush()
        for query in workload:
            assert joined_keys(engine.results(query.name)) == joined_keys(
                report.results[query.name]
            ), query.name

    def test_hash_probe_count_chain_agrees_with_nested_loop(self):
        condition = EquiJoinCondition("join_key", "join_key", key_domain=6)
        workload = QueryWorkload(
            [
                ContinuousQuery("Q1", window=5, join_condition=condition),
                ContinuousQuery("Q2", window=12, join_condition=condition),
            ]
        )
        data = generate_join_workload(
            rate_a=15,
            rate_b=15,
            duration=6.0,
            seed=31,
            value_generator=lambda: SelectivityValueGenerator(key_domain=6),
        )
        nested = execute_plan(
            build_state_slice_plan(workload, window_kind="count", probe="nested_loop"),
            data.tuples,
        )
        hashed = execute_plan(
            build_state_slice_plan(workload, window_kind="count", probe="hash"),
            data.tuples,
        )
        assert result_keys(hashed.results) == result_keys(nested.results)
        assert all(len(keys) > 0 for keys in result_keys(hashed.results).values())

    def test_state_slice_count_plan_uses_less_state_than_pullup(self, stream_data):
        """Theorem 3's memory claim carries over to rank slices: the chain
        holds each stream's max-count suffix exactly once."""
        workload = count_workload()
        sliced = execute_plan(
            build_state_slice_plan(workload, window_kind="count"), stream_data.tuples
        )
        unshared = execute_plan(
            build_unshared_plan(workload, window_kind="count"), stream_data.tuples
        )
        assert sliced.steady_state_memory < unshared.steady_state_memory


class TestCountPlanValidation:
    def test_non_integer_window_rejected(self):
        condition = selectivity_join(0.2)
        workload = QueryWorkload(
            [ContinuousQuery("Q1", window=2.5, join_condition=condition)]
        )
        with pytest.raises(QueryError):
            build_unshared_plan(workload, window_kind="count")
        with pytest.raises(QueryError):
            build_state_slice_plan(workload, window_kind="count")

    def test_merged_chain_rejected_for_count_windows(self):
        workload = count_workload(with_selections=False)
        merged = ChainSpec(
            workload,
            [
                SliceSpec(start=0, end=9, covered_windows=(4, 9)),
                SliceSpec(start=9, end=15, covered_windows=(15,)),
            ],
        )
        with pytest.raises(ChainError):
            build_state_slice_plan(workload, chain=merged, window_kind="count")

    def test_hash_algorithm_rejected_for_count_baselines(self):
        workload = count_workload(with_selections=False)
        for builder in (build_unshared_plan, build_pullup_plan):
            with pytest.raises(ConfigurationError):
                builder(workload, algorithm="hash", window_kind="count")

    def test_unknown_window_kind_rejected(self):
        workload = count_workload(with_selections=False)
        for builder in (
            build_unshared_plan,
            build_pullup_plan,
            build_pushdown_plan,
            build_state_slice_plan,
        ):
            with pytest.raises(ConfigurationError):
                builder(workload, window_kind="sideways")
