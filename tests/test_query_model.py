"""Unit tests for windows, continuous queries, workloads, the parser and the
window-distribution generators."""

from __future__ import annotations

import pytest

from repro.engine.errors import ConfigurationError, ParseError, QueryError
from repro.query.parser import parse_query, parse_workload_text
from repro.query.predicates import (
    EquiJoinCondition,
    TruePredicate,
    selectivity_filter,
    selectivity_join,
)
from repro.query.query import ContinuousQuery, QueryWorkload, workload_from_windows
from repro.query.windows import CountWindow, TimeWindow, WindowSlice, slice_boundaries
from repro.query.workload import (
    THREE_QUERY_DISTRIBUTIONS,
    TWELVE_QUERY_DISTRIBUTIONS,
    build_workload,
    multi_query_workload,
    scale_distribution,
    three_query_workload,
    window_distribution,
)
from repro.streams.tuples import make_tuple


class TestWindows:
    def test_time_window_contains(self):
        window = TimeWindow(2.0)
        assert window.contains(0.0, 1.9)
        assert not window.contains(0.0, 2.0)

    def test_windows_must_be_positive(self):
        with pytest.raises(QueryError):
            TimeWindow(0)
        with pytest.raises(QueryError):
            CountWindow(0)

    def test_window_slice_validation(self):
        with pytest.raises(QueryError):
            WindowSlice(-1, 2)
        with pytest.raises(QueryError):
            WindowSlice(2, 2)
        slice_ = WindowSlice(1.0, 3.0)
        assert slice_.length == 2.0
        assert slice_.contains_offset(1.0)
        assert slice_.contains_offset(2.9)
        assert not slice_.contains_offset(3.0)
        assert not slice_.contains_offset(0.5)

    def test_slice_boundaries_builds_mem_opt_slices(self):
        slices = slice_boundaries([3.0, 1.0, 2.0, 2.0])
        assert [(s.start, s.end) for s in slices] == [(0.0, 1.0), (1.0, 2.0), (2.0, 3.0)]
        with pytest.raises(QueryError):
            slice_boundaries([])
        with pytest.raises(QueryError):
            slice_boundaries([0.0, 1.0])


class TestContinuousQuery:
    def test_window_must_be_positive(self):
        with pytest.raises(QueryError):
            ContinuousQuery("Q", window=0, join_condition=selectivity_join(0.5))

    def test_has_selection(self):
        condition = selectivity_join(0.5)
        plain = ContinuousQuery("Q", window=1.0, join_condition=condition)
        filtered = ContinuousQuery(
            "Q", window=1.0, join_condition=condition, left_filter=selectivity_filter(0.3)
        )
        assert not plain.has_selection
        assert filtered.has_selection

    def test_describe_mentions_filters(self):
        query = ContinuousQuery(
            "Q2",
            window=60.0,
            join_condition=EquiJoinCondition("LocationId", "LocationId"),
            left_filter=selectivity_filter(0.01),
            left_stream="Temperature",
            right_stream="Humidity",
        )
        text = query.describe()
        assert "Q2" in text and "Temperature" in text and "value" in text

    def test_with_window(self):
        query = ContinuousQuery("Q", window=1.0, join_condition=selectivity_join(0.5))
        assert query.with_window(9.0).window == 9.0


class TestQueryWorkload:
    def test_queries_sorted_by_window(self):
        condition = selectivity_join(0.5)
        workload = QueryWorkload(
            [
                ContinuousQuery("Qbig", window=5.0, join_condition=condition),
                ContinuousQuery("Qsmall", window=1.0, join_condition=condition),
            ]
        )
        assert workload.names() == ["Qsmall", "Qbig"]
        assert workload.window_sizes() == [1.0, 5.0]
        assert workload.max_window == 5.0

    def test_duplicate_names_rejected(self):
        condition = selectivity_join(0.5)
        with pytest.raises(QueryError):
            QueryWorkload(
                [
                    ContinuousQuery("Q", window=1.0, join_condition=condition),
                    ContinuousQuery("Q", window=2.0, join_condition=condition),
                ]
            )

    def test_mismatched_streams_rejected(self):
        condition = selectivity_join(0.5)
        with pytest.raises(QueryError):
            QueryWorkload(
                [
                    ContinuousQuery("Q1", window=1.0, join_condition=condition),
                    ContinuousQuery(
                        "Q2", window=2.0, join_condition=condition, left_stream="X"
                    ),
                ]
            )

    def test_mismatched_join_condition_rejected(self):
        with pytest.raises(QueryError):
            QueryWorkload(
                [
                    ContinuousQuery("Q1", window=1.0, join_condition=selectivity_join(0.5)),
                    ContinuousQuery("Q2", window=2.0, join_condition=selectivity_join(0.25)),
                ]
            )

    def test_empty_workload_rejected(self):
        with pytest.raises(QueryError):
            QueryWorkload([])

    def test_query_lookup(self, two_query_workload):
        assert two_query_workload.query("Q1").name == "Q1"
        with pytest.raises(QueryError):
            two_query_workload.query("missing")

    def test_slice_filter_is_disjunction_of_downstream_queries(self, two_query_workload):
        # Below the first slice every query is relevant and Q1 has no filter,
        # so the pushed predicate is trivially true.
        assert isinstance(two_query_workload.slice_filter(0.0, side="left"), TruePredicate)
        # Beyond Q1's window only Q2 remains, so its filter is pushed down.
        pushed = two_query_workload.slice_filter(1.0, side="left")
        assert pushed.describe() == two_query_workload.query("Q2").left_filter.describe()
        assert isinstance(two_query_workload.slice_filter(1.0, side="right"), TruePredicate)

    def test_slice_filter_side_validation(self, two_query_workload):
        with pytest.raises(QueryError):
            two_query_workload.slice_filter(0.0, side="middle")

    def test_workload_from_windows(self):
        condition = selectivity_join(0.5)
        workload = workload_from_windows([2.0, 1.0], condition)
        assert workload.names() == ["Q2", "Q1"]
        with pytest.raises(QueryError):
            workload_from_windows([1.0], condition, left_filters=[])

    def test_has_selections(self, two_query_workload, three_query_workload_fixture):
        assert two_query_workload.has_selections()
        assert three_query_workload_fixture.has_selections()
        no_filters = workload_from_windows([1.0, 2.0], selectivity_join(0.5))
        assert not no_filters.has_selections()


class TestParser:
    EXAMPLE = """
        SELECT A.* FROM Temperature A, Humidity B
        WHERE A.LocationId = B.LocationId AND A.Value > 10
        WINDOW 60 min
    """

    def test_parses_the_paper_example(self):
        query = parse_query(self.EXAMPLE, name="Q2", filter_selectivity=0.01)
        assert query.window == pytest.approx(3600.0)
        assert query.left_stream == "Temperature"
        assert query.right_stream == "Humidity"
        assert isinstance(query.join_condition, EquiJoinCondition)
        assert query.left_filter.describe() == "Value > 10.0"
        assert query.left_filter.selectivity == pytest.approx(0.01)
        assert isinstance(query.right_filter, TruePredicate)

    def test_filter_predicate_evaluates(self):
        query = parse_query(self.EXAMPLE)
        assert query.left_filter.matches(make_tuple("Temperature", 0.0, Value=20.0))
        assert not query.left_filter.matches(make_tuple("Temperature", 0.0, Value=5.0))

    def test_window_units(self):
        base = "SELECT A.* FROM S A, T B WHERE A.k = B.k WINDOW {}"
        assert parse_query(base.format("90 sec")).window == pytest.approx(90.0)
        assert parse_query(base.format("2 hours")).window == pytest.approx(7200.0)
        assert parse_query(base.format("30")).window == pytest.approx(30.0)

    def test_right_side_filters(self):
        text = (
            "SELECT A.* FROM S A, T B WHERE A.k = B.k AND B.v <= 3 WINDOW 10 sec"
        )
        query = parse_query(text)
        assert isinstance(query.left_filter, TruePredicate)
        assert query.right_filter.describe() == "v <= 3.0"

    def test_missing_join_predicate_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT A.* FROM S A, T B WHERE A.v > 1 WINDOW 10 sec")

    def test_malformed_queries_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT * FROM S WINDOW 10 sec")
        with pytest.raises(ParseError):
            parse_query("SELECT A.* FROM S A, T B, U C WHERE A.k = B.k WINDOW 10")
        with pytest.raises(ParseError):
            parse_query("SELECT A.* FROM S A, T B WHERE A.k = B.k WINDOW ten minutes")
        with pytest.raises(ParseError):
            parse_query("SELECT A.* FROM S A, T B WHERE A.k = B.k WINDOW 10 fortnights")
        with pytest.raises(ParseError):
            parse_query("SELECT A.* FROM S A, T B WHERE C.v > 1 AND A.k = B.k WINDOW 10")

    def test_parse_workload_text(self):
        text = """
            SELECT A.* FROM S A, T B WHERE A.k = B.k WINDOW 1 min;
            SELECT A.* FROM S A, T B WHERE A.k = B.k AND A.v > 5 WINDOW 60 min
        """
        queries = parse_workload_text(text)
        assert [q.name for q in queries] == ["Q1", "Q2"]
        assert queries[0].window == pytest.approx(60.0)
        assert queries[1].window == pytest.approx(3600.0)
        workload = QueryWorkload(queries)
        assert workload.window_sizes() == [60.0, 3600.0]

    def test_parse_workload_text_empty(self):
        with pytest.raises(ParseError):
            parse_workload_text("   ")


class TestWindowDistributions:
    def test_table_3_distributions(self):
        assert THREE_QUERY_DISTRIBUTIONS["uniform"].windows == (10.0, 20.0, 30.0)
        assert THREE_QUERY_DISTRIBUTIONS["mostly-small"].windows == (5.0, 10.0, 30.0)
        assert THREE_QUERY_DISTRIBUTIONS["mostly-large"].windows == (20.0, 25.0, 30.0)

    def test_table_4_distributions(self):
        assert len(TWELVE_QUERY_DISTRIBUTIONS["uniform"].windows) == 12
        assert TWELVE_QUERY_DISTRIBUTIONS["small-large"].windows[:6] == (
            1.0,
            2.0,
            3.0,
            4.0,
            5.0,
            6.0,
        )

    def test_lookup_and_scaling(self):
        assert window_distribution("uniform", 3).windows == (10.0, 20.0, 30.0)
        scaled = window_distribution("uniform", 24)
        assert scaled.count == 24
        assert scaled.max_window == pytest.approx(30.0)
        with pytest.raises(ConfigurationError):
            window_distribution("bogus", 3)
        with pytest.raises(ConfigurationError):
            window_distribution("bogus", 12)

    def test_scale_distribution_validation(self):
        base = TWELVE_QUERY_DISTRIBUTIONS["uniform"]
        with pytest.raises(ConfigurationError):
            scale_distribution(base, 13)
        assert scale_distribution(base, 12) is base

    def test_build_workload_selectivity_validation(self):
        with pytest.raises(ConfigurationError):
            build_workload([1.0, 2.0], filter_selectivities=[0.5])

    def test_three_query_workload_shape(self):
        workload = three_query_workload("uniform", join_selectivity=0.1, filter_selectivity=0.5)
        assert len(workload) == 3
        assert not workload[0].has_selection
        assert workload[1].has_selection and workload[2].has_selection

    def test_multi_query_workload_shape(self):
        workload = multi_query_workload("small-large", query_count=12)
        assert len(workload) == 12
        assert not workload.has_selections()
