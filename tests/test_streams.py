"""Unit tests for schemas and synthetic stream generation."""

from __future__ import annotations

import random

import pytest

from repro.engine.errors import ConfigurationError, SchemaError
from repro.streams.generators import (
    JOIN_KEY_DOMAIN,
    PeriodicArrivals,
    PoissonArrivals,
    SelectivityValueGenerator,
    StreamGenerator,
    StreamSpec,
    expected_tuple_count,
    generate_join_workload,
    interleave,
)
from repro.streams.schema import SENSOR_READING_SCHEMA, Attribute, Schema
from repro.streams.tuples import make_tuple


class TestSchema:
    def test_attribute_lookup(self):
        schema = Schema("S", (Attribute("a", int, 4), Attribute("b", float, 8)))
        assert schema.attribute("a").dtype is int
        assert "b" in schema
        assert "c" not in schema
        assert schema.names() == ["a", "b"]
        assert len(schema) == 2

    def test_duplicate_attribute_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema("S", (Attribute("a"), Attribute("a")))

    def test_unknown_attribute_raises(self):
        schema = Schema("S", (Attribute("a"),))
        with pytest.raises(SchemaError):
            schema.attribute("zzz")

    def test_tuple_size_sums_attribute_sizes(self):
        schema = Schema("S", (Attribute("a", int, 4), Attribute("b", float, 8)))
        assert schema.tuple_size_bytes == 12

    def test_from_mapping_and_project(self):
        schema = Schema.from_mapping("S", {"a": int, "b": float, "c": str})
        projected = schema.project(["a", "c"])
        assert projected.names() == ["a", "c"]

    def test_renamed_keeps_attributes(self):
        renamed = SENSOR_READING_SCHEMA.renamed("Temperature")
        assert renamed.stream == "Temperature"
        assert renamed.names() == SENSOR_READING_SCHEMA.names()

    def test_validate_tuple_missing_and_unknown(self):
        schema = Schema("S", (Attribute("a"),))
        with pytest.raises(SchemaError):
            schema.validate_tuple({})
        with pytest.raises(SchemaError):
            schema.validate_tuple({"a": 1.0, "zzz": 2.0})
        schema.validate_tuple({"a": 1.0})

    def test_attribute_validate(self):
        attribute = Attribute("a", float)
        assert attribute.validate(1.5)
        assert attribute.validate(2)
        assert not attribute.validate(None)


class TestArrivalProcesses:
    def test_rates_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            PoissonArrivals(0)
        with pytest.raises(ConfigurationError):
            PeriodicArrivals(-1)

    def test_periodic_arrivals_are_evenly_spaced(self):
        process = PeriodicArrivals(rate=4.0)
        stamps = list(process.timestamps(random.Random(0), duration=2.0))
        assert stamps == pytest.approx([0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75])

    def test_poisson_mean_rate_is_respected(self):
        process = PoissonArrivals(rate=50.0)
        stamps = list(process.timestamps(random.Random(3), duration=60.0))
        empirical_rate = len(stamps) / 60.0
        assert empirical_rate == pytest.approx(50.0, rel=0.15)

    def test_timestamps_stay_within_duration(self):
        process = PoissonArrivals(rate=20.0)
        stamps = list(process.timestamps(random.Random(1), duration=5.0))
        assert all(0 <= t < 5.0 for t in stamps)


class TestStreamGeneration:
    def test_generation_is_deterministic_for_a_seed(self):
        spec = StreamSpec("A", rate=25.0)
        first = StreamGenerator(spec, seed=5).generate(4.0)
        second = StreamGenerator(spec, seed=5).generate(4.0)
        assert [(t.timestamp, dict(t.values)) for t in first] == [
            (t.timestamp, dict(t.values)) for t in second
        ]

    def test_different_seeds_differ(self):
        spec = StreamSpec("A", rate=25.0)
        first = StreamGenerator(spec, seed=5).generate(4.0)
        second = StreamGenerator(spec, seed=6).generate(4.0)
        assert [t.timestamp for t in first] != [t.timestamp for t in second]

    def test_lazy_stream_matches_materialised(self):
        spec = StreamSpec("A", rate=10.0, arrivals="periodic")
        generator = StreamGenerator(spec, seed=1)
        assert [t.timestamp for t in generator.stream(3.0)] == [
            t.timestamp for t in generator.generate(3.0)
        ]

    def test_unknown_arrival_process_rejected(self):
        spec = StreamSpec("A", rate=10.0, arrivals="bursty")
        with pytest.raises(ConfigurationError):
            spec.arrival_process()

    def test_value_generator_produces_join_key_and_value(self):
        generator = SelectivityValueGenerator()
        payload = generator.generate(random.Random(0))
        assert 0 <= payload["join_key"] < JOIN_KEY_DOMAIN
        assert 0.0 <= payload["value"] < 1.0

    def test_value_generator_extra_attributes(self):
        generator = SelectivityValueGenerator(extra_attributes={"pad": "x"})
        payload = generator.generate(random.Random(0))
        assert payload["pad"] == "x"
        schema = generator.schema("A")
        assert "pad" in schema

    def test_join_workload_is_globally_ordered(self):
        workload = generate_join_workload(rate_a=30, rate_b=20, duration=5.0, seed=2)
        stamps = [t.timestamp for t in workload.tuples]
        assert stamps == sorted(stamps)
        assert workload.count("A") > 0
        assert workload.count("B") > 0

    def test_join_workload_rates_are_close_to_requested(self):
        workload = generate_join_workload(rate_a=40, rate_b=40, duration=30.0, seed=9)
        assert workload.rate("A") == pytest.approx(40, rel=0.2)
        assert workload.rate("B") == pytest.approx(40, rel=0.2)

    def test_split_partitions_by_stream(self):
        workload = generate_join_workload(rate_a=10, rate_b=10, duration=4.0, seed=0)
        per_stream = workload.split()
        assert set(per_stream) == {"A", "B"}
        assert len(per_stream["A"]) + len(per_stream["B"]) == len(workload.tuples)

    def test_interleave_merges_by_timestamp(self):
        a = [make_tuple("A", t, x=1) for t in (0.5, 2.5)]
        b = [make_tuple("B", t, x=1) for t in (1.0, 2.0)]
        merged = interleave(a, b)
        assert [t.timestamp for t in merged] == [0.5, 1.0, 2.0, 2.5]

    def test_expected_tuple_count(self):
        assert expected_tuple_count(rate=10, duration=2.5) == 25
