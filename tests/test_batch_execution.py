"""Batched execution must be indistinguishable from per-tuple execution.

The batch-aware :class:`~repro.engine.executor.ImmediateExecutor` groups
arrivals and drives operators through ``process_batch``; these tests pin the
core guarantee down: for every plan shape and every batch size the query
outputs (content *and* order), the comparison counters and the invocation
counters are byte-identical to per-tuple execution.
"""

from __future__ import annotations

import pytest

from repro.baselines.pullup import build_pullup_plan
from repro.baselines.pushdown import build_pushdown_plan
from repro.baselines.unshared import build_unshared_plan
from repro.core.cpu_opt import build_cpu_opt_chain
from repro.core.merge_graph import ChainCostParameters
from repro.core.plan_builder import build_state_slice_plan
from repro.engine.executor import ImmediateExecutor, execute_plan
from repro.engine.operator import Operator, PassThrough
from repro.engine.scheduler import ScheduledExecutor
from repro.operators.router import Route, Router
from repro.operators.selection import Selection, StreamFilter
from repro.operators.sliced_join import SlicedBinaryJoin
from repro.operators.split import Split
from repro.operators.union import OrderedUnion
from repro.query.predicates import selectivity_filter, selectivity_join
from repro.query.workload import build_workload
from repro.streams.generators import generate_join_workload
from repro.streams.tuples import FEMALE, MALE, Punctuation, RefTuple, make_tuple

BATCH_SIZES = (1, 7, 64)


@pytest.fixture(scope="module")
def stream_data():
    return generate_join_workload(rate_a=40, rate_b=40, duration=8.0, seed=5)


@pytest.fixture(scope="module")
def workload():
    return build_workload(
        [0.5, 1.0, 1.5], join_selectivity=0.1, filter_selectivities=[1.0, 0.5, 0.5]
    )


def result_signature(report):
    return {
        name: [(item.left.seqno, item.right.seqno) for item in items]
        for name, items in report.results.items()
    }


def _cpu_opt_plan(workload):
    params = ChainCostParameters(
        arrival_rate_left=40, arrival_rate_right=40, system_overhead=0.5
    )
    return build_state_slice_plan(
        workload, chain=build_cpu_opt_chain(workload, params), plan_name="cpu-opt"
    )


PLAN_BUILDERS = [
    ("state-slice", build_state_slice_plan),
    ("state-slice-cpu-opt", _cpu_opt_plan),
    ("selection-pullup", build_pullup_plan),
    ("selection-pushdown", build_pushdown_plan),
    ("unshared", build_unshared_plan),
]


class TestBatchedImmediateExecutor:
    @pytest.mark.parametrize(
        "builder", [b for _, b in PLAN_BUILDERS], ids=[n for n, _ in PLAN_BUILDERS]
    )
    def test_outputs_identical_across_batch_sizes(self, builder, workload, stream_data):
        reference = None
        for batch_size in BATCH_SIZES:
            report = execute_plan(
                builder(workload), stream_data.tuples, batch_size=batch_size
            )
            signature = (
                result_signature(report),
                dict(report.metrics.comparisons),
                dict(report.metrics.invocations),
                dict(report.metrics.emitted),
            )
            if reference is None:
                reference = signature
            else:
                assert signature == reference, f"batch_size={batch_size} diverged"

    def test_all_filtered_workload_identical(self, stream_data):
        """Entry selections upstream of the chain head keep arrival order."""
        workload = build_workload(
            [0.5, 1.0, 1.5],
            join_selectivity=0.1,
            filter_selectivities=[0.4, 0.5, 0.6],
        )
        base = execute_plan(build_state_slice_plan(workload), stream_data.tuples)
        for batch_size in (7, 64):
            report = execute_plan(
                build_state_slice_plan(workload),
                stream_data.tuples,
                batch_size=batch_size,
            )
            assert result_signature(report) == result_signature(base)

    def test_batch_boundary_independent(self, workload, stream_data):
        """Results must not depend on where batch boundaries fall."""
        base = execute_plan(build_state_slice_plan(workload), stream_data.tuples)
        for batch_size in (2, 13, 1000):
            report = execute_plan(
                build_state_slice_plan(workload),
                stream_data.tuples,
                batch_size=batch_size,
            )
            assert result_signature(report) == result_signature(base)

    def test_incremental_arrivals_flush_on_finish(self, workload, stream_data):
        """process_arrival + finish with a part-filled batch loses nothing."""
        plan = build_state_slice_plan(workload)
        executor = ImmediateExecutor(plan, batch_size=50)
        for tup in stream_data.tuples:
            executor.process_arrival(tup)
        executor.finish()
        base = execute_plan(build_state_slice_plan(workload), stream_data.tuples)
        assert {
            name: [(i.left.seqno, i.right.seqno) for i in items]
            for name, items in executor.results.items()
        } == result_signature(base)

    def test_scheduled_executor_batch_runs(self, workload, stream_data):
        """The scheduled executor's run-batched invocations keep the multiset."""
        immediate = execute_plan(build_state_slice_plan(workload), stream_data.tuples)
        scheduled = ScheduledExecutor(
            build_state_slice_plan(workload), batch_size=16
        ).run(stream_data.tuples)
        for name in immediate.results:
            expected = sorted(
                (i.left.seqno, i.right.seqno) for i in immediate.results[name]
            )
            got = sorted(
                (i.left.seqno, i.right.seqno) for i in scheduled.results[name]
            )
            assert got == expected


class TestMemorySamplingStride:
    def test_final_state_always_sampled(self, workload, stream_data):
        """The last sample must reflect the final state even with a stride
        that does not divide the arrival count."""
        count = len(stream_data.tuples)
        stride = 7
        assert count % stride != 0  # the scenario under test
        plan = build_state_slice_plan(workload)
        executor = ImmediateExecutor(plan, memory_sample_interval=stride)
        report = executor.run(stream_data.tuples)
        last = report.metrics.memory_samples[-1]
        assert last.timestamp == pytest.approx(stream_data.tuples[-1].timestamp)
        assert last.tuples_in_state == plan.total_state_size()

    def test_stride_larger_than_run_still_samples_once(self, workload, stream_data):
        plan = build_state_slice_plan(workload)
        report = ImmediateExecutor(plan, memory_sample_interval=10**9).run(
            stream_data.tuples
        )
        assert len(report.metrics.memory_samples) == 1
        assert report.metrics.memory_samples[0].tuples_in_state == (
            plan.total_state_size()
        )

    def test_exact_multiple_not_double_sampled(self, workload, stream_data):
        count = len(stream_data.tuples)
        plan = build_state_slice_plan(workload)
        report = ImmediateExecutor(plan, memory_sample_interval=count).run(
            stream_data.tuples
        )
        assert len(report.metrics.memory_samples) == 1


class TestOperatorBatchContract:
    """process_batch must equal concatenated per-item process for every
    operator, including metric totals."""

    def _compare(self, make_operator, items, port):
        per_item = make_operator()
        batched = make_operator()
        expected = []
        for item in items:
            expected.extend(per_item.process(item, port))
        got = batched.process_batch(list(items), port)
        assert got == expected
        assert dict(batched.metrics.comparisons) == dict(per_item.metrics.comparisons)
        # Names are auto-generated per instance, so compare totals.
        assert (
            batched.metrics.total_invocations == per_item.metrics.total_invocations
        )
        return per_item, batched

    def _mixed_stream_items(self, count=40, seed=2):
        data = generate_join_workload(rate_a=30, rate_b=30, duration=3.0, seed=seed)
        return data.tuples[:count]

    def test_passthrough(self):
        items = self._mixed_stream_items()
        self._compare(PassThrough, items, "in")

    def test_selection(self):
        items = list(self._mixed_stream_items()) + [Punctuation(9.0)]
        predicate = selectivity_filter(0.5)
        self._compare(lambda: Selection(predicate), items, "in")

    def test_stream_filter_charges_males_only(self):
        predicate = selectivity_filter(0.5)
        refs = []
        for tup in self._mixed_stream_items():
            refs.append(RefTuple(tup, MALE))
            refs.append(RefTuple(tup, FEMALE))
        refs.append(Punctuation(9.0))
        self._compare(lambda: StreamFilter(predicate, stream="A"), refs, "in")

    def test_split(self):
        items = list(self._mixed_stream_items()) + [Punctuation(9.0)]
        self._compare(lambda: Split(selectivity_filter(0.3)), items, "in")

    def test_router(self):
        condition = selectivity_join(0.9)
        join = SlicedBinaryJoin(0.0, 2.0, condition)
        joined = []
        for tup in self._mixed_stream_items():
            port = "left" if tup.stream == "A" else "right"
            for out_port, item in join.process(tup, port):
                if out_port == "output":
                    joined.append(item)
        assert joined, "need joined tuples to route"
        routes = [
            Route(port="q1", window=0.5),
            Route(port="q2", window=None, left_filter=selectivity_filter(0.5)),
        ]
        self._compare(lambda: Router(routes), joined + [Punctuation(9.0)], "in")

    def test_ordered_union(self):
        condition = selectivity_join(0.9)
        join = SlicedBinaryJoin(0.0, 2.0, condition)
        items = []
        for tup in self._mixed_stream_items():
            port = "left" if tup.stream == "A" else "right"
            for out_port, item in join.process(tup, port):
                if out_port in ("output", "punct"):
                    items.append(item)
        per_item, batched = self._compare(lambda: OrderedUnion(), items, "in")
        assert per_item.pending() == batched.pending()

    def test_sliced_binary_join_chain_port(self):
        condition = selectivity_join(0.5)
        refs = []
        for tup in self._mixed_stream_items(count=60):
            refs.append(RefTuple(tup, MALE))
            refs.append(RefTuple(tup, FEMALE))
        refs.append(Punctuation(9.0))
        per_item, batched = self._compare(
            lambda: SlicedBinaryJoin(0.0, 0.5, condition, name="slice"), refs, "chain"
        )
        assert per_item.state_size() == batched.state_size()
        assert per_item.state_tuples("A") == batched.state_tuples("A")
        assert per_item.state_tuples("B") == batched.state_tuples("B")

    def test_sliced_binary_join_raw_arrivals(self):
        condition = selectivity_join(0.5)
        items = self._mixed_stream_items(count=60)

        def drive_per_item():
            join = SlicedBinaryJoin(0.0, 0.5, condition, name="slice")
            emissions = []
            for tup in items:
                port = "left" if tup.stream == "A" else "right"
                emissions.extend(join.process(tup, port))
            return join, emissions

        join_a, expected = drive_per_item()
        join_b = SlicedBinaryJoin(0.0, 0.5, condition, name="slice")
        # Interchangeable ports: the whole mixed-stream batch on one port.
        got = join_b.process_batch(list(items), "left")
        assert got == expected
        assert join_a.state_size() == join_b.state_size()
        assert dict(join_a.metrics.comparisons) == dict(join_b.metrics.comparisons)

    def test_default_process_batch_falls_back_to_process(self):
        class Doubler(Operator):
            def process(self, item, port):
                return [("out", item), ("out", item)]

        operator = Doubler()
        assert operator.process_batch([1, 2], "in") == [
            ("out", 1),
            ("out", 1),
            ("out", 2),
            ("out", 2),
        ]


class TestIngestRegion:
    def test_chain_head_is_batchable(self, workload):
        """The sliced chain head declares interchangeable raw ports, so the
        whole state-slice plan escapes the per-item ingest region."""
        executor = ImmediateExecutor(build_state_slice_plan(workload), batch_size=8)
        assert executor._ingest_region == frozenset()

    def test_bag_union_merge_stays_per_item(self, workload):
        """The pushdown baseline merges with a bag union (arrival order
        matters), so its upstream operators stay in the ingest region."""
        executor = ImmediateExecutor(build_pushdown_plan(workload), batch_size=8)
        assert any(name.startswith("union") for name in executor._ingest_region)


def test_make_tuple_batch_edge_cases():
    """Empty and single-item batches behave like the per-item path."""
    predicate = selectivity_filter(0.5)
    selection = Selection(predicate)
    assert selection.process_batch([], "in") == []
    tup = make_tuple("A", 1.0, value=0.9)
    assert selection.process_batch([tup], "in") == selection.process(tup, "in")
