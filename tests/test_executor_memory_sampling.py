"""Memory-sampling parity across executors and sampling strides.

PR 1 fixed the ImmediateExecutor so the state size after the *final*
arrival is always sampled even when the arrival count is not a multiple of
``memory_sample_interval`` — otherwise peak-memory numbers silently depend
on the stride benchmarks pick for speed.  The ScheduledExecutor lacked the
same guarantee; this regression suite pins the behaviour for both.
"""

from __future__ import annotations

import pytest

from repro.core.plan_builder import build_state_slice_plan
from repro.engine.executor import ImmediateExecutor
from repro.engine.metrics import MetricsCollector
from repro.engine.scheduler import ScheduledExecutor
from repro.query.workload import build_workload
from repro.streams.generators import generate_join_workload

WORKLOAD = build_workload([0.6, 1.2], join_selectivity=0.2)
# 173 arrivals: deliberately not a multiple of any stride used below.
DATA = generate_join_workload(rate_a=30, rate_b=30, duration=2.9, seed=21).tuples


def run_immediate(stride):
    executor = ImmediateExecutor(
        build_state_slice_plan(WORKLOAD),
        metrics=MetricsCollector(),
        memory_sample_interval=stride,
    )
    report = executor.run(DATA)
    return executor, report


def run_scheduled(stride):
    executor = ScheduledExecutor(
        build_state_slice_plan(WORKLOAD),
        metrics=MetricsCollector(),
        # Enough service capacity that every queue drains per arrival: the
        # post-arrival state is then identical to synchronous execution and
        # comparable across strides.
        invocations_per_arrival=64,
        memory_sample_interval=stride,
    )
    report = executor.run(DATA)
    return executor, report


@pytest.mark.parametrize("runner", [run_immediate, run_scheduled])
@pytest.mark.parametrize("stride", [4, 16, 50])
def test_final_state_always_sampled(runner, stride):
    assert len(DATA) % stride != 0, "fixture must exercise the ragged tail"
    executor, report = runner(stride)
    samples = report.metrics.memory_samples
    assert samples, "no memory samples recorded"
    last = samples[-1]
    assert last.timestamp == DATA[-1].timestamp
    assert last.tuples_in_state == executor.plan.total_state_size()


@pytest.mark.parametrize("runner", [run_immediate, run_scheduled])
def test_peak_memory_is_stride_independent(runner):
    _, exact = runner(1)
    for stride in (4, 16, 50):
        _, strided = runner(stride)
        assert (
            strided.metrics.memory_samples[-1].tuples_in_state
            == exact.metrics.memory_samples[-1].tuples_in_state
        )


@pytest.mark.parametrize("runner", [run_immediate, run_scheduled])
def test_exact_stride_has_no_duplicate_final_sample(runner):
    """When the stride divides the arrival count, the final arrival's
    sample is the regular one — no duplicate is appended."""
    _, report = runner(1)
    samples = report.metrics.memory_samples
    assert len(samples) == len(DATA)
    assert samples[-1].timestamp == DATA[-1].timestamp
