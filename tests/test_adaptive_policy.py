"""Tests for the adaptive rebalance policy (runtime/adaptive.py).

Covers the three behavioural guarantees of the ISSUE: drift fires exactly
one rebalance per cooldown window, stable load never migrates, and the
online-estimated statistics converge to the generators' ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.core.merge_graph import ChainCostParameters
from repro.core.statistics import StreamStatistics
from repro.query.predicates import selectivity_filter, selectivity_join
from repro.runtime import AdaptivePolicy, CountStreamEngine, StreamEngine
from repro.streams.generators import SelectivityValueGenerator, generate_join_workload
from repro.streams.tuples import StreamTuple
from tests.conftest import joined_keys


@dataclass
class ShiftedValues(SelectivityValueGenerator):
    """Payload generator whose ``value`` attribute is uniform on [low, 1).

    A predicate ``value > 1 - Sσ`` with ``1 - Sσ <= low`` then passes every
    tuple — the measured selection selectivity is 1 regardless of the
    declared estimate, which is the drift signal several tests rely on.
    """

    low: float = 0.8

    def generate(self, rng):
        payload = super().generate(rng)
        payload["value"] = self.low + payload["value"] * (1.0 - self.low)
        return payload


def shift_times(tuples, offset: float) -> list[StreamTuple]:
    """Rebase a tuple sequence ``offset`` stream-seconds later."""
    return [
        StreamTuple(stream=t.stream, timestamp=t.timestamp + offset, values=t.values)
        for t in tuples
    ]


def steady_stream(rate: float, duration: float, seed: int = 3, value_generator=None):
    return generate_join_workload(
        rate_a=rate,
        rate_b=rate,
        duration=duration,
        seed=seed,
        value_generator=value_generator,
    ).tuples


class _StubEngine:
    """Minimal engine surface for deterministic policy decision tests."""

    left_stream = "A"
    right_stream = "B"
    window_kind = "time"

    def __init__(self):
        from repro.engine.metrics import MetricsCollector

        self.metrics = MetricsCollector()
        self.rebalanced: list = []

    def rebalance(self, params, statistics=None):
        self.rebalanced.append((params, statistics))
        return (0.0, 1.0)


def _make_stub_policy(**overrides) -> AdaptivePolicy:
    defaults = dict(
        window=1.0,
        drift_threshold=0.5,
        min_arrivals=1,
        calibrate_first=False,
        smoothing=1.0,  # judge each window alone: pure decision logic
    )
    defaults.update(overrides)
    return AdaptivePolicy(**defaults)


def _feed_windows(engine: _StubEngine, policy: AdaptivePolicy, rates) -> None:
    """Synthesise one exact estimation window per rate value."""
    now = 0.0
    policy.on_batch(engine, now)  # opens the first window
    for rate in rates:
        now += 1.0
        for stream in ("A", "B"):
            engine.metrics.record_ingest(int(rate), stream=stream)
        engine.metrics.sample_memory(now, 0)
        policy.on_batch(engine, now)


class TestStableLoad:
    def test_stable_load_never_migrates(self):
        policy = AdaptivePolicy(
            window=1.5,
            drift_threshold=0.25,
            cooldown=4.0,
            hysteresis=2,
            min_arrivals=24,
            calibrate_first=False,
        )
        engine = StreamEngine(selectivity_join(0.1), batch_size=16, policy=policy)
        engine.add_query("Q1", 1.0)
        engine.add_query("Q2", 2.5, left_filter=selectivity_filter(0.4))
        admissions = len(engine.stats.migrations)
        engine.process_many(steady_stream(25, 20.0))
        engine.flush()
        assert len(policy.estimates) >= 3  # windows did close
        assert policy.rebalances == 0
        assert len(engine.stats.migrations) == admissions

    def test_calibrate_first_fires_at_most_once_and_preserves_results(self):
        policy = AdaptivePolicy(
            window=1.5, cooldown=4.0, min_arrivals=24, calibrate_first=True
        )
        engine = StreamEngine(selectivity_join(0.1), batch_size=16, policy=policy)
        reference = StreamEngine(selectivity_join(0.1), batch_size=16)
        for target in (engine, reference):
            target.add_query("Q1", 1.0)
            target.add_query("Q2", 2.5, left_filter=selectivity_filter(0.4))
        tuples = steady_stream(25, 16.0)
        engine.process_many(tuples)
        reference.process_many(tuples)
        engine.flush()
        reference.flush()
        calibrations = [e for e in policy.events if e.kind == "calibrate"]
        assert len(calibrations) == 1
        assert policy.rebalances == 0  # calibration is not counted as drift
        for name in ("Q1", "Q2"):
            assert joined_keys(engine.results(name)) == joined_keys(
                reference.results(name)
            )


class TestDrift:
    def _drifting_engine(self, cooldown: float, duration_per_rate=6.0):
        policy = AdaptivePolicy(
            window=1.2,
            drift_threshold=0.3,
            cooldown=cooldown,
            hysteresis=2,
            min_arrivals=16,
            calibrate_first=False,
        )
        engine = StreamEngine(selectivity_join(0.1), batch_size=16, policy=policy)
        engine.add_query("Q1", 0.5)
        engine.add_query("Q2", 1.5, left_filter=selectivity_filter(0.4))
        offset = 0.0
        for seed, rate in enumerate((10, 30, 80)):
            segment = steady_stream(rate, duration_per_rate, seed=seed + 1)
            engine.process_many(shift_times(segment, offset))
            offset += duration_per_rate
        engine.flush()
        return policy, engine

    def test_step_drift_fires_exactly_one_rebalance_with_long_cooldown(self):
        policy, _engine = self._drifting_engine(cooldown=1000.0)
        assert policy.rebalances == 1

    def test_rebalances_respect_the_cooldown_spacing(self):
        policy, _engine = self._drifting_engine(cooldown=4.0)
        stamps = [e.timestamp for e in policy.events if e.kind == "rebalance"]
        assert len(stamps) >= 2  # the ramp keeps drifting past each baseline
        for earlier, later in zip(stamps, stamps[1:]):
            assert later - earlier >= 4.0 - 1e-9

    def test_hysteresis_swallows_a_single_noisy_window(self):
        """Deterministic decision-logic check via a stub engine: one drifted
        window inside steady load must not trigger with hysteresis > 1."""
        policy = _make_stub_policy(hysteresis=3, cooldown=0.0)
        engine = _StubEngine()
        _feed_windows(engine, policy, rates=[10, 10, 10, 30, 10, 10, 10])
        assert policy.rebalances == 0
        assert engine.rebalanced == []

    def test_hysteresis_met_by_sustained_drift(self):
        policy = _make_stub_policy(hysteresis=3, cooldown=0.0)
        engine = _StubEngine()
        _feed_windows(engine, policy, rates=[10, 10, 30, 30, 30])
        assert policy.rebalances == 1

    def test_cooldown_blocks_back_to_back_rebalances(self):
        """Sustained oscillation far above threshold: rebalances are spaced
        by at least the cooldown, never more than one per cooldown window."""
        policy = _make_stub_policy(hysteresis=1, cooldown=3.0)
        engine = _StubEngine()
        # Every window alternates 4x up/down: drift vs each new baseline
        # stays far above threshold forever.
        _feed_windows(engine, policy, rates=[10] + [40, 10] * 8)
        stamps = [e.timestamp for e in policy.events if e.kind == "rebalance"]
        assert len(stamps) >= 2
        for earlier, later in zip(stamps, stamps[1:]):
            assert later - earlier >= 3.0 - 1e-9
        # One rebalance per elapsed cooldown window, no more.
        span = stamps[-1] - stamps[0]
        assert len(stamps) <= span / 3.0 + 1 + 1e-9


class TestConvergence:
    def test_online_estimates_match_ground_truth(self):
        engine = StreamEngine(
            selectivity_join(0.1), batch_size=16, collect_statistics=True
        )
        engine.add_query("Q1", 1.0)
        engine.add_query("Q2", 3.0, left_filter=selectivity_filter(0.3))
        before = engine.metrics.snapshot()
        engine.process_many(steady_stream(40, 25.0, seed=9))
        engine.flush()
        stats = engine.estimated_statistics(since=before)
        assert stats.rate("A") == pytest.approx(40.0, rel=0.10)
        assert stats.rate("B") == pytest.approx(40.0, rel=0.10)
        assert stats.join_selectivity == pytest.approx(0.1, rel=0.15)
        assert stats.selection_selectivity("Q2", "left") == pytest.approx(
            0.3, rel=0.15
        )

    def test_hash_probe_estimates_join_factor_from_opportunities(self):
        from repro.query.predicates import EquiJoinCondition

        condition = EquiJoinCondition("join_key", "join_key", key_domain=10)
        engine = StreamEngine(
            condition, batch_size=16, probe="hash", collect_statistics=True
        )
        engine.add_query("Q1", 2.0)
        engine.process_many(
            steady_stream(
                40,
                20.0,
                seed=4,
                value_generator=lambda: SelectivityValueGenerator(key_domain=10),
            )
        )
        engine.flush()
        stats = engine.estimated_statistics()
        # The hash probe only touches one bucket, yet the opportunity-based
        # estimator still recovers the true match probability (1/domain).
        assert stats.join_selectivity == pytest.approx(0.1, rel=0.2)


class TestOneSidedWindows:
    def test_window_seeing_one_stream_only_is_skipped(self):
        """A burst of one stream must not crash the policy (regression:
        chain_parameters needs both rates to price the cost model)."""
        policy = AdaptivePolicy(
            window=1.0, min_arrivals=8, hysteresis=1, calibrate_first=True
        )
        engine = StreamEngine(selectivity_join(0.2), batch_size=8, policy=policy)
        engine.add_query("Q1", 1.0)
        one_sided = [
            t for t in steady_stream(30, 6.0, seed=8) if t.stream == "A"
        ]
        engine.process_many(one_sided)
        engine.flush()
        assert policy.baseline is None  # no complete window: no action
        # Once both streams flow, calibration proceeds normally.
        engine.process_many(shift_times(steady_stream(30, 6.0, seed=9), 6.0))
        engine.flush()
        assert policy.baseline is not None


class TestCountSessions:
    def test_count_engine_recalibrates_without_migrating(self):
        policy = AdaptivePolicy(
            window=1.2,
            drift_threshold=0.3,
            cooldown=2.0,
            hysteresis=1,
            min_arrivals=16,
            calibrate_first=True,
        )
        engine = CountStreamEngine(selectivity_join(0.2), batch_size=8, policy=policy)
        engine.add_query("Q1", 10)
        engine.add_query("Q2", 25)
        admissions = len(engine.stats.migrations)
        offset = 0.0
        for seed, rate in enumerate((10, 40)):
            segment = steady_stream(rate, 6.0, seed=seed + 7)
            engine.process_many(shift_times(segment, offset))
            offset += 6.0
        engine.flush()
        kinds = [event.kind for event in policy.events]
        assert kinds.count("calibrate") == 1  # first baseline keeps its label
        assert "recalibrate" in kinds  # the rate drift re-baselined
        assert "rebalance" not in kinds
        assert policy.rebalances == 0
        assert len(engine.stats.migrations) == admissions  # Mem-Opt kept


class TestRebalanceWithStatistics:
    def test_measured_selectivity_changes_the_live_chain(self):
        """The tentpole loop at engine level: a session whose declared
        selection is ineffective in the data merges its boundary away once
        the measured statistics are supplied to rebalance()."""
        condition = selectivity_join(0.05)

        def build():
            engine = StreamEngine(condition, batch_size=16)
            engine.add_query("Q1", 0.2)
            # Declared Sσ = 0.2, but the shifted data passes everything.
            engine.add_query("Q2", 1.0, left_filter=selectivity_filter(0.2))
            return engine

        tuples = steady_stream(
            40, 8.0, seed=2, value_generator=lambda: ShiftedValues(low=0.8)
        )
        params = ChainCostParameters(
            arrival_rate_left=40, arrival_rate_right=40, system_overhead=0.5
        )
        declared = build()
        declared.process_many(tuples)
        declared.rebalance(params)
        assert len(declared.boundaries) == 3  # declared strong σ keeps the split

        measured = build()
        measured.process_many(tuples)
        stats = StreamStatistics(
            arrival_rates={"A": 40.0, "B": 40.0},
            join_selectivity=0.05,
            selection_selectivities={"Q2": (1.0, None)},
        )
        measured.rebalance(params, statistics=stats)
        assert len(measured.boundaries) == 2  # measured no-op σ merges it away
        # Outputs stay exact after the migration.
        remainder = shift_times(
            steady_stream(40, 4.0, seed=5, value_generator=lambda: ShiftedValues()),
            8.0,
        )
        reference = build()
        reference.process_many(tuples)
        for engine in (measured, reference):
            engine.process_many(remainder)
            engine.flush()
        for name in ("Q1", "Q2"):
            assert joined_keys(measured.results(name)) == joined_keys(
                reference.results(name)
            )
